//! The fact store: deduplicated facts with per-predicate and positional
//! indexes.

use crate::atom::Fact;
use crate::symbol::Symbol;
use crate::value::Value;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Identifier of a fact inside a [`Database`]. Ids are dense and stable:
/// the i-th inserted distinct fact has id `i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u32);

impl std::fmt::Display for FactId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A deduplicated store of facts.
///
/// Lookups can be restricted by bound argument positions; positional hash
/// indexes are created lazily the first time a (predicate, position) pair
/// is probed and maintained incrementally afterwards.
#[derive(Clone, Debug, Default)]
pub struct Database {
    facts: Vec<Fact>,
    dedup: HashMap<Fact, FactId>,
    by_predicate: HashMap<Symbol, Vec<FactId>>,
    /// Lazily-built positional indexes: (predicate, position) -> value -> ids.
    positional: HashMap<(Symbol, usize), HashMap<Value, Vec<FactId>>>,
    /// Facts superseded by a fuller monotonic aggregate: still stored (the
    /// chase graph references them) but excluded from matching.
    inactive: std::collections::HashSet<FactId>,
    /// Running approximation of the store's heap footprint, maintained in
    /// O(1) per insert so the engine's memory budget can poll it cheaply.
    approx_bytes: usize,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Inserts `fact`, returning its id and whether it was new.
    pub fn insert(&mut self, fact: Fact) -> (FactId, bool) {
        if let Some(&id) = self.dedup.get(&fact) {
            return (id, false);
        }
        let id = FactId(u32::try_from(self.facts.len()).expect("fact id overflow"));
        self.by_predicate
            .entry(fact.predicate)
            .or_default()
            .push(id);
        // Maintain any existing positional indexes for this predicate.
        for ((pred, pos), index) in self.positional.iter_mut() {
            if *pred == fact.predicate {
                if let Some(v) = fact.values.get(*pos) {
                    index.entry(*v).or_default().push(id);
                    self.approx_bytes += std::mem::size_of::<FactId>();
                }
            }
        }
        // Stored fact + dedup key copy + the per-predicate id slot. An
        // estimate (hash-table overhead is ignored), but deterministic:
        // it depends only on the insertion sequence, never on threads.
        let value_bytes = fact.values.len() * std::mem::size_of::<Value>();
        self.approx_bytes +=
            2 * (std::mem::size_of::<Fact>() + value_bytes) + std::mem::size_of::<FactId>() * 2;
        self.dedup.insert(fact.clone(), id);
        self.facts.push(fact);
        (id, true)
    }

    /// Convenience: inserts a fact built from a predicate and values.
    pub fn add(&mut self, predicate: &str, values: &[Value]) -> FactId {
        self.insert(Fact::new(predicate, values.to_vec())).0
    }

    /// The fact with the given id.
    pub fn fact(&self, id: FactId) -> &Fact {
        &self.facts[id.0 as usize]
    }

    /// The id of `fact`, if present.
    pub fn lookup(&self, fact: &Fact) -> Option<FactId> {
        self.dedup.get(fact).copied()
    }

    /// True iff `fact` is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.dedup.contains_key(fact)
    }

    /// Total number of (distinct) facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True iff the database is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// All fact ids for `predicate`, in insertion order.
    pub fn facts_of(&self, predicate: Symbol) -> &[FactId] {
        self.by_predicate.get(&predicate).map_or(&[], Vec::as_slice)
    }

    /// Iterates over all facts with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts
            .iter()
            .enumerate()
            .map(|(i, f)| (FactId(i as u32), f))
    }

    /// Fact ids of `predicate` whose argument at `position` equals `value`,
    /// served from a (lazily created) positional index.
    ///
    /// Requires `&mut self` because the index may need to be built; use
    /// [`Database::probe`] after [`Database::ensure_index`] for read-only
    /// access (as the parallel chase phase does).
    pub fn facts_with(&mut self, predicate: Symbol, position: usize, value: &Value) -> &[FactId] {
        self.ensure_index(predicate, position);
        self.positional[&(predicate, position)]
            .get(value)
            .map_or(&[], Vec::as_slice)
    }

    /// Eagerly builds the positional index on `(predicate, position)` if it
    /// does not exist yet. Indexes are maintained incrementally by
    /// [`Database::insert`] afterwards.
    ///
    /// The chase engine calls this for every statically-probed
    /// (predicate, position) pair *before* its parallel matching phase, so
    /// that a cold index is never built while the store is shared
    /// read-only across worker threads.
    pub fn ensure_index(&mut self, predicate: Symbol, position: usize) {
        if let Entry::Vacant(e) = self.positional.entry((predicate, position)) {
            let mut index: HashMap<Value, Vec<FactId>> = HashMap::new();
            if let Some(ids) = self.by_predicate.get(&predicate) {
                for &id in ids {
                    if let Some(v) = self.facts[id.0 as usize].values.get(position) {
                        index.entry(*v).or_default().push(id);
                    }
                }
            }
            e.insert(index);
        }
    }

    /// True iff the positional index on `(predicate, position)` exists.
    pub fn has_index(&self, predicate: Symbol, position: usize) -> bool {
        self.positional.contains_key(&(predicate, position))
    }

    /// Read-only probe of the positional index on `(predicate, position)`:
    /// returns the matching ids (in insertion order) if the index exists,
    /// `None` if it was never built. Never builds an index — safe to call
    /// concurrently from matching workers.
    pub fn probe(&self, predicate: Symbol, position: usize, value: &Value) -> Option<&[FactId]> {
        self.positional
            .get(&(predicate, position))
            .map(|index| index.get(value).map_or(&[] as &[FactId], Vec::as_slice))
    }

    /// Marks a fact as superseded: it stays in the store (ids and
    /// provenance remain valid) but no longer participates in matching.
    pub fn deactivate(&mut self, id: FactId) {
        self.inactive.insert(id);
    }

    /// True iff `id` participates in matching.
    pub fn is_active(&self, id: FactId) -> bool {
        !self.inactive.contains(&id)
    }

    /// Number of deactivated (superseded) facts.
    pub fn inactive_count(&self) -> usize {
        self.inactive.len()
    }

    /// Approximate heap footprint of the stored facts and their index
    /// slots, in bytes. Maintained in O(1) per insert; a deterministic
    /// function of the insertion sequence (the engine's memory budget
    /// relies on this to trip identically at any thread count).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Overwrites the running footprint estimate with a recorded value.
    ///
    /// Used by checkpoint restore only: [`Database::insert`] accounts for
    /// the positional indexes that exist *at insert time*, so replaying
    /// the facts of a snapshot into a fresh (index-less) store would
    /// under-count relative to the live run it captured — and a resumed
    /// memory budget would then trip at a different point than the
    /// uninterrupted run. Restoring the recorded estimate keeps the
    /// memory observation bitwise identical across a save/load cycle.
    pub(crate) fn restore_approx_bytes(&mut self, approx_bytes: usize) {
        self.approx_bytes = approx_bytes;
    }

    /// Finds an *active* fact of `predicate` matching `pattern`, where
    /// `None` entries are wildcards. Used by the restricted-chase
    /// satisfaction check and safe negation.
    pub fn find_matching(&self, predicate: Symbol, pattern: &[Option<Value>]) -> Option<FactId> {
        self.facts_of(predicate).iter().copied().find(|&id| {
            if !self.is_active(id) {
                return false;
            }
            let f = self.fact(id);
            f.values.len() == pattern.len()
                && f.values
                    .iter()
                    .zip(pattern)
                    .all(|(v, p)| p.is_none_or(|pv| *v == pv))
        })
    }
}

impl FromIterator<Fact> for Database {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Database {
        let mut db = Database::new();
        for f in iter {
            db.insert(f);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut db = Database::new();
        let a = db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        let b = db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        let c = db.add("own", &["A".into(), "C".into(), 0.4.into()]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn facts_of_returns_in_insertion_order() {
        let mut db = Database::new();
        db.add("p", &[1i64.into()]);
        db.add("q", &[9i64.into()]);
        db.add("p", &[2i64.into()]);
        let ids = db.facts_of(Symbol::new("p"));
        let vals: Vec<_> = ids.iter().map(|&id| db.fact(id).values[0]).collect();
        assert_eq!(vals, vec![Value::Int(1), Value::Int(2)]);
        assert!(db.facts_of(Symbol::new("zzz")).is_empty());
    }

    #[test]
    fn positional_index_is_built_lazily_and_maintained() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["C".into(), "B".into(), 0.3.into()]);
        let pred = Symbol::new("own");
        // First probe builds the index.
        let hits = db.facts_with(pred, 1, &Value::str("B")).to_vec();
        assert_eq!(hits.len(), 2);
        // Inserting afterwards keeps the index fresh.
        db.add("own", &["D".into(), "B".into(), 0.2.into()]);
        let hits = db.facts_with(pred, 1, &Value::str("B"));
        assert_eq!(hits.len(), 3);
        let misses = db.facts_with(pred, 1, &Value::str("Z"));
        assert!(misses.is_empty());
    }

    #[test]
    fn eager_index_probe_is_read_only() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["C".into(), "B".into(), 0.3.into()]);
        let pred = Symbol::new("own");
        // Before ensure_index, probe reports the index as missing.
        assert!(db.probe(pred, 1, &Value::str("B")).is_none());
        assert!(!db.has_index(pred, 1));
        db.ensure_index(pred, 1);
        assert!(db.has_index(pred, 1));
        let hits = db.probe(pred, 1, &Value::str("B")).unwrap();
        assert_eq!(hits.len(), 2);
        // Insertion keeps the eager index fresh, like the lazy one.
        db.add("own", &["D".into(), "B".into(), 0.2.into()]);
        assert_eq!(db.probe(pred, 1, &Value::str("B")).unwrap().len(), 3);
        // A probe for an unseen value hits the index and returns empty.
        assert_eq!(db.probe(pred, 1, &Value::str("Z")), Some(&[] as &[FactId]));
    }

    #[test]
    fn find_matching_treats_none_as_wildcard() {
        let mut db = Database::new();
        db.add("risk", &["C".into(), 11i64.into()]);
        let pred = Symbol::new("risk");
        assert!(db
            .find_matching(pred, &[Some(Value::str("C")), None])
            .is_some());
        assert!(db
            .find_matching(pred, &[Some(Value::str("C")), Some(Value::Int(11))])
            .is_some());
        assert!(db
            .find_matching(pred, &[Some(Value::str("X")), None])
            .is_none());
        // Arity mismatch never matches.
        assert!(db.find_matching(pred, &[None]).is_none());
    }

    #[test]
    fn lookup_and_contains_agree() {
        let mut db = Database::new();
        let f = Fact::new("company", vec![Value::str("A")]);
        assert!(!db.contains(&f));
        let (id, fresh) = db.insert(f.clone());
        assert!(fresh);
        assert_eq!(db.lookup(&f), Some(id));
        assert!(db.contains(&f));
    }

    #[test]
    fn approx_bytes_grows_only_on_fresh_inserts() {
        let mut db = Database::new();
        assert_eq!(db.approx_bytes(), 0);
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        let after_one = db.approx_bytes();
        assert!(after_one > 0);
        // Duplicate insert: no growth.
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        assert_eq!(db.approx_bytes(), after_one);
        db.add("own", &["A".into(), "C".into(), 0.4.into()]);
        assert!(db.approx_bytes() > after_one);
    }

    #[test]
    fn from_iterator_collects() {
        let db: Database = vec![
            Fact::new("p", vec![Value::Int(1)]),
            Fact::new("p", vec![Value::Int(1)]),
            Fact::new("p", vec![Value::Int(2)]),
        ]
        .into_iter()
        .collect();
        assert_eq!(db.len(), 2);
    }
}
