//! Property-based integration tests: invariants of the chase, the
//! explanation pipeline and the statistics toolkit over randomized inputs.

use ekg_explain::finkg::apps::control;
use ekg_explain::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a random acyclic ownership database over `n` companies.
fn ownership_db(max_companies: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    let n = max_companies;
    prop::collection::vec((0..n, 0..n, 1u32..100), 0..30).prop_map(move |edges| {
        edges
            .into_iter()
            .filter(|(a, b, _)| a != b)
            .map(|(a, b, s)| {
                // Orient edges upward to keep the graph acyclic.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                (lo, hi, f64::from(s) / 100.0)
            })
            .collect()
    })
}

fn build_db(edges: &[(usize, usize, f64)]) -> Database {
    let mut db = Database::new();
    let mut seen = HashSet::new();
    for &(a, b, s) in edges {
        if !seen.insert((a, b)) {
            continue; // one stake per pair
        }
        db.add(
            "own",
            &[
                format!("C{a}").as_str().into(),
                format!("C{b}").as_str().into(),
                s.into(),
            ],
        );
    }
    db
}

/// Reference implementation of company control (independent oracle): the
/// official fixpoint definition computed with plain loops over an
/// adjacency map, no chase machinery.
fn control_oracle(edges: &[(usize, usize, f64)], n: usize) -> HashSet<(usize, usize)> {
    let mut own = std::collections::HashMap::<(usize, usize), f64>::new();
    for &(a, b, s) in edges {
        own.entry((a, b)).or_insert(s);
    }
    let mut controls: HashSet<(usize, usize)> = HashSet::new();
    // Direct majorities.
    for (&(a, b), &s) in &own {
        if s > 0.5 {
            controls.insert((a, b));
        }
    }
    // Fixpoint of the joint rule (x controls z's jointly owning > 50%,
    // possibly with x itself: x trivially "controls" x for the sum).
    loop {
        let mut changed = false;
        for x in 0..n {
            for y in 0..n {
                if x == y || controls.contains(&(x, y)) {
                    continue;
                }
                let mut total = 0.0;
                for z in 0..n {
                    let z_controlled = z == x || controls.contains(&(x, z));
                    if z_controlled {
                        if let Some(&s) = own.get(&(z, y)) {
                            total += s;
                        }
                    }
                }
                if total > 0.5 {
                    controls.insert((x, y));
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    controls
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chase agrees with an independently implemented fixpoint oracle
    /// on the company-control semantics.
    #[test]
    fn chase_matches_control_oracle(edges in ownership_db(8)) {
        let n = 8;
        let mut db = build_db(&edges);
        for i in 0..n {
            db.add("company", &[format!("C{i}").as_str().into()]);
        }
        let outcome = ChaseSession::new(&control::program()).run(db).unwrap();
        let derived: HashSet<(usize, usize)> = outcome
            .database
            .facts_of(Symbol::new("control"))
            .iter()
            .map(|&id| {
                let f = outcome.database.fact(id);
                let parse = |v: &Value| match v {
                    Value::Str(s) => s.as_str()[1..].parse::<usize>().unwrap(),
                    _ => unreachable!(),
                };
                (parse(&f.values[0]), parse(&f.values[1]))
            })
            .filter(|(a, b)| a != b)
            .collect();
        // Deduplicate pair stakes the same way build_db does.
        let mut seen = HashSet::new();
        let deduped: Vec<(usize, usize, f64)> = edges
            .iter()
            .copied()
            .filter(|(a, b, _)| seen.insert((*a, *b)))
            .collect();
        let expected = control_oracle(&deduped, n);
        prop_assert_eq!(derived, expected);
    }

    /// The chase is deterministic: same input, same closed database.
    #[test]
    fn chase_is_deterministic(edges in ownership_db(8)) {
        let a = ChaseSession::new(&control::program()).run(build_db(&edges)).unwrap();
        let b = ChaseSession::new(&control::program()).run(build_db(&edges)).unwrap();
        prop_assert_eq!(a.database.len(), b.database.len());
        for (id, fact) in a.database.iter() {
            prop_assert_eq!(b.database.fact(id), fact);
        }
    }

    /// Every derived control fact is explainable, with no unsubstituted
    /// tokens and all proof constants present (the completeness
    /// guarantee).
    #[test]
    fn explanations_are_complete_on_random_graphs(edges in ownership_db(7)) {
        let program = control::program();
        let glossary = control::glossary();
        let pipeline = ExplanationPipeline::builder(program.clone(), control::GOAL)
        .with_glossary(&glossary)
        .build().unwrap();
        let outcome = ChaseSession::new(&program).run(build_db(&edges)).unwrap();
        for &id in outcome.database.facts_of(Symbol::new("control")) {
            if !outcome.graph.is_derived(id) {
                continue;
            }
            let e = pipeline
                .explain_id(&outcome, id, TemplateFlavor::Enhanced)
                .unwrap();
            prop_assert!(!e.text.contains('<'), "{}", e.text);
            for c in ekg_explain::studies::proof_constants(&outcome, id, &glossary) {
                prop_assert!(e.text.contains(&c), "missing {} in {}", c, e.text);
            }
        }
    }

    /// Proof linearization length never exceeds the total number of chase
    /// steps of the proof, and matches the reported chase_steps.
    #[test]
    fn linearization_is_a_spine(edges in ownership_db(7)) {
        let program = control::program();
        let outcome = ChaseSession::new(&program).run(build_db(&edges)).unwrap();
        for &id in outcome.database.facts_of(Symbol::new("control")) {
            if !outcome.graph.is_derived(id) {
                continue;
            }
            let proof = outcome.graph.proof(id, DerivationPolicy::Richest);
            let tau = proof.linearize(&outcome.graph);
            prop_assert!(tau.len() <= proof.steps());
            prop_assert!(!tau.is_empty());
        }
    }

    /// Wilcoxon invariants: p in (0, 1]; swapping samples preserves p.
    #[test]
    fn wilcoxon_is_symmetric(
        pairs in prop::collection::vec((1u8..=5, 1u8..=5), 5..40)
    ) {
        let x: Vec<f64> = pairs.iter().map(|(a, _)| f64::from(*a)).collect();
        let y: Vec<f64> = pairs.iter().map(|(_, b)| f64::from(*b)).collect();
        match (
            ekg_explain::stats::wilcoxon_signed_rank(&x, &y),
            ekg_explain::stats::wilcoxon_signed_rank(&y, &x),
        ) {
            (Ok(a), Ok(b)) => {
                prop_assert!(a.p_value > 0.0 && a.p_value <= 1.0);
                prop_assert!((a.p_value - b.p_value).abs() < 1e-12);
                prop_assert_eq!(a.w_plus, b.w_minus);
            }
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "asymmetric result: {:?}", other),
        }
    }

    /// Boxplot invariants: ordered five-number summary bracketing the mean.
    #[test]
    fn boxplot_is_ordered(xs in prop::collection::vec(-1e6f64..1e6, 1..60)) {
        let b = ekg_explain::stats::Boxplot::of(&xs).unwrap();
        prop_assert!(b.min <= b.q1);
        prop_assert!(b.q1 <= b.median);
        prop_assert!(b.median <= b.q3);
        prop_assert!(b.q3 <= b.max);
        prop_assert!(b.mean >= b.min && b.mean <= b.max);
    }
}

/// Independent oracle for the two-channel stress test: iterate the default
/// set to fixpoint with plain loops (no chase machinery).
fn stress_oracle(
    capitals: &[(usize, i64)],
    debts: &[(usize, usize, i64)], // debtor, creditor, amount (both channels merged)
    shocks: &[(usize, i64)],
) -> HashSet<usize> {
    let cap: std::collections::HashMap<usize, i64> = capitals.iter().copied().collect();
    let mut defaulted: HashSet<usize> = shocks
        .iter()
        .filter(|(e, s)| cap.get(e).is_some_and(|c| s > c))
        .map(|(e, _)| *e)
        .collect();
    loop {
        let mut changed = false;
        for (&entity, &capital) in &cap {
            if defaulted.contains(&entity) {
                continue;
            }
            let exposure: i64 = debts
                .iter()
                .filter(|(d, c, _)| *c == entity && defaulted.contains(d))
                .map(|(_, _, v)| v)
                .sum();
            if exposure > capital {
                defaulted.insert(entity);
                changed = true;
            }
        }
        if !changed {
            return defaulted;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chase over the two-channel stress-test program agrees with the
    /// independent cascade oracle (channels merged: σ7 sums over both).
    #[test]
    fn stress_chase_matches_cascade_oracle(
        capitals in prop::collection::vec(1i64..12, 6..10),
        debts in prop::collection::vec((0usize..9, 0usize..9, 1i64..10, any::<bool>()), 0..16),
        shock in (0usize..9, 1i64..25),
    ) {
        use ekg_explain::finkg::apps::stress;
        let n = capitals.len();
        let caps: Vec<(usize, i64)> = capitals.iter().copied().enumerate().collect();
        let debts: Vec<(usize, usize, i64, bool)> = debts
            .into_iter()
            .filter(|(d, c, _, _)| d != c && *d < n && *c < n)
            .collect();
        // One debt edge per (debtor, creditor, channel): the engine's fact
        // dedup would otherwise collapse duplicate amounts the oracle
        // counts twice.
        let mut seen = HashSet::new();
        let debts: Vec<(usize, usize, i64, bool)> = debts
            .into_iter()
            .filter(|(d, c, _, long)| seen.insert((*d, *c, *long)))
            .collect();
        let (shock_entity, shock_size) = (shock.0 % n, shock.1);

        let mut db = Database::new();
        for (e, c) in &caps {
            db.add("has_capital", &[format!("e{e}").as_str().into(), Value::Int(*c)]);
        }
        for (d, c, v, long) in &debts {
            let channel = if *long { "long_term_debts" } else { "short_term_debts" };
            db.add(channel, &[
                format!("e{d}").as_str().into(),
                format!("e{c}").as_str().into(),
                Value::Int(*v),
            ]);
        }
        db.add("shock", &[format!("e{shock_entity}").as_str().into(), Value::Int(shock_size)]);

        let out = ChaseSession::new(&stress::program()).run(db).unwrap();
        let derived: HashSet<usize> = out
            .database
            .facts_of(Symbol::new("default"))
            .iter()
            .map(|&id| {
                let f = out.database.fact(id);
                match &f.values[0] {
                    Value::Str(s) => s.as_str()[1..].parse::<usize>().unwrap(),
                    _ => unreachable!(),
                }
            })
            .collect();

        let merged: Vec<(usize, usize, i64)> =
            debts.iter().map(|(d, c, v, _)| (*d, *c, *v)).collect();
        let expected = stress_oracle(&caps, &merged, &[(shock_entity, shock_size)]);
        prop_assert_eq!(derived, expected);
    }
}
