//! Regenerates `results/BENCH_obs.json`: the observability overhead
//! measurement.
//!
//! Runs the Fig. 18 workload (seeded control bundle: chase to fixpoint,
//! build the explanation pipeline, explain every target) twice per
//! repetition — once with span observation fully off (the default: one
//! relaxed atomic load per span site) and once with the ring collector
//! installed — interleaved so container load drift hits both modes
//! equally, and takes the *median of the per-repetition paired ratios*:
//! each pair runs back-to-back under the same ambient load, so a load
//! burst inflates both members instead of skewing the comparison, and
//! the median discards the burst-hit pairs entirely. (Comparing
//! best-of-N times across all reps is measurably flakier on shared
//! containers: one quiet baseline rep against nine noisy collector reps
//! reads as phantom overhead.) The always-on metrics
//! registry is active in both modes, and the whole workload runs under
//! a minted [`TraceContext`] so the collector-on mode also pays for
//! stamping `trace_id`/`request_id` onto every span, matching what the
//! serving layer does per request. The ratio therefore isolates the
//! cost of *collecting (trace-stamped) spans*, the knob a deployment
//! actually toggles.
//!
//! The run asserts the collector-on mode stays within 5% of baseline —
//! the acceptance bar stated in ARCHITECTURE.md.
//!
//! Usage: `cargo run --release -p bench --bin obs_overhead [-- DATE]`.

use explain::{ExplanationPipeline, TemplateFlavor};
use finkg::apps::control;
use std::sync::Arc;
use vadalog::obs::context::{self, TraceContext};
use vadalog::obs::span::{self, RingCollector};
use vadalog::telemetry::JsonWriter;
use vadalog::ChaseSession;

const REPS: usize = 9;
const BUNDLE_LEN: usize = 16;
const BUNDLE_PROOFS: usize = 8;
const SEED: u64 = 42;
const OVERHEAD_BAR: f64 = 1.05;

/// One full Fig. 18-style pass: chase, pipeline, explain every target,
/// all under a minted trace context (as the serving layer would run
/// it). Returns wall-clock seconds.
fn workload() -> f64 {
    let program = control::program();
    let glossary = control::glossary();
    let bundle = finkg::control_bundle(BUNDLE_LEN, BUNDLE_PROOFS, SEED);
    let _ctx = context::set(TraceContext::mint());
    let t0 = std::time::Instant::now();
    let outcome = ChaseSession::new(&program)
        .run(bundle.database.clone())
        .expect("chase");
    let pipeline =
        ExplanationPipeline::builder(program.clone(), bundle.targets[0].predicate.as_str())
            .with_glossary(&glossary)
            .build()
            .expect("pipeline");
    for target in &bundle.targets {
        let id = outcome.lookup(target).expect("target derived");
        pipeline
            .explain_id(&outcome, id, TemplateFlavor::Enhanced)
            .expect("explainable");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let date = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unreported".into());

    let ring = Arc::new(RingCollector::new(1 << 20));
    let mut collector_off = f64::INFINITY;
    let mut collector_on = f64::INFINITY;
    let mut ratios = Vec::with_capacity(REPS);
    let mut spans_per_pass = 0u64;
    // Warm-up pass so index/bundle construction cold-start hits neither
    // measured mode.
    let _ = workload();
    for _ in 0..REPS {
        span::uninstall();
        let off = workload();
        collector_off = collector_off.min(off);

        span::install(ring.clone());
        let on = workload();
        collector_on = collector_on.min(on);
        span::uninstall();
        spans_per_pass = ring.drain().len() as u64 + ring.dropped();
        if off > 0.0 {
            ratios.push(on / off);
        }
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios.get(ratios.len() / 2).copied().unwrap_or(1.0);

    let mut w = JsonWriter::new();
    w.open_object();
    w.field_str("name", "obs_overhead");
    w.field_str("date", &date);
    w.field_str(
        "description",
        "Observability overhead on the Fig. 18 workload (seeded control \
         bundle: chase + explanation pipeline + per-target explanations, \
         run under a minted trace context as the serving layer would). \
         The overhead ratio is the median of per-repetition paired \
         wall-clock ratios (collector installed vs. span observation \
         off, run back-to-back so ambient load cancels); best-of-N \
         times per mode are reported alongside. The always-on metrics \
         registry is active in both modes and collected spans carry \
         trace_id/request_id. The acceptance bar is a ratio below 1.05. \
         Regenerate with `cargo run --release -p bench --bin \
         obs_overhead -- $(date +%F)`.",
    );
    w.key("workload");
    w.open_object();
    w.field_str("bundle", "control_bundle");
    w.field_u64("proof_length", BUNDLE_LEN as u64);
    w.field_u64("proofs", BUNDLE_PROOFS as u64);
    w.field_u64("seed", SEED);
    w.field_u64("spans_per_pass", spans_per_pass);
    w.close_object();
    w.field_u64("repetitions", REPS as u64);
    w.field_f64("best_collector_off_ms", collector_off * 1e3);
    w.field_f64("best_collector_on_ms", collector_on * 1e3);
    w.field_f64("median_paired_overhead_ratio", ratio);
    w.field_f64("acceptance_bar", OVERHEAD_BAR);
    w.close_object();

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_obs.json", pretty(&w.finish())).expect("write results");
    println!(
        "collector off {:.2}ms, on {:.2}ms -> median paired overhead x{ratio:.4} ({spans_per_pass} spans/pass)",
        collector_off * 1e3,
        collector_on * 1e3,
    );
    println!("wrote results/BENCH_obs.json");
    assert!(
        ratio < OVERHEAD_BAR,
        "span collection overhead x{ratio:.4} exceeds the {OVERHEAD_BAR} bar"
    );
}

/// Minimal JSON pretty-printer (2-space indent) so the checked-in result
/// diffs cleanly; input is the trusted output of [`JsonWriter`].
fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out.push('\n');
    out
}
