//! Fig. 18: running times of template-based explanation generation as the
//! inference length grows (Sec. 6.4): time to select, parse and combine
//! templates for one explanation query.

use crate::fig17::App;
use explain::{ExplanationPipeline, TemplateFlavor};
use finkg::apps::{control, stress};
use stats::Boxplot;
use std::time::Instant;
use vadalog::ChaseSession;

/// One measured point: explanation latency distribution at one proof
/// length.
#[derive(Clone, Debug)]
pub struct LatencyPoint {
    /// Proof length in chase steps.
    pub steps: usize,
    /// Boxplot of per-query latencies, in microseconds.
    pub boxplot_us: Boxplot,
}

/// The paper's x-axes (Fig. 18a: 1..21; Fig. 18b: 1..22).
pub fn paper_steps(app: App) -> Vec<usize> {
    match app {
        App::CompanyControl => vec![1, 3, 5, 7, 9, 11, 13, 16, 18, 21],
        App::StressTest => vec![1, 4, 7, 10, 13, 16, 19, 22],
    }
}

/// Runs the latency sweep: `proofs_per_len` distinct proofs per length
/// (paper: 15), explanation generation timed per query (pipeline and chase
/// are built once per length, as in a deployed KG application).
pub fn run(app: App, steps: &[usize], proofs_per_len: usize, seed: u64) -> Vec<LatencyPoint> {
    let (program, glossary) = match app {
        App::CompanyControl => (control::program(), control::glossary()),
        App::StressTest => (stress::program(), stress::glossary()),
    };

    let mut out = Vec::new();
    for &len in steps {
        let bundle = match app {
            App::CompanyControl => finkg::control_bundle(len, proofs_per_len, seed + len as u64),
            App::StressTest => finkg::stress_bundle(len, proofs_per_len, seed + len as u64),
        };
        let goal = bundle.targets[0].predicate.as_str();
        let pipeline = ExplanationPipeline::builder(program.clone(), goal)
            .with_glossary(&glossary)
            .build()
            .expect("pipeline builds");
        let outcome = ChaseSession::new(&program)
            .run(bundle.database.clone())
            .expect("chase succeeds");

        let mut times_us = Vec::with_capacity(proofs_per_len);
        for target in &bundle.targets {
            let id = outcome.lookup(target).expect("target derived");
            // Warm-up query (index construction etc.), then the timed one.
            let _ = pipeline.explain_id(&outcome, id, TemplateFlavor::Enhanced);
            let t0 = Instant::now();
            let e = pipeline
                .explain_id(&outcome, id, TemplateFlavor::Enhanced)
                .expect("explainable");
            let dt = t0.elapsed();
            assert_eq!(e.chase_steps, len);
            times_us.push(dt.as_secs_f64() * 1e6);
        }
        out.push(LatencyPoint {
            steps: len,
            boxplot_us: Boxplot::of(&times_us).expect("non-empty"),
        });
    }
    out
}

/// Table rows of one sweep.
pub fn rows(points: &[LatencyPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                p.steps.to_string(),
                format!("{:.1}", p.boxplot_us.min),
                format!("{:.1}", p.boxplot_us.q1),
                format!("{:.1}", p.boxplot_us.median),
                format!("{:.1}", p.boxplot_us.q3),
                format!("{:.1}", p.boxplot_us.max),
                format!("{:.1}", p.boxplot_us.mean),
            ]
        })
        .collect()
}

/// Column headers of the latency tables.
pub const HEADERS: [&str; 7] = [
    "Chase Steps",
    "min µs",
    "q1 µs",
    "median µs",
    "q3 µs",
    "max µs",
    "mean µs",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_proof_length() {
        let points = run(App::CompanyControl, &[1, 13], 5, 9);
        let t1 = points[0].boxplot_us.median;
        let t13 = points[1].boxplot_us.median;
        assert!(t13 > t1, "median {t13} vs {t1}");
    }

    #[test]
    fn latencies_stay_interactive() {
        // The paper's worst case is ~3s on a laptop; ours must stay well
        // below a second per query.
        for app in [App::CompanyControl, App::StressTest] {
            let points = run(app, &[9], 5, 4);
            assert!(points[0].boxplot_us.max < 1e6, "{app:?}");
        }
    }
}
