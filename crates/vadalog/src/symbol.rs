//! Interned string symbols.
//!
//! Predicates and variable names occur extremely often during matching and
//! template manipulation; interning turns every comparison and hash into a
//! `u32` operation. The interner is process-global and append-only, so a
//! [`Symbol`] is `Copy` and valid for the lifetime of the process.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Two symbols are equal iff their originating strings
/// are byte-equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    /// Map from string to id. Owns one copy of each string.
    map: HashMap<&'static str, u32>,
    /// Id to string. The `&'static` references point into leaked boxes that
    /// live for the whole process; the interner is append-only by design.
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s` and returns its symbol. Idempotent.
    pub fn new(s: &str) -> Symbol {
        let mut guard = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(guard.strings.len()).expect("symbol table overflow");
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        let guard = interner().lock().expect("symbol interner poisoned");
        guard.strings[self.0 as usize]
    }

    /// The raw interner id. Stable within a process run only.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("control");
        let b = Symbol::new("control");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "control");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::new("own");
        let b = Symbol::new("owns");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "own");
        assert_eq!(b.as_str(), "owns");
    }

    #[test]
    fn display_round_trips() {
        let s = Symbol::new("has_capital");
        assert_eq!(s.to_string(), "has_capital");
    }

    #[test]
    fn symbols_are_ordered_consistently() {
        let a = Symbol::new("zeta-order-test");
        let b = Symbol::new("alpha-order-test");
        // Ordering is by interner id (insertion order), not lexicographic;
        // it only needs to be a total order usable for canonicalization.
        assert!(a < b || b < a);
    }

    #[test]
    fn empty_string_is_internable() {
        let e = Symbol::new("");
        assert_eq!(e.as_str(), "");
        assert_eq!(e, Symbol::new(""));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::new("concurrent-test").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
