//! Property-based tests of the simulated LLM: determinism, calibrated
//! omission behaviour, and its interaction with the explain crate's
//! anti-omission enhancement loop.

use explain::{analyze, checked_enhance, generate, DomainGlossary, TemplateStyle};
use llm_sim::{omission_ratio, OmissionModel, Prompt, SimulatedLlm};
use proptest::prelude::*;
use vadalog::parse_program;

fn sample_text(sentences: usize) -> String {
    (0..sentences)
        .map(|i| {
            format!(
                "Since E{i} owns {}% shares of E{}, and E{i} is well capitalized, then E{i} exercises control over E{}.",
                51 + (i % 40),
                i + 1,
                i + 1
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same (seed, prompt, input, run) -> same output, for any seed.
    #[test]
    fn rewriting_is_a_pure_function(seed in 0u64..1000, run in 0u64..50, n in 1usize..12) {
        for prompt in [Prompt::Paraphrase, Prompt::Summarize] {
            let t = sample_text(n);
            let a = SimulatedLlm::new(prompt, seed).rewrite(&t, run);
            let b = SimulatedLlm::new(prompt, seed).rewrite(&t, run);
            prop_assert_eq!(a, b);
        }
    }

    /// Outputs are never empty and always keep the conclusion's entity.
    #[test]
    fn conclusions_always_survive(seed in 0u64..300, n in 2usize..15, run in 0u64..5) {
        for prompt in [Prompt::Paraphrase, Prompt::Summarize] {
            let t = sample_text(n);
            let out = SimulatedLlm::new(prompt, seed).rewrite(&t, run);
            prop_assert!(!out.is_empty());
            prop_assert!(out.contains(&format!("E{n}")), "{out}");
        }
    }

    /// A more aggressive omission model never omits less, on average.
    #[test]
    fn omission_model_is_monotone(seed in 0u64..100) {
        let t = sample_text(16);
        let constants: Vec<String> = (0..16).map(|i| format!("{}%", 51 + (i % 40))).collect();
        let mild = OmissionModel {
            summary_sentence_slope: 0.01,
            constant_slope_summary: 0.01,
            ..OmissionModel::default()
        };
        let harsh = OmissionModel {
            summary_sentence_slope: 0.08,
            constant_slope_summary: 0.12,
            ..OmissionModel::default()
        };
        let avg = |model: OmissionModel| -> f64 {
            let llm = SimulatedLlm::new(Prompt::Summarize, seed).with_model(model);
            (0..20)
                .map(|r| omission_ratio(&llm.rewrite(&t, r), &constants))
                .sum::<f64>()
                / 20.0
        };
        prop_assert!(avg(harsh) >= avg(mild) - 1e-9);
    }

    /// The checked-enhancement loop never yields a template with missing
    /// tokens, whatever the LLM does (retries or fallback).
    #[test]
    fn checked_enhancement_never_loses_tokens(seed in 0u64..200, retries in 0u32..4) {
        let program = parse_program(
            "o1: own(x, y, s), s > 0.5 -> control(x, y).
             o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).",
        )
        .unwrap()
        .program;
        let analysis = analyze(&program, "control").unwrap();
        let glossary = DomainGlossary::new();
        // An aggressive summarizing LLM: likely to drop tokens.
        let llm = SimulatedLlm::new(Prompt::Summarize, seed).with_model(OmissionModel {
            summary_sentence_slope: 0.2,
            summary_sentence_cap: 0.6,
            constant_slope_summary: 0.2,
            ..OmissionModel::default()
        });
        for (i, path) in analysis.paths.iter().enumerate() {
            let template = generate(&program, &glossary, path, i, TemplateStyle::Fluent);
            let out = checked_enhance(&template, &llm, retries);
            let rendered = out.template.render();
            prop_assert!(
                out.template.missing_tokens(&rendered).is_empty(),
                "lost tokens: {rendered}"
            );
        }
    }
}
