//! Regenerates `results/BENCH_serving.json`: explanation-serving
//! throughput over an Arc-shared chase snapshot.
//!
//! Three sweeps isolate what the serving layer buys:
//!
//! * *cold* — every request rebuilds the program artifacts from scratch
//!   (structural analysis + both template catalogs), the price every
//!   caller paid per pipeline before artifacts became cacheable;
//! * *cached* — all requests share one `ProgramArtifacts` edition out
//!   of the process-wide cache and pay only the per-goal explanation;
//! * *concurrent* — the `ExplainService` worker pool at 1/2/8 workers
//!   answering batched goals, every answer asserted byte-identical to
//!   the sequential baseline before anything is written.
//!
//! Acceptance: cached throughput >= 5x cold. The 1 -> 2 worker scaling
//! assertion is gated on `host_parallelism >= 2` — wall-clock scaling
//! is unobservable on a single core, so the result records the actual
//! host parallelism and the honest per-worker-count numbers instead of
//! pretending.
//!
//! Usage: `cargo run --release -p bench --bin serving [-- DATE]`.

use explain::{Explainer, ProgramArtifacts};
use serve::{ExplainService, ServeConfig, SnapshotHandle};
use std::sync::Arc;
use std::time::Instant;
use vadalog::telemetry::JsonWriter;
use vadalog::{ChaseOutcome, ChaseSession, Fact};

const ENTITIES: usize = 220;
const EDGES_PER_ENTITY: usize = 3;
const SEED: u64 = 7;
const WORKERS: [usize; 3] = [1, 2, 8];
/// Requests per sweep. Cold rebuilds artifacts each time, so it gets a
/// smaller budget; both sweeps report per-request means, which is what
/// the speedup compares.
const COLD_REQUESTS: usize = 40;
const CACHED_REQUESTS: usize = 600;
const BATCH_REPS: usize = 40;
/// The acceptance bar from the issue: sharing cached artifacts must be
/// at least this much faster than rebuilding them per request.
const REQUIRED_CACHED_SPEEDUP: f64 = 5.0;
/// Minimum 1 -> 2 worker throughput ratio, asserted only when the host
/// actually has a second core to scale onto.
const REQUIRED_SCALING: f64 = 1.3;

/// All derived goal facts of `outcome`, in derivation order.
fn derived_goals(outcome: &ChaseOutcome) -> Vec<Fact> {
    outcome
        .facts_of(finkg::apps::control::GOAL)
        .into_iter()
        .filter(|(id, _)| outcome.graph.is_derived(*id))
        .map(|(_, fact)| fact.clone())
        .collect()
}

struct Sweep {
    requests: usize,
    total_ms: f64,
    qps: f64,
    mean_us: f64,
    analysis_runs: u64,
}

fn sweep(requests: usize, total_ms: f64, analysis_runs: u64) -> Sweep {
    let secs = total_ms / 1e3;
    Sweep {
        requests,
        total_ms,
        qps: requests as f64 / secs.max(1e-9),
        mean_us: total_ms * 1e3 / requests as f64,
        analysis_runs,
    }
}

fn main() {
    let date = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unreported".into());
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let program = finkg::apps::control::program();
    let glossary = finkg::apps::control::glossary();
    let db = finkg::generator::random_ownership(ENTITIES, EDGES_PER_ENTITY, SEED);
    let outcome = Arc::new(ChaseSession::new(&program).run(db).unwrap());
    let goals = derived_goals(&outcome);
    assert!(goals.len() >= 10, "workload too small: {}", goals.len());

    let analysis_counter = vadalog::obs::metrics::global().counter(
        "vadalog_explain_analysis_runs_total",
        "Structural analyses executed while building program artifacts.",
    );

    // Cold: rebuild the artifacts for every request, bypassing the
    // cache by using the plain builder.
    let before = analysis_counter.get();
    let start = Instant::now();
    for (i, goal) in goals.iter().cycle().take(COLD_REQUESTS).enumerate() {
        let artifacts = ProgramArtifacts::builder(program.clone(), finkg::apps::control::GOAL)
            .with_glossary(&glossary)
            .build()
            .unwrap();
        let explainer = Explainer::for_snapshot(Arc::new(artifacts), Arc::clone(&outcome));
        let text = explainer.explain(goal).unwrap().text;
        assert!(!text.is_empty(), "cold request {i} produced no text");
    }
    let cold = sweep(
        COLD_REQUESTS,
        start.elapsed().as_secs_f64() * 1e3,
        analysis_counter.get() - before,
    );
    assert_eq!(
        cold.analysis_runs, COLD_REQUESTS as u64,
        "cold path must re-analyze per request"
    );

    // Cached: one shared edition out of the process-wide cache; the
    // warm-up build is the only analysis the whole sweep pays.
    let artifacts = ProgramArtifacts::builder(program.clone(), finkg::apps::control::GOAL)
        .with_glossary(&glossary)
        .build_cached()
        .unwrap();
    let explainer = Explainer::for_snapshot(Arc::clone(&artifacts), Arc::clone(&outcome));
    let before = analysis_counter.get();
    let start = Instant::now();
    for goal in goals.iter().cycle().take(CACHED_REQUESTS) {
        let text = explainer.explain(goal).unwrap().text;
        assert!(!text.is_empty());
    }
    let cached = sweep(
        CACHED_REQUESTS,
        start.elapsed().as_secs_f64() * 1e3,
        analysis_counter.get() - before,
    );
    assert_eq!(
        cached.analysis_runs, 0,
        "cached requests must never re-run analysis"
    );

    let cached_speedup = cached.qps / cold.qps.max(1e-9);
    println!(
        "cold {:.0} qps ({:.0} us/req), cached {:.0} qps ({:.1} us/req) -> x{:.1}",
        cold.qps, cold.mean_us, cached.qps, cached.mean_us, cached_speedup
    );
    assert!(
        cached_speedup >= REQUIRED_CACHED_SPEEDUP,
        "cached artifacts only x{cached_speedup:.2} over cold (need x{REQUIRED_CACHED_SPEEDUP})"
    );

    // Concurrent: the worker pool over one shared snapshot. Answers are
    // compared byte-for-byte against the sequential reference at every
    // worker count before any number is trusted.
    let reference: Vec<String> = goals
        .iter()
        .map(|goal| explainer.explain(goal).unwrap().text)
        .collect();
    let handle = SnapshotHandle::new(Arc::clone(&outcome));
    let mut concurrent = Vec::new();
    for workers in WORKERS {
        let service = ExplainService::new(
            Arc::clone(&artifacts),
            handle.clone(),
            ServeConfig::default().with_workers(workers),
        );
        let (_, results) = service.explain_batch(&goals); // warm the pool
        let texts: Vec<String> = results.into_iter().map(|r| r.unwrap().text).collect();
        assert_eq!(
            texts, reference,
            "answers at {workers} workers diverge from the sequential baseline"
        );
        let start = Instant::now();
        for _ in 0..BATCH_REPS {
            let (_, results) = service.explain_batch(&goals);
            assert!(results.iter().all(Result::is_ok));
        }
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        let requests = BATCH_REPS * goals.len();
        let s = sweep(requests, total_ms, 0);
        println!(
            "{workers} workers: {:.0} qps ({:.1} us/req)",
            s.qps, s.mean_us
        );
        concurrent.push((workers, s));
    }

    let scaling_1_to_2 = concurrent[1].1.qps / concurrent[0].1.qps.max(1e-9);
    let scaling_asserted = host_parallelism >= 2;
    if scaling_asserted {
        assert!(
            scaling_1_to_2 >= REQUIRED_SCALING,
            "1 -> 2 workers only scaled x{scaling_1_to_2:.2} on a \
             {host_parallelism}-core host (need x{REQUIRED_SCALING})"
        );
    } else {
        println!(
            "single-core host: recording 1 -> 2 worker ratio x{scaling_1_to_2:.2} \
             without asserting scaling"
        );
    }

    let mut jw = JsonWriter::new();
    jw.open_object();
    jw.field_str("name", "explanation_serving");
    jw.field_str("date", &date);
    jw.field_str(
        "description",
        "Serving-layer throughput over an Arc-shared chase snapshot. \
         'cold' rebuilds ProgramArtifacts (structural analysis + both \
         template catalogs) per request; 'cached' shares one edition out \
         of the process-wide ArtifactCache; 'concurrent' drives the \
         ExplainService worker pool at 1/2/8 workers over batched goals, \
         with every answer asserted byte-identical to the sequential \
         baseline before emission. The 1->2 worker scaling assertion is \
         gated on host_parallelism >= 2; on a single core the ratio is \
         recorded without pretending wall-clock scaling is observable. \
         Regenerate with `cargo run --release -p bench --bin serving -- \
         $(date +%F)`.",
    );
    jw.field_u64("host_parallelism", host_parallelism as u64);
    jw.key("workload");
    jw.open_object();
    jw.field_str("app", "control");
    jw.field_u64("entities", ENTITIES as u64);
    jw.field_u64("edges_per_entity", EDGES_PER_ENTITY as u64);
    jw.field_u64("seed", SEED);
    jw.field_u64("derived_goals", goals.len() as u64);
    jw.field_u64("derived_facts", outcome.derived_facts as u64);
    jw.close_object();
    for (key, s) in [("cold", &cold), ("cached", &cached)] {
        jw.key(key);
        jw.open_object();
        jw.field_u64("requests", s.requests as u64);
        jw.field_f64("total_ms", s.total_ms);
        jw.field_f64("qps", s.qps);
        jw.field_f64("mean_us", s.mean_us);
        jw.field_u64("analysis_runs", s.analysis_runs);
        jw.close_object();
    }
    jw.field_f64("required_cached_speedup", REQUIRED_CACHED_SPEEDUP);
    jw.field_f64("cached_speedup_over_cold", cached_speedup);
    jw.key("concurrent");
    jw.open_array();
    for (workers, s) in &concurrent {
        jw.open_object();
        jw.field_u64("workers", *workers as u64);
        jw.field_u64("requests", s.requests as u64);
        jw.field_f64("total_ms", s.total_ms);
        jw.field_f64("qps", s.qps);
        jw.field_f64("mean_us", s.mean_us);
        jw.field_str("byte_identical_to_sequential", "true");
        jw.close_object();
    }
    jw.close_array();
    jw.field_f64("scaling_1_to_2_workers", scaling_1_to_2);
    jw.field_str(
        "scaling_asserted",
        if scaling_asserted { "true" } else { "false" },
    );
    jw.close_object();

    let json = jw.finish();
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_serving.json", pretty(&json)).expect("write results");
    println!(
        "wrote results/BENCH_serving.json (cached x{cached_speedup:.1}, \
         1->2 workers x{scaling_1_to_2:.2})"
    );
}

/// Minimal JSON pretty-printer (2-space indent) so the checked-in result
/// diffs cleanly; input is the trusted output of [`JsonWriter`].
fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out.push('\n');
    out
}
