//! Confidence intervals for proportions (used to report the
//! comprehension-study accuracies of Fig. 14 with their uncertainty).

/// The Wilson score interval for a binomial proportion at confidence given
/// by the standard-normal quantile `z` (1.96 for 95%).
///
/// Robust for small samples and extreme proportions, unlike the normal
/// (Wald) approximation. Returns `None` for `n == 0`.
pub fn wilson_interval(successes: usize, n: usize, z: f64) -> Option<(f64, f64)> {
    if n == 0 {
        return None;
    }
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = (p + z2 / (2.0 * n_f)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    Some(((centre - half).max(0.0), (centre + half).min(1.0)))
}

/// Convenience: the 95% Wilson interval.
pub fn wilson95(successes: usize, n: usize) -> Option<(f64, f64)> {
    wilson_interval(successes, n, 1.959_963_985)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_the_point_estimate() {
        let (lo, hi) = wilson95(113, 120).unwrap();
        let p = 113.0 / 120.0;
        assert!(lo < p && p < hi);
        assert!(lo > 0.85 && hi < 1.0, "({lo}, {hi})");
    }

    #[test]
    fn extreme_proportions_stay_in_bounds() {
        let (lo, hi) = wilson95(0, 10).unwrap();
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.35);
        let (lo, hi) = wilson95(10, 10).unwrap();
        assert_eq!(hi, 1.0);
        assert!(lo > 0.65 && lo < 1.0);
    }

    #[test]
    fn wider_for_smaller_samples() {
        let (lo_s, hi_s) = wilson95(8, 10).unwrap();
        let (lo_l, hi_l) = wilson95(80, 100).unwrap();
        assert!(hi_s - lo_s > hi_l - lo_l);
    }

    #[test]
    fn zero_n_has_no_interval() {
        assert!(wilson95(0, 0).is_none());
    }

    #[test]
    fn matches_reference_value() {
        // Known reference: 45/50 at 95% -> approximately (0.787, 0.952).
        let (lo, hi) = wilson95(45, 50).unwrap();
        assert!((lo - 0.787).abs() < 0.01, "{lo}");
        assert!((hi - 0.952).abs() < 0.01, "{hi}");
    }
}
