//! Boxplot five-number summaries, as used by Figures 17 and 18.

use crate::descriptive::{mean, quantile};

/// A boxplot summary of one sample.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Boxplot {
    /// Number of observations.
    pub n: usize,
    /// Sample minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Sample maximum.
    pub max: f64,
    /// Arithmetic mean (shown as a marker in the paper's plots).
    pub mean: f64,
}

impl Boxplot {
    /// Summarizes a non-empty sample; `None` for empty input.
    pub fn of(xs: &[f64]) -> Option<Boxplot> {
        Some(Boxplot {
            n: xs.len(),
            min: quantile(xs, 0.0)?,
            q1: quantile(xs, 0.25)?,
            median: quantile(xs, 0.5)?,
            q3: quantile(xs, 0.75)?,
            max: quantile(xs, 1.0)?,
            mean: mean(xs)?,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Renders as a compact table row: `min q1 median q3 max mean`.
    pub fn row(&self) -> String {
        format!(
            "{:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = Boxplot::of(&xs).unwrap();
        assert_eq!(b.n, 5);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.mean, 3.0);
        assert_eq!(b.iqr(), 2.0);
    }

    #[test]
    fn empty_sample_has_no_summary() {
        assert!(Boxplot::of(&[]).is_none());
    }

    #[test]
    fn constant_sample_collapses() {
        let b = Boxplot::of(&[7.0; 10]).unwrap();
        assert_eq!(b.min, b.max);
        assert_eq!(b.iqr(), 0.0);
    }

    #[test]
    fn row_renders_six_columns() {
        let b = Boxplot::of(&[0.0, 1.0]).unwrap();
        assert_eq!(b.row().split_whitespace().count(), 6);
    }
}
