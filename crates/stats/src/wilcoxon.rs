//! The two-sided Wilcoxon signed-rank test for paired samples, as used by
//! the expert user study (Sec. 6.2) to compare Likert ratings of two
//! explanation methods.
//!
//! Zero differences are dropped (Wilcoxon's original treatment); tied
//! absolute differences receive average ranks; the p-value uses the exact
//! permutation distribution for small tie-free samples and the normal
//! approximation with tie correction and continuity correction otherwise
//! (the standard behaviour of R's `wilcox.test`).

/// The result of a Wilcoxon signed-rank test.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WilcoxonResult {
    /// Number of non-zero paired differences.
    pub n: usize,
    /// Sum of ranks of positive differences (W+).
    pub w_plus: f64,
    /// Sum of ranks of negative differences (W-).
    pub w_minus: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// True iff the p-value came from the exact distribution.
    pub exact: bool,
}

/// Errors of the test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WilcoxonError {
    /// The two samples have different lengths.
    LengthMismatch,
    /// After dropping zero differences no observations remain.
    NoNonZeroDifferences,
}

impl std::fmt::Display for WilcoxonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WilcoxonError::LengthMismatch => write!(f, "paired samples differ in length"),
            WilcoxonError::NoNonZeroDifferences => {
                write!(f, "all paired differences are zero")
            }
        }
    }
}

impl std::error::Error for WilcoxonError {}

/// Runs the two-sided test on paired samples `x`, `y`.
pub fn wilcoxon_signed_rank(x: &[f64], y: &[f64]) -> Result<WilcoxonResult, WilcoxonError> {
    if x.len() != y.len() {
        return Err(WilcoxonError::LengthMismatch);
    }
    let diffs: Vec<f64> = x
        .iter()
        .zip(y)
        .map(|(a, b)| a - b)
        .filter(|d| *d != 0.0)
        .collect();
    if diffs.is_empty() {
        return Err(WilcoxonError::NoNonZeroDifferences);
    }
    let n = diffs.len();

    // Rank |d| with average ranks for ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        diffs[i]
            .abs()
            .partial_cmp(&diffs[j].abs())
            .expect("no NaN differences")
    });
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut has_ties = false;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[order[j + 1]].abs() == diffs[order[i]].abs() {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            has_ties = true;
            tie_correction += t.powi(3) - t;
        }
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }

    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let total = n as f64 * (n as f64 + 1.0) / 2.0;
    let w_minus = total - w_plus;

    let (p_value, exact) = if !has_ties && n <= 25 {
        (exact_p_value(n, w_plus.min(w_minus)), true)
    } else {
        (normal_p_value(n, w_plus, tie_correction), false)
    };

    Ok(WilcoxonResult {
        n,
        w_plus,
        w_minus,
        p_value: p_value.min(1.0),
        exact,
    })
}

/// Exact two-sided p-value: P(W <= w_obs) * 2 under the null, computed by
/// dynamic programming over the 2^n sign assignments (rank sums are
/// integers when there are no ties).
fn exact_p_value(n: usize, w_obs: f64) -> f64 {
    let max_sum = n * (n + 1) / 2;
    // counts[s] = number of sign assignments with positive-rank sum s.
    let mut counts = vec![0u64; max_sum + 1];
    counts[0] = 1;
    for rank in 1..=n {
        for s in (rank..=max_sum).rev() {
            counts[s] += counts[s - rank];
        }
    }
    let total: f64 = (counts.iter().sum::<u64>()) as f64;
    let w = w_obs.floor() as usize;
    let cumulative: u64 = counts[..=w.min(max_sum)].iter().sum();
    (2.0 * cumulative as f64 / total).min(1.0)
}

/// Normal approximation with tie and continuity corrections.
fn normal_p_value(n: usize, w_plus: f64, tie_correction: f64) -> f64 {
    let nf = n as f64;
    let mu = nf * (nf + 1.0) / 4.0;
    let sigma2 = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    if sigma2 <= 0.0 {
        return 1.0;
    }
    let z = (w_plus - mu).abs() - 0.5;
    let z = z.max(0.0) / sigma2.sqrt();
    2.0 * (1.0 - standard_normal_cdf(z))
}

/// Φ(z) via the Abramowitz–Stegun 7.1.26 erf approximation (|err| < 1.5e-7).
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_no_test() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(
            wilcoxon_signed_rank(&x, &x),
            Err(WilcoxonError::NoNonZeroDifferences)
        );
    }

    #[test]
    fn length_mismatch_is_rejected() {
        assert_eq!(
            wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]),
            Err(WilcoxonError::LengthMismatch)
        );
    }

    #[test]
    fn exact_small_sample_matches_reference() {
        // Tie-free alternating differences +1, -2, +3, ..., -10.
        let y = [0.0; 10];
        let x: Vec<f64> = (1..=10)
            .map(|i| if i % 2 == 1 { i as f64 } else { -(i as f64) })
            .collect();
        let r = wilcoxon_signed_rank(&x, &y).unwrap();
        assert!(r.exact);
        assert_eq!(r.n, 10);
        assert_eq!(r.w_plus, 25.0); // ranks 1+3+5+7+9
        assert_eq!(r.w_minus, 30.0);
        // Near the null mean of 27.5: far from significant.
        assert!(r.p_value > 0.7, "p = {}", r.p_value);
    }

    #[test]
    fn exact_one_sided_extreme_matches_hand_count() {
        // All five differences positive and distinct: W- = 0, and the
        // two-sided exact p-value is 2 * P(W <= 0) = 2/32.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [0.0; 5];
        let r = wilcoxon_signed_rank(&x, &y).unwrap();
        assert!(r.exact);
        assert_eq!(r.w_minus, 0.0);
        assert!((r.p_value - 2.0 / 32.0).abs() < 1e-12, "p = {}", r.p_value);
    }

    #[test]
    fn strongly_shifted_samples_are_significant() {
        let x: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v + 5.0 + (v % 3.0) * 0.1).collect();
        let r = wilcoxon_signed_rank(&x, &y).unwrap();
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
        assert_eq!(r.w_plus, 0.0);
    }

    #[test]
    fn ties_use_normal_approximation() {
        // Likert-style data with many ties.
        let x = [4.0, 3.0, 5.0, 4.0, 4.0, 3.0, 5.0, 2.0, 4.0, 4.0, 3.0, 5.0];
        let y = [3.0, 4.0, 4.0, 4.0, 5.0, 3.0, 4.0, 3.0, 4.0, 3.0, 4.0, 4.0];
        let r = wilcoxon_signed_rank(&x, &y).unwrap();
        assert!(!r.exact);
        assert!(r.p_value > 0.3, "similar samples: p = {}", r.p_value);
    }

    #[test]
    fn rank_sums_are_complementary() {
        let x = [1.0, 5.0, 3.0, 8.0, 2.0];
        let y = [2.0, 3.0, 7.0, 1.0, 9.0];
        let r = wilcoxon_signed_rank(&x, &y).unwrap();
        let total = r.n as f64 * (r.n as f64 + 1.0) / 2.0;
        assert_eq!(r.w_plus + r.w_minus, total);
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(standard_normal_cdf(-6.0) < 1e-8);
    }

    #[test]
    fn exact_distribution_is_symmetric() {
        // p-value for the midpoint statistic is ~1.
        let p = exact_p_value(6, 10.0); // mean of W under null is 10.5
        assert!(p > 0.9);
        let p_extreme = exact_p_value(6, 0.0);
        // P(W=0) = 1/64, two-sided = 2/64.
        assert!((p_extreme - 2.0 / 64.0).abs() < 1e-12);
    }
}
