//! Incremental fixpoint maintenance: live EDB deltas over a completed
//! chase outcome.
//!
//! [`ChaseSession::apply_delta`] takes a [`Delta`] — a batch of EDB
//! additions and retractions — and maintains the fixpoint without
//! re-chasing from scratch:
//!
//! * **Additions** reuse the semi-naive round machinery: each stratum's
//!   rules are re-evaluated with per-rule delta pivots restricted to the
//!   facts added since the live outcome was sealed, so only matches
//!   touching the extension are enumerated.
//! * **Retractions** run DRed (delete-and-re-derive): the retracted fact
//!   and everything downstream of it along the chase graph's premise
//!   links is *over-deleted* — aggressively, ignoring alternative
//!   support, which is what makes unfounded cycles (`a :- b`, `b :- a`)
//!   collapse correctly — and the survivors are re-derived, first by
//!   directly re-firing over-deleted derivations whose premises all
//!   survived, then by the same semi-naive loop.
//! * Stratified negation is honoured: when a negated predicate grew, the
//!   consuming stratum's recorded derivations are re-checked under their
//!   recorded bindings; when one shrank, the consuming rules are fully
//!   re-enumerated. Both happen only once the lower stratum is final.
//!
//! The hard contract is **bitwise determinism**: the maintained store is
//! indistinguishable from a from-scratch chase on the updated EDB — same
//! facts, same fact ids in the same canonical order, same provenance
//! (derivation ids, rounds, premises, bindings), same violations — at
//! any configured thread count. Maintenance works on interleaved ids, so
//! the final step *replays* the surviving derivations into a fresh store
//! in canonical round/rule/premise order, computing each derivation's
//! from-scratch firing round from premise availability (a derivation
//! fires the first round all its premises are visible to its rule, which
//! depends on commit order within a round: rule `i`'s round-`r` commits
//! are visible to rule `j > i` in round `r` via the commit-phase top-up,
//! and to rules `j <= i` in round `r + 1`).
//!
//! Telemetry: the replayed [`RunReport`] replicates the from-scratch
//! `firings` / `facts_committed` / `duplicates_preempted` counters, the
//! round log's commit columns and the peak fact/derivation sizes.
//! Matching-side counters (`matches_enumerated`, probe/scan counts) are
//! reported as zero — maintenance deliberately skips that work, which is
//! the point. [`RunReport::count_fingerprint`] of a maintained outcome is
//! therefore invariant across thread counts (maintenance is sequential)
//! but not byte-equal to a from-scratch report.
//!
//! Programs using aggregates or existential invention fall back to
//! [`DeltaStrategy::FullRechase`]: a from-scratch chase on the updated
//! EDB, which trivially satisfies the determinism contract.

use super::{
    join_plans, match_body_incremental_planned, match_body_planned, prune_ablation_default, Chase,
    ChaseConfig, ChaseOutcome, ChaseSession, JoinPlan, MatchMetrics,
};
use crate::atom::{Atom, Fact};
use crate::database::{Database, FactId};
use crate::error::{ChaseError, DeltaError};
use crate::expr::Bindings;
use crate::program::Program;
use crate::provenance::{ChaseGraph, Derivation, DerivationId};
use crate::rule::{Head, Rule, RuleId};
use crate::symbol::Symbol;
use crate::telemetry::{RoundStats, RuleStats, RunReport, Termination};
use crate::term::Term;
use crate::value::Value;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// A batch of EDB mutations, applied atomically by
/// [`ChaseSession::apply_delta`].
///
/// Operations are recorded in call order; when the same fact is both
/// added and retracted, the *last* operation wins. Retractions must name
/// asserted (extensional) facts — derived knowledge is retracted by
/// retracting the EDB facts it rests on.
///
/// ```
/// use vadalog::prelude::*;
///
/// let delta = Delta::new()
///     .add(Fact::new("own", vec!["A".into(), "B".into(), 0.6.into()]))
///     .retract(Fact::new("own", vec!["A".into(), "C".into(), 0.9.into()]));
/// assert_eq!(delta.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Delta {
    /// `(is_addition, fact)` in call order.
    ops: Vec<(bool, Fact)>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Adds an EDB fact.
    // Builder verb, not arithmetic: `Delta::new().add(f).retract(g)`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, fact: Fact) -> Delta {
        self.ops.push((true, fact));
        self
    }

    /// Retracts an EDB fact.
    pub fn retract(mut self, fact: Fact) -> Delta {
        self.ops.push((false, fact));
        self
    }

    /// Adds every fact of `facts`.
    pub fn add_all(mut self, facts: impl IntoIterator<Item = Fact>) -> Delta {
        self.ops.extend(facts.into_iter().map(|f| (true, f)));
        self
    }

    /// Retracts every fact of `facts`.
    pub fn retract_all(mut self, facts: impl IntoIterator<Item = Fact>) -> Delta {
        self.ops.extend(facts.into_iter().map(|f| (false, f)));
        self
    }

    /// Number of recorded operations (before net-effect coalescing).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// How [`ChaseSession::apply_delta`] maintained the fixpoint.
#[non_exhaustive]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeltaStrategy {
    /// Semi-naive propagation for additions, DRed over-delete/re-derive
    /// for retractions, followed by the canonical replay.
    Incremental,
    /// A from-scratch chase on the updated EDB: the program uses
    /// aggregates or existential invention (whose supersession/invention
    /// state is not incrementally maintainable), or the session disables
    /// `use_positional_index`/`semi_naive`, or the live store carries
    /// deactivated facts.
    FullRechase,
}

impl DeltaStrategy {
    /// The metrics label of this strategy.
    fn as_str(self) -> &'static str {
        match self {
            DeltaStrategy::Incremental => "incremental",
            DeltaStrategy::FullRechase => "full_rechase",
        }
    }
}

/// The result of [`ChaseSession::apply_delta`]: the maintained outcome
/// plus the delta's bookkeeping.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct DeltaOutcome {
    /// The maintained outcome — bitwise identical to a from-scratch chase
    /// on the updated EDB (see the module docs for the telemetry caveat).
    pub outcome: Arc<ChaseOutcome>,
    /// How the fixpoint was maintained.
    pub strategy: DeltaStrategy,
    /// Net EDB facts asserted (after last-op-wins coalescing; counts
    /// facts that were not already asserted).
    pub edb_added: usize,
    /// Net EDB facts retracted.
    pub edb_retracted: usize,
    /// Facts present in the maintained store that the previous live store
    /// did not hold (EDB and derived alike).
    pub facts_added: usize,
    /// Facts the previous live store held that the maintained store does
    /// not.
    pub facts_removed: usize,
    /// Facts that DRed over-deleted and then re-derived from surviving
    /// support (0 under [`DeltaStrategy::FullRechase`], which never
    /// over-deletes).
    pub facts_rederived: usize,
}

impl<'p> ChaseSession<'p> {
    /// Loads a completed outcome as the session's *live* store, the
    /// baseline [`ChaseSession::apply_delta`] maintains.
    pub fn load(&mut self, outcome: impl Into<Arc<ChaseOutcome>>) {
        self.live = Some(outcome.into());
    }

    /// The session's live outcome, if one is loaded. `apply_delta`
    /// replaces it on every successful application.
    pub fn live(&self) -> Option<&Arc<ChaseOutcome>> {
        self.live.as_ref()
    }

    /// Applies a batch of EDB additions and retractions to the live
    /// outcome, maintaining the fixpoint incrementally (see the module
    /// docs of `engine::delta` for the algorithm and the determinism
    /// contract).
    ///
    /// On success the session's live outcome is replaced by the
    /// maintained one; on any error — a rejected delta
    /// ([`ChaseError::Delta`]), a constraint violation under
    /// `fail_on_violation`, a budget trip of the fallback re-chase — the
    /// live outcome is left untouched.
    ///
    /// Maintenance itself runs sequentially (its cost is proportional to
    /// the delta's footprint, not the store), so it is not governed by
    /// the session's [`RunGuard`](crate::engine::RunGuard); the guard
    /// applies when a program falls back to
    /// [`DeltaStrategy::FullRechase`].
    ///
    /// ```
    /// use vadalog::prelude::*;
    ///
    /// let parsed = parse_program(r#"
    ///     o1: own(x, y) -> reach(x, y).
    ///     o2: reach(x, y), own(y, z) -> reach(x, z).
    ///     own("A", "B").
    /// "#).unwrap();
    /// let db: Database = parsed.facts.into_iter().collect();
    /// let mut session = ChaseSession::new(&parsed.program);
    /// let out = session.run(db).unwrap();
    /// session.load(out);
    ///
    /// let applied = session
    ///     .apply_delta(Delta::new().add(Fact::new("own", vec!["B".into(), "C".into()])))
    ///     .unwrap();
    /// assert_eq!(applied.edb_added, 1);
    /// assert!(applied.outcome.database.contains(&Fact::new("reach", vec!["A".into(), "C".into()])));
    /// ```
    pub fn apply_delta(&mut self, delta: Delta) -> Result<DeltaOutcome, ChaseError> {
        let live = self
            .live
            .as_ref()
            .ok_or(ChaseError::Delta(DeltaError::NoLiveOutcome))?;
        if live.is_partial() {
            return Err(ChaseError::Delta(DeltaError::PartialOutcome));
        }
        let applied = apply(self.program, &self.config, live, delta)?;
        self.live = Some(Arc::clone(&applied.outcome));
        Ok(applied)
    }
}

/// The validated net effect of a [`Delta`] against a live outcome.
struct NetDelta {
    /// Facts to assert that the live store does not hold as EDB, in
    /// final-operation order. A fact already present as *derived* is
    /// promoted to extensional.
    adds: Vec<Fact>,
    /// Live extensional fact ids to retract.
    retracts: Vec<FactId>,
}

/// Coalesces `delta` to its net effect (last operation per fact wins)
/// and validates it against the live store.
fn net_delta(live: &ChaseOutcome, delta: &Delta) -> Result<NetDelta, DeltaError> {
    let mut last: HashMap<&Fact, (usize, bool)> = HashMap::new();
    let mut was_added: HashSet<&Fact> = HashSet::new();
    for (i, (is_add, fact)) in delta.ops.iter().enumerate() {
        if *is_add {
            was_added.insert(fact);
        }
        last.insert(fact, (i, *is_add));
    }
    let mut ordered: Vec<(usize, &Fact, bool)> =
        last.into_iter().map(|(f, (i, a))| (i, f, a)).collect();
    ordered.sort_unstable_by_key(|&(i, _, _)| i);

    let mut adds = Vec::new();
    let mut retracts = Vec::new();
    for (_, fact, is_add) in ordered {
        if is_add {
            if fact.has_nulls() {
                return Err(DeltaError::NullInAddition(fact.to_string()));
            }
            match live.database.lookup(fact) {
                Some(id) if live.graph.is_extensional(id) => {} // already asserted
                _ => adds.push(fact.clone()),
            }
        } else {
            match live.database.lookup(fact) {
                None if was_added.contains(fact) => {} // added and retracted here: net no-op
                None => return Err(DeltaError::UnknownRetraction(fact.to_string())),
                Some(id) if !live.graph.is_extensional(id) => {
                    return Err(DeltaError::NonExtensionalRetraction(fact.to_string()))
                }
                Some(id) => retracts.push(id),
            }
        }
    }
    Ok(NetDelta { adds, retracts })
}

/// The updated EDB in canonical order: surviving asserted facts in
/// original id order, then the net additions in operation order. Both
/// strategies derive their from-scratch-equivalent input from this.
fn updated_edb(live: &ChaseOutcome, net: &NetDelta) -> Vec<Fact> {
    let retracted: HashSet<FactId> = net.retracts.iter().copied().collect();
    let mut edb: Vec<Fact> = live
        .database
        .iter()
        .filter(|(id, _)| live.graph.is_extensional(*id) && !retracted.contains(id))
        .map(|(_, f)| f.clone())
        .collect();
    edb.extend(net.adds.iter().cloned());
    edb
}

/// True iff the incremental strategy applies: indexed semi-naive
/// evaluation with neither aggregates (supersession state) nor
/// existential invention (null counters) to maintain, over a store with
/// no deactivated facts. Goal-cone-restricted sessions
/// ([`ChaseConfig::goal_cone`]) also fall back: the maintenance loops
/// re-match every rule, which would fire rules outside the cone; the
/// full re-chase honours the cone and is itself pruned, so the fallback
/// stays cheap exactly when the cone is sharp.
fn incremental_eligible(program: &Program, config: &ChaseConfig, live: &ChaseOutcome) -> bool {
    config.use_positional_index
        && config.semi_naive
        && (config.goal_cone.is_none() || prune_ablation_default())
        && live.database.inactive_count() == 0
        && program
            .rules()
            .iter()
            .all(|r| r.aggregate.is_none() && r.existential_variables().is_empty())
}

/// Live-store difference counters for a [`DeltaOutcome`]. Incremental
/// maintenance accumulates them as it goes — O(delta), not O(store) —
/// while the full-rechase fallback diffs the two stores outright.
struct DeltaCounts {
    /// Facts live now that were not live before.
    added: usize,
    /// Facts live before that are not live now.
    removed: usize,
    /// Facts over-deleted by DRed and re-derived from surviving support.
    rederived: usize,
}

/// O(store) diff between the old and new live extents, for the
/// full-rechase path (which re-built the store anyway).
fn full_diff(live: &ChaseOutcome, outcome: &ChaseOutcome) -> DeltaCounts {
    let added = outcome
        .database
        .iter()
        .filter(|(id, _)| outcome.database.is_active(*id))
        .filter(|(_, f)| {
            live.database
                .lookup(f)
                .is_none_or(|old| !live.database.is_active(old))
        })
        .count();
    let removed = live
        .database
        .iter()
        .filter(|(id, _)| live.database.is_active(*id))
        .filter(|(_, f)| {
            outcome
                .database
                .lookup(f)
                .is_none_or(|new| !outcome.database.is_active(new))
        })
        .count();
    DeltaCounts {
        added,
        removed,
        rederived: 0,
    }
}

/// Applies a validated delta: maintains (or re-chases) the fixpoint and
/// seals the [`DeltaOutcome`] with its counters and metrics.
fn apply(
    program: &Program,
    config: &ChaseConfig,
    live: &Arc<ChaseOutcome>,
    delta: Delta,
) -> Result<DeltaOutcome, ChaseError> {
    let net = net_delta(live, &delta).map_err(ChaseError::Delta)?;
    let edb_added = net.adds.len();
    let edb_retracted = net.retracts.len();

    let strategy = if incremental_eligible(program, config, live) {
        DeltaStrategy::Incremental
    } else {
        DeltaStrategy::FullRechase
    };
    let (outcome, counts) = match strategy {
        DeltaStrategy::Incremental => maintain(program, config, live, &net)?,
        DeltaStrategy::FullRechase => {
            let db: Database = updated_edb(live, &net).into_iter().collect();
            let outcome = Chase::new(program, db, config.clone()).run()?;
            let counts = full_diff(live, &outcome);
            (outcome, counts)
        }
    };
    let DeltaCounts {
        added: facts_added,
        removed: facts_removed,
        rederived: facts_rederived,
    } = counts;

    let registry = config.metrics_registry();
    registry
        .counter_with(
            "vadalog_delta_applies_total",
            &[("strategy", strategy.as_str())],
            "Deltas applied to a live outcome, by maintenance strategy.",
        )
        .inc();
    registry
        .counter(
            "vadalog_delta_facts_added_total",
            "Facts added to live stores by delta maintenance (EDB and derived).",
        )
        .add(facts_added as u64);
    registry
        .counter(
            "vadalog_delta_facts_retracted_total",
            "Facts removed from live stores by delta maintenance (EDB and derived).",
        )
        .add(facts_removed as u64);
    registry
        .counter(
            "vadalog_delta_facts_rederived_total",
            "Facts over-deleted by DRed and re-derived from surviving support.",
        )
        .add(facts_rederived as u64);

    Ok(DeltaOutcome {
        outcome: Arc::new(outcome),
        strategy,
        edb_added,
        edb_retracted,
        facts_added,
        facts_removed,
        facts_rederived,
    })
}

/// DRed over-deletion state over the *old* chase graph. Derivations are
/// never removed from the graph copy — deadness is a bitmap — and
/// deleted facts keep their (retracted) slot in the working store, so
/// recorded premise ids stay resolvable throughout.
struct Teardown<'g> {
    graph: &'g ChaseGraph,
    /// Inverse premise links of the old graph, built lazily on the first
    /// over-deletion — pure additions never pay for it.
    by_premise: Option<Vec<Vec<DerivationId>>>,
    /// The old store's id range (the domain of `by_premise`).
    old_len: usize,
    /// Old derivations invalidated by this delta.
    dead: Vec<bool>,
    /// Working-store ids over-deleted by this delta.
    deleted: HashSet<FactId>,
    /// Values of the over-deleted facts (for re-derivation accounting).
    deleted_values: HashSet<Fact>,
    /// Predicates that lost a fact (their negating rules re-enumerate).
    shrank: HashSet<Symbol>,
}

impl Teardown<'_> {
    /// Over-deletes `seed` and everything downstream of it along premise
    /// links, marking every derivation that concluded *or* consumed a
    /// deleted fact dead. Extensional facts stop the cascade: they are
    /// asserted, not derived, so losing a derivation cannot unfound them.
    fn over_delete(&mut self, db: &mut Database, extensional: &HashSet<FactId>, seed: FactId) {
        if self.by_premise.is_none() {
            self.by_premise = Some(self.graph.by_premise(self.old_len));
        }
        let mut stack = vec![seed];
        while let Some(f) = stack.pop() {
            if extensional.contains(&f) || !self.deleted.insert(f) {
                continue;
            }
            let fact = db.fact(f).clone();
            self.shrank.insert(fact.predicate);
            self.deleted_values.insert(fact);
            db.retract(f);
            for &d in self.graph.derivations_of(f) {
                self.dead[d.0 as usize] = true;
            }
            // Deletion only ever walks old ids — fresh facts have no
            // old-graph consumers.
            let consumers: &[DerivationId] = self
                .by_premise
                .as_ref()
                .and_then(|bp| bp.get(f.0 as usize))
                .map_or(&[], Vec::as_slice);
            for &d in consumers {
                if !self.dead[d.0 as usize] {
                    self.dead[d.0 as usize] = true;
                    stack.push(self.graph.derivation(d).conclusion);
                }
            }
        }
    }
}

/// True iff any negated atom of `negs` matches a live fact under the
/// recorded `bindings` — the same check [`finish_match`] applies, with
/// unbound variables as wildcards.
fn negation_blocked(db: &Database, negs: &[&Atom], bindings: &Bindings) -> bool {
    negs.iter().any(|atom| {
        let pattern: Vec<Option<Value>> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(v) => Some(*v),
                Term::Var(name) => bindings.get(name).copied(),
            })
            .collect();
        db.find_matching(atom.predicate, &pattern).is_some()
    })
}

/// Instantiates a rule head under `bindings`. Only called for
/// existential-free rules, whose head variables are always bound.
fn head_fact(rule: &Rule, bindings: &Bindings) -> Fact {
    let Head::Atom(head) = &rule.head else {
        unreachable!("constraints never fire");
    };
    let values: Vec<Value> = head
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(v) => *v,
            Term::Var(name) => *bindings
                .get(name)
                .expect("existential-free head variable is body-bound"),
        })
        .collect();
    Fact {
        predicate: head.predicate,
        values,
    }
}

/// A live derivation scheduled for the canonical replay: an old one that
/// survived the delta, or one recorded by this maintenance pass.
struct LiveDer<'a> {
    rule: usize,
    premises: &'a [FactId],
    conclusion: FactId,
    bindings: &'a Bindings,
}

/// Incremental maintenance: mutates a working copy of the live store
/// (interleaved ids), then replays the surviving derivations into a
/// fresh store in canonical order. Returns the maintained outcome plus
/// its O(delta) difference counters.
fn maintain(
    program: &Program,
    config: &ChaseConfig,
    live: &ChaseOutcome,
    net: &NetDelta,
) -> Result<(ChaseOutcome, DeltaCounts), ChaseError> {
    let started = Instant::now();
    let mut db = live.database.clone();
    let graph = &live.graph;
    let plans = join_plans(program, config);
    let pre_add_len = db.len();

    // The updated extensional set and its canonical order: survivors in
    // original id order, then the additions. A net addition whose value
    // already exists as derived keeps its (interleaved) id and is merely
    // promoted, which is why the order is tracked explicitly.
    let retracted: HashSet<FactId> = net.retracts.iter().copied().collect();
    let mut edb_order: Vec<FactId> = db
        .iter()
        .map(|(id, _)| id)
        .filter(|id| graph.is_extensional(*id) && !retracted.contains(id))
        .collect();
    let mut extensional: HashSet<FactId> = edb_order.iter().copied().collect();
    let mut grew: HashSet<Symbol> = HashSet::new();
    let mut added = 0usize;
    for fact in &net.adds {
        let (id, fresh) = db.insert(fact.clone());
        if fresh {
            grew.insert(fact.predicate);
            // Fresh means the value was nowhere in the live store.
            added += 1;
        }
        extensional.insert(id);
        edb_order.push(id);
    }

    // DRed over-deletion, seeded by the retractions. Unconditional: even
    // a retracted fact with surviving derivations is torn down and left
    // to re-derivation, which is what keeps self-supporting derivations
    // (whose only premises pass through the fact itself) from resurrecting
    // it.
    let mut teardown = Teardown {
        graph,
        by_premise: None,
        old_len: pre_add_len,
        dead: vec![false; graph.derivations().len()],
        deleted: HashSet::new(),
        deleted_values: HashSet::new(),
        shrank: HashSet::new(),
    };
    for &id in &net.retracts {
        teardown.over_delete(&mut db, &extensional, id);
    }

    // Old derivations grouped by rule, for the per-stratum passes.
    let mut ders_of_rule: Vec<Vec<usize>> = vec![Vec::new(); program.len()];
    for (i, der) in graph.derivations().iter().enumerate() {
        ders_of_rule[der.rule.0].push(i);
    }

    let mut seen: HashSet<(RuleId, FactId, Vec<FactId>)> = HashSet::new();
    let mut new_ders: Vec<Derivation> = Vec::new();
    let mut rederived = 0usize;
    let strata = program.stratification().strata;
    for stratum in 0..strata {
        let stratum_rules: Vec<usize> = (0..program.len())
            .filter(|&i| program.rule_stratum(RuleId(i)) == stratum)
            .filter(|&i| !program.rule(RuleId(i)).is_constraint())
            .collect();

        // Negative invalidation: a grown negated predicate can block
        // derivations this stratum recorded earlier. Negated predicates
        // sit strictly below, so their extent is final here; the re-check
        // replays the recorded bindings against the current store.
        for &idx in &stratum_rules {
            let rule = program.rule(RuleId(idx));
            let negs: Vec<&Atom> = rule.negated_body().collect();
            if negs.is_empty() || !negs.iter().any(|a| grew.contains(&a.predicate)) {
                continue;
            }
            for &d in &ders_of_rule[idx] {
                if teardown.dead[d] {
                    continue;
                }
                let der = &graph.derivations()[d];
                if negation_blocked(&db, &negs, &der.bindings) {
                    teardown.dead[d] = true;
                    let conclusion = der.conclusion;
                    if !extensional.contains(&conclusion) {
                        teardown.over_delete(&mut db, &extensional, conclusion);
                    }
                }
            }
        }

        // Directly re-fire the over-deleted derivations whose premises
        // all survived — the cheap half of DRed's re-derivation, covering
        // everything whose support was merely *also* torn down. The
        // dedup set `seen` tracks only derivations recorded by this pass:
        // a re-fired or pivoted derivation can never collide with a
        // surviving old one (its key carries a fresh conclusion or
        // premise id), and the full re-enumerations below screen their
        // all-old matches against the old graph directly.
        for &idx in &stratum_rules {
            let rule = program.rule(RuleId(idx));
            let negs: Vec<&Atom> = rule.negated_body().collect();
            for &d in &ders_of_rule[idx] {
                if !teardown.dead[d] {
                    continue;
                }
                let der = &graph.derivations()[d];
                if der.premises.iter().any(|p| teardown.deleted.contains(p)) {
                    continue;
                }
                if !negs.is_empty() && negation_blocked(&db, &negs, &der.bindings) {
                    continue;
                }
                let value = db.fact(der.conclusion).clone();
                let (id, fresh) = db.insert(value);
                if fresh {
                    grew.insert(db.fact(id).predicate);
                    if teardown.deleted_values.contains(db.fact(id)) {
                        rederived += 1;
                    } else {
                        added += 1;
                    }
                }
                let key = (der.rule, id, der.premises.clone());
                if seen.insert(key) {
                    new_ders.push(Derivation {
                        rule: der.rule,
                        premises: der.premises.clone(),
                        conclusion: id,
                        round: 0, // replay assigns canonical rounds
                        contributors: 1,
                        bindings: der.bindings.clone(),
                        contributor_bindings: Vec::new(),
                    });
                }
            }
        }

        // Semi-naive propagation to fixpoint. Rules negating a shrunken
        // predicate re-enumerate in full (a disappeared fact can unblock
        // matches anywhere); everything else pivots on the facts added
        // since the live outcome was sealed.
        let mut watermark: Vec<usize> = vec![usize::MAX; program.len()];
        let mut needs_full: Vec<bool> = vec![false; program.len()];
        for &idx in &stratum_rules {
            let rule = program.rule(RuleId(idx));
            let dirty = rule
                .negated_body()
                .any(|a| teardown.shrank.contains(&a.predicate));
            needs_full[idx] = dirty;
            watermark[idx] = pre_add_len;
        }
        loop {
            let mut changed = false;
            for &idx in &stratum_rules {
                let rule = program.rule(RuleId(idx));
                let current = db.len();
                let mut metrics = MatchMetrics::default();
                let mut matches = if needs_full[idx] {
                    needs_full[idx] = false;
                    match_body_planned(&mut db, rule, &plans[idx], true, &mut metrics)
                } else if watermark[idx] < current {
                    match_body_incremental_planned(
                        &mut db,
                        rule,
                        &plans[idx],
                        watermark[idx] as u32,
                        &mut metrics,
                    )
                } else {
                    continue;
                }
                .map_err(|source| ChaseError::Eval {
                    rule: rule.label.clone(),
                    source,
                })?;
                watermark[idx] = current;
                matches.sort_by(|a, b| a.premises.cmp(&b.premises));
                matches.dedup_by(|a, b| a.premises == b.premises);
                for m in matches {
                    let (id, fresh) = db.insert(head_fact(rule, &m.bindings));
                    if fresh {
                        changed = true;
                        grew.insert(db.fact(id).predicate);
                        if teardown.deleted_values.contains(db.fact(id)) {
                            rederived += 1;
                        } else {
                            added += 1;
                        }
                    }
                    // A match built entirely from old facts mirrors an
                    // old derivation; if that derivation survived the
                    // teardown it is still scheduled for replay, and
                    // recording it again would double it. Pivoted
                    // matches always carry a fresh premise, so only the
                    // full re-enumerations reach this screen.
                    let all_old = m.premises.iter().all(|p| (p.0 as usize) < pre_add_len);
                    if all_old
                        && graph.derivations_of(id).iter().any(|&d| {
                            !teardown.dead[d.0 as usize] && {
                                let od = &graph.derivations()[d.0 as usize];
                                od.rule == RuleId(idx) && od.premises == m.premises
                            }
                        })
                    {
                        continue;
                    }
                    let key = (RuleId(idx), id, m.premises.clone());
                    if seen.insert(key) {
                        new_ders.push(Derivation {
                            rule: RuleId(idx),
                            premises: m.premises,
                            conclusion: id,
                            round: 0,
                            contributors: 1,
                            bindings: m.bindings,
                            contributor_bindings: Vec::new(),
                        });
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    // Every over-deleted value whose slot was never re-claimed is gone
    // from the live extent.
    let removed = teardown
        .deleted_values
        .iter()
        .filter(|v| db.lookup(v).is_none())
        .count();

    // The maintained model, on interleaved working ids: every surviving
    // or new derivation. Replay it into a fresh store in canonical order.
    let mut live_ders: Vec<LiveDer<'_>> = Vec::new();
    for (i, der) in graph.derivations().iter().enumerate() {
        if !teardown.dead[i] {
            live_ders.push(LiveDer {
                rule: der.rule.0,
                premises: &der.premises,
                conclusion: der.conclusion,
                bindings: &der.bindings,
            });
        }
    }
    for der in &new_ders {
        live_ders.push(LiveDer {
            rule: der.rule.0,
            premises: &der.premises,
            conclusion: der.conclusion,
            bindings: &der.bindings,
        });
    }
    let outcome = replay(program, config, db, &live_ders, &edb_order, &plans, started)?;
    Ok((
        outcome,
        DeltaCounts {
            added,
            removed,
            rederived,
        },
    ))
}

/// The round in which a fact first derived at `avail` becomes visible to
/// rule `consumer` of a stratum starting at round `first_round`:
/// anything older than the stratum is visible from its first round; a
/// same-stratum fact committed by an earlier rule is visible the same
/// round (commit-phase top-up), otherwise the next round. Extensional
/// facts carry producer rule −1 and are visible everywhere.
fn visible_from(avail: (u32, i64), first_round: u32, consumer: usize) -> u32 {
    let (round, producer) = avail;
    if round < first_round {
        first_round
    } else if producer < consumer as i64 {
        round
    } else {
        round + 1
    }
}

/// The canonical firing round of a derivation: the first round all its
/// premises are visible to its rule. `avail` is indexed by working fact
/// id; an unresolved premise carries the `u32::MAX` sentinel round.
fn firing_round(first_round: u32, rule: usize, premises: &[FactId], avail: &[(u32, i64)]) -> u32 {
    premises
        .iter()
        .map(|p| visible_from(avail[p.0 as usize], first_round, rule))
        .fold(first_round, u32::max)
}

/// Replays the maintained model into a fresh store, reproducing the
/// exact fact ids, derivation order, rounds and report counters a
/// from-scratch chase on the updated EDB would commit (see the module
/// docs). Per stratum, derivations are scheduled by a shortest-first
/// (Dijkstra-style) pass over premise availability, then fired in
/// (round, rule, premises) order — the from-scratch commit order.
///
/// Canonical ids are assigned arithmetically (EDB order, then firing
/// order) and the store itself is produced at the end by permuting the
/// consumed working store ([`Database::permuted`]): the canonical model
/// is exactly the live working facts under a new id order, so no fact
/// is cloned or re-hashed on the way.
fn replay(
    program: &Program,
    config: &ChaseConfig,
    wdb: Database,
    live_ders: &[LiveDer<'_>],
    edb_order: &[FactId],
    plans: &[JoinPlan],
    started: Instant,
) -> Result<ChaseOutcome, ChaseError> {
    let strata = program.stratification().strata;
    let mut ngraph = ChaseGraph::new();
    // Working id -> replayed id, and working id -> (first round, producer
    // rule) availability, both dense over the working store; `u32::MAX`
    // marks unmapped / unresolved slots.
    let mut map: Vec<FactId> = vec![FactId(u32::MAX); wdb.len()];
    let mut avail: Vec<(u32, i64)> = vec![(u32::MAX, 0); wdb.len()];
    let mut next_id: u32 = 0;
    for &wid in edb_order {
        let nid = FactId(next_id);
        next_id += 1;
        ngraph.mark_extensional(nid);
        debug_assert!(
            map[wid.0 as usize].0 == u32::MAX,
            "canonical EDB facts are distinct"
        );
        map[wid.0 as usize] = nid;
        avail[wid.0 as usize] = (0, -1);
    }
    let edb_len = next_id as usize;

    let mut by_stratum: Vec<Vec<usize>> = vec![Vec::new(); strata];
    for (i, der) in live_ders.iter().enumerate() {
        by_stratum[program.rule_stratum(RuleId(der.rule))].push(i);
    }

    // Schedule: per stratum, resolve premise availability shortest-first.
    // Keys pushed are always lexicographically above the key being
    // popped (a premise resolved at (r, i) yields firing rounds >= r,
    // with a strictly larger rule index at equality), so a single heap
    // pass finalizes every availability in canonical order.
    let mut fired: Vec<((u32, u32), usize)> = Vec::with_capacity(live_ders.len());
    let mut stratum_first: Vec<u32> = vec![0; strata];
    let mut next_round: u32 = 1;
    // Waiters indexed by working fact id; every list pushed within a
    // stratum is drained there (each premise resolves), so the buffer is
    // safely reused across strata.
    let mut waiting: Vec<Vec<usize>> = vec![Vec::new(); wdb.len()];
    for (stratum, members) in by_stratum.iter().enumerate() {
        let first_round = next_round;
        stratum_first[stratum] = first_round;
        let mut unresolved: Vec<u32> = vec![0; members.len()];
        let mut heap: BinaryHeap<Reverse<((u32, u32), usize)>> = BinaryHeap::new();
        for (k, &di) in members.iter().enumerate() {
            let der = &live_ders[di];
            let mut pending = 0;
            for p in der.premises {
                if avail[p.0 as usize].0 == u32::MAX {
                    pending += 1;
                    waiting[p.0 as usize].push(k);
                }
            }
            unresolved[k] = pending;
            if pending == 0 {
                let fr = firing_round(first_round, der.rule, der.premises, &avail);
                heap.push(Reverse(((fr, der.rule as u32), k)));
            }
        }
        let mut scheduled = 0usize;
        let mut last_fresh_round: Option<u32> = None;
        while let Some(Reverse((key, k))) = heap.pop() {
            let di = members[k];
            let der = &live_ders[di];
            fired.push((key, di));
            scheduled += 1;
            let slot = der.conclusion.0 as usize;
            if avail[slot].0 == u32::MAX {
                avail[slot] = (key.0, der.rule as i64);
                last_fresh_round = Some(last_fresh_round.map_or(key.0, |r| r.max(key.0)));
                for k2 in std::mem::take(&mut waiting[slot]) {
                    unresolved[k2] -= 1;
                    if unresolved[k2] == 0 {
                        let d2 = &live_ders[members[k2]];
                        let fr = firing_round(first_round, d2.rule, d2.premises, &avail);
                        heap.push(Reverse(((fr, d2.rule as u32), k2)));
                    }
                }
            }
        }
        assert_eq!(
            scheduled,
            members.len(),
            "every live derivation is grounded in the maintained store"
        );
        // A stratum deriving fresh facts up to round M runs its fixpoint
        // check in M+1; one deriving nothing spends a single round.
        next_round = match last_fresh_round {
            Some(m) => m + 2,
            None => first_round + 1,
        };
    }
    let total_rounds = next_round - 1;

    // Fire in canonical order: (round, rule) buckets, premise-id order
    // within a bucket — every premise is finalized before its consumer's
    // bucket, so the mapped ids are complete when needed.
    let mut rules_report: Vec<RuleStats> = program
        .rules()
        .iter()
        .map(|rule| RuleStats {
            label: rule.label.clone(),
            ..RuleStats::default()
        })
        .collect();
    let mut round_fresh: Vec<u64> = vec![0; total_rounds as usize + 1];
    fired.sort_unstable_by_key(|&(key, _)| key);
    let mut i = 0;
    while i < fired.len() {
        let key = fired[i].0;
        let mut j = i;
        while j < fired.len() && fired[j].0 == key {
            j += 1;
        }
        let mut bucket: Vec<(Vec<FactId>, usize)> = fired[i..j]
            .iter()
            .map(|&(_, di)| {
                let mapped: Vec<FactId> = live_ders[di]
                    .premises
                    .iter()
                    .map(|p| map[p.0 as usize])
                    .collect();
                (mapped, di)
            })
            .collect();
        bucket.sort_unstable();
        for (premises, di) in bucket {
            let der = &live_ders[di];
            // The working store is deduplicated, so distinct live slots
            // hold distinct values: a duplicate firing is exactly a
            // second derivation of an already-mapped conclusion slot.
            let slot = der.conclusion.0 as usize;
            let (nid, fresh) = if map[slot].0 == u32::MAX {
                let nid = FactId(next_id);
                next_id += 1;
                map[slot] = nid;
                (nid, true)
            } else {
                (map[slot], false)
            };
            let stats = &mut rules_report[der.rule];
            stats.firings += 1;
            if fresh {
                stats.facts_committed += 1;
                round_fresh[key.0 as usize] += 1;
            } else {
                stats.duplicates_preempted += 1;
            }
            ngraph.record(Derivation {
                rule: RuleId(der.rule),
                premises,
                conclusion: nid,
                round: key.0,
                contributors: 1,
                bindings: der.bindings.clone(),
                contributor_bindings: Vec::new(),
            });
        }
        i = j;
    }

    // Materialize the canonical store: the working store's live facts,
    // scattered into the id order assigned above. Then mirror the
    // run-start eager index build, so the served store carries the same
    // indexes a from-scratch run would.
    let mut ndb = wdb.permuted(&map, next_id as usize);
    if config.use_positional_index {
        for (rule, plan) in program.rules().iter().zip(plans) {
            for (pred, sig) in plan.required_composite_indexes(rule) {
                ndb.ensure_composite_index(pred, &sig);
            }
        }
    }

    // Constraints: re-match against the final store and order the
    // violated labels by the canonical round (and rule) in which the
    // from-scratch run first saw a violating match. Constraint-free
    // programs skip the pass (and its replayed-id availability table)
    // entirely.
    let mut violated: Vec<(u32, usize)> = Vec::new();
    if program.rules().iter().any(|r| r.is_constraint()) {
        let mut avail_replayed: Vec<(u32, i64)> = vec![(u32::MAX, 0); ndb.len()];
        for (w, &nid) in map.iter().enumerate() {
            if nid.0 != u32::MAX {
                avail_replayed[nid.0 as usize] = avail[w];
            }
        }
        for (idx, rule) in program.rules().iter().enumerate() {
            if !rule.is_constraint() {
                continue;
            }
            let mut metrics = MatchMetrics::default();
            let matches = match_body_planned(
                &mut ndb,
                rule,
                &plans[idx],
                config.use_positional_index,
                &mut metrics,
            )
            .map_err(|source| ChaseError::Eval {
                rule: rule.label.clone(),
                source,
            })?;
            let first_round = stratum_first[program.rule_stratum(RuleId(idx))];
            if let Some(first) = matches
                .iter()
                .map(|m| firing_round(first_round, idx, &m.premises, &avail_replayed))
                .min()
            {
                violated.push((first, idx));
            }
        }
    }
    violated.sort_unstable();
    let violations: Vec<String> = violated
        .iter()
        .map(|&(_, idx)| program.rule(RuleId(idx)).label.clone())
        .collect();
    if config.fail_on_violation {
        if let Some(label) = violations.first() {
            return Err(ChaseError::ConstraintViolated {
                rule: label.clone(),
            });
        }
    }

    let mut report = RunReport {
        termination: Termination::Completed,
        threads: config.effective_threads(),
        rounds: total_rounds,
        strata: strata as u32,
        rules: rules_report,
        ..RunReport::default()
    };
    if config.full_telemetry {
        let mut facts_end = edb_len as u64;
        for round in 1..=total_rounds {
            let committed = round_fresh[round as usize];
            facts_end += committed;
            let stratum = stratum_first.partition_point(|&first| first <= round) - 1;
            report.rounds_log.push(RoundStats {
                round,
                stratum: stratum as u32,
                matches: 0, // maintenance enumerates no from-scratch matches
                facts_committed: committed,
                facts_end,
                duration_ns: 0,
            });
        }
        report.timings.total_ns = started.elapsed().as_nanos() as u64;
    }
    report.peak.facts = ndb.len() as u64;
    report.peak.derivations = ngraph.derivations().len() as u64;
    report.peak.approx_bytes = (ndb.approx_bytes() + ngraph.approx_bytes()) as u64;

    Ok(ChaseOutcome {
        derived_facts: ndb.len() - edb_len,
        database: ndb,
        graph: ngraph,
        rounds: total_rounds as usize,
        violations,
        report,
        resume: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Runs `src` from scratch, returning the program is impossible here
    /// (the session borrows it), so callers parse themselves; this just
    /// builds the initial outcome.
    fn initial<'p>(
        program: &'p Program,
        facts: Vec<Fact>,
        config: &ChaseConfig,
    ) -> (ChaseSession<'p>, Arc<ChaseOutcome>) {
        let db: Database = facts.into_iter().collect();
        let mut session = ChaseSession::new(program).with_config(config.clone());
        let out = session.run(db).unwrap();
        session.load(out);
        let live = Arc::clone(session.live().unwrap());
        (session, live)
    }

    /// Bindings rendered with sorted keys, for order-insensitive
    /// comparison.
    fn render_bindings(b: &Bindings) -> String {
        let mut entries: Vec<(String, String)> = b
            .iter()
            .map(|(k, v)| (format!("{k}"), format!("{v:?}")))
            .collect();
        entries.sort();
        format!("{entries:?}")
    }

    /// A structural fingerprint of everything the determinism contract
    /// covers: facts in id order, activity, extensional marks, and every
    /// derivation field.
    fn structural(out: &ChaseOutcome) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (id, fact) in out.database.iter() {
            let _ = writeln!(
                s,
                "fact {} {} active={} edb={}",
                id.0,
                fact,
                out.database.is_active(id),
                out.graph.is_extensional(id)
            );
        }
        for (i, d) in out.graph.derivations().iter().enumerate() {
            let _ = writeln!(
                s,
                "der {} rule={} premises={:?} conclusion={} round={} contributors={} bindings={}",
                i,
                d.rule.0,
                d.premises.iter().map(|p| p.0).collect::<Vec<_>>(),
                d.conclusion.0,
                d.round,
                d.contributors,
                render_bindings(&d.bindings),
            );
        }
        let _ = writeln!(
            s,
            "rounds={} derived={} violations={:?}",
            out.rounds, out.derived_facts, out.violations
        );
        s
    }

    /// Asserts the maintained outcome is bitwise identical to a
    /// from-scratch chase on the same EDB.
    fn assert_matches_scratch(program: &Program, edb: Vec<Fact>, maintained: &ChaseOutcome) {
        let config = ChaseConfig::default();
        let db: Database = edb.into_iter().collect();
        let scratch = ChaseSession::new(program)
            .with_config(config)
            .run(db)
            .unwrap();
        assert_eq!(structural(&scratch), structural(maintained));
    }

    fn own(x: &str, y: &str) -> Fact {
        Fact::new("own", vec![x.into(), y.into()])
    }

    const REACH: &str = r#"
        r1: own(x, y) -> reach(x, y).
        r2: reach(x, y), own(y, z) -> reach(x, z).
    "#;

    #[test]
    fn additions_propagate_and_match_scratch() {
        let parsed = parse_program(REACH).unwrap();
        // Pin indexes on: this test asserts the incremental strategy,
        // which the VADALOG_NO_INDEX scan-ablation default disables.
        let config = ChaseConfig::default().with_positional_index(true);
        let (mut session, _) =
            initial(&parsed.program, vec![own("A", "B"), own("B", "C")], &config);
        let applied = session
            .apply_delta(Delta::new().add(own("C", "D")))
            .unwrap();
        assert_eq!(applied.strategy, DeltaStrategy::Incremental);
        assert_eq!(applied.edb_added, 1);
        assert!(applied
            .outcome
            .database
            .contains(&Fact::new("reach", vec!["A".into(), "D".into()])));
        assert_matches_scratch(
            &parsed.program,
            vec![own("A", "B"), own("B", "C"), own("C", "D")],
            &applied.outcome,
        );
    }

    #[test]
    fn goal_cone_sessions_fall_back_to_a_pruned_rechase() {
        // A cone-restricted session must not take the incremental path
        // (the maintenance loops re-match rules outside the cone); the
        // full-rechase fallback honours the cone, so the maintained
        // outcome equals a from-scratch *pruned* chase on the updated
        // EDB.
        let parsed = parse_program(
            r#"
            r1: own(x, y) -> reach(x, y).
            r2: reach(x, y), own(y, z) -> reach(x, z).
            r3: own(x, y) -> audited(x).
        "#,
        )
        .unwrap();
        let config = ChaseConfig::default()
            .with_positional_index(true)
            .with_goal_cone("reach");
        let (mut session, _) =
            initial(&parsed.program, vec![own("A", "B"), own("B", "C")], &config);
        let applied = session
            .apply_delta(Delta::new().add(own("C", "D")))
            .unwrap();
        let expected = if prune_ablation_default() {
            DeltaStrategy::Incremental
        } else {
            DeltaStrategy::FullRechase
        };
        assert_eq!(applied.strategy, expected);
        let scratch = ChaseSession::new(&parsed.program)
            .with_config(config)
            .run(
                vec![own("A", "B"), own("B", "C"), own("C", "D")]
                    .into_iter()
                    .collect::<Database>(),
            )
            .unwrap();
        assert_eq!(structural(&scratch), structural(&applied.outcome));
        if !prune_ablation_default() {
            assert!(applied
                .outcome
                .database
                .facts_of("audited".into())
                .is_empty());
        }
    }

    #[test]
    fn retraction_tears_down_the_cone_and_matches_scratch() {
        let parsed = parse_program(REACH).unwrap();
        let config = ChaseConfig::default();
        let (mut session, _) = initial(
            &parsed.program,
            vec![own("A", "B"), own("B", "C"), own("C", "D")],
            &config,
        );
        let applied = session
            .apply_delta(Delta::new().retract(own("B", "C")))
            .unwrap();
        assert_eq!(applied.edb_retracted, 1);
        assert!(!applied
            .outcome
            .database
            .contains(&Fact::new("reach", vec!["A".into(), "C".into()])));
        // C->D survives: its own EDB fact still supports it.
        assert!(applied
            .outcome
            .database
            .contains(&Fact::new("reach", vec!["C".into(), "D".into()])));
        assert_matches_scratch(
            &parsed.program,
            vec![own("A", "B"), own("C", "D")],
            &applied.outcome,
        );
    }

    #[test]
    fn retraction_collapses_unfounded_cycles() {
        // a and b support each other once seeded; retracting the seed
        // must collapse the cycle, not let it survive on mutual support.
        let parsed = parse_program(
            r#"
            c1: seed(x) -> a(x).
            c2: a(x) -> b(x).
            c3: b(x) -> a(x).
        "#,
        )
        .unwrap();
        let config = ChaseConfig::default();
        let seed = Fact::new("seed", vec!["s".into()]);
        let (mut session, _) = initial(&parsed.program, vec![seed.clone()], &config);
        let applied = session.apply_delta(Delta::new().retract(seed)).unwrap();
        assert_eq!(applied.outcome.database.len(), 0);
        assert_matches_scratch(&parsed.program, vec![], &applied.outcome);
    }

    #[test]
    fn self_supporting_derivations_do_not_resurrect_a_retraction() {
        let parsed = parse_program("s1: p(x) -> p(x).").unwrap();
        let config = ChaseConfig::default();
        let fact = Fact::new("p", vec!["1".into()]);
        let (mut session, _) = initial(&parsed.program, vec![fact.clone()], &config);
        let applied = session.apply_delta(Delta::new().retract(fact)).unwrap();
        assert_eq!(applied.outcome.database.len(), 0);
        assert_matches_scratch(&parsed.program, vec![], &applied.outcome);
    }

    #[test]
    fn grown_negation_invalidates_and_shrunk_negation_unblocks() {
        let parsed = parse_program(
            r#"
            n1: own(x, y), not blocked(x) -> cleared(x, y).
        "#,
        )
        .unwrap();
        let config = ChaseConfig::default();
        let blocked = Fact::new("blocked", vec!["A".into()]);
        let (mut session, _) = initial(&parsed.program, vec![own("A", "B")], &config);

        // Growing `blocked` must retract the cleared fact...
        let applied = session
            .apply_delta(Delta::new().add(blocked.clone()))
            .unwrap();
        assert!(!applied
            .outcome
            .database
            .contains(&Fact::new("cleared", vec!["A".into(), "B".into()])));
        assert_matches_scratch(
            &parsed.program,
            vec![own("A", "B"), blocked.clone()],
            &applied.outcome,
        );

        // ...and retracting it must re-derive it.
        let applied = session.apply_delta(Delta::new().retract(blocked)).unwrap();
        assert!(applied
            .outcome
            .database
            .contains(&Fact::new("cleared", vec!["A".into(), "B".into()])));
        assert_matches_scratch(&parsed.program, vec![own("A", "B")], &applied.outcome);
    }

    #[test]
    fn retract_then_readd_across_deltas_restores_the_original_ids() {
        let parsed = parse_program(REACH).unwrap();
        let config = ChaseConfig::default();
        let edb = vec![own("A", "B"), own("B", "C")];
        let (mut session, original) = initial(&parsed.program, edb.clone(), &config);
        session
            .apply_delta(Delta::new().retract(own("A", "B")))
            .unwrap();
        let restored = session
            .apply_delta(Delta::new().add(own("A", "B")))
            .unwrap();
        // Re-adding at the *end* of the EDB order shifts ids relative to
        // the original, but must still equal a from-scratch chase on the
        // reordered EDB.
        assert_matches_scratch(
            &parsed.program,
            vec![own("B", "C"), own("A", "B")],
            &restored.outcome,
        );
        assert_eq!(original.database.len(), restored.outcome.database.len());
    }

    #[test]
    fn promoting_a_derived_fact_protects_it_from_teardown() {
        let parsed = parse_program(REACH).unwrap();
        let config = ChaseConfig::default();
        let (mut session, _) = initial(&parsed.program, vec![own("A", "B")], &config);
        let reach = Fact::new("reach", vec!["A".into(), "B".into()]);
        // Assert the derived fact as EDB, then retract its support: it
        // must survive as an asserted fact.
        session
            .apply_delta(Delta::new().add(reach.clone()))
            .unwrap();
        let applied = session
            .apply_delta(Delta::new().retract(own("A", "B")))
            .unwrap();
        assert!(applied.outcome.database.contains(&reach));
        assert_matches_scratch(&parsed.program, vec![reach], &applied.outcome);
    }

    #[test]
    fn net_effect_coalesces_to_the_last_operation() {
        let parsed = parse_program(REACH).unwrap();
        let config = ChaseConfig::default();
        let (mut session, _) = initial(&parsed.program, vec![own("A", "B")], &config);
        // add-then-retract of an unknown fact is a net no-op; retract-
        // then-add of a live fact is a net no-op too.
        let applied = session
            .apply_delta(
                Delta::new()
                    .add(own("X", "Y"))
                    .retract(own("X", "Y"))
                    .retract(own("A", "B"))
                    .add(own("A", "B")),
            )
            .unwrap();
        assert_eq!(applied.edb_added, 0);
        assert_eq!(applied.edb_retracted, 0);
        assert_matches_scratch(&parsed.program, vec![own("A", "B")], &applied.outcome);
    }

    #[test]
    fn rejected_deltas_leave_the_live_outcome_untouched() {
        let parsed = parse_program(REACH).unwrap();
        let config = ChaseConfig::default();
        let (mut session, live) = initial(&parsed.program, vec![own("A", "B")], &config);

        let unknown = session.apply_delta(Delta::new().retract(own("Z", "Z")));
        assert!(matches!(
            unknown,
            Err(ChaseError::Delta(DeltaError::UnknownRetraction(_)))
        ));
        let derived = session
            .apply_delta(Delta::new().retract(Fact::new("reach", vec!["A".into(), "B".into()])));
        assert!(matches!(
            derived,
            Err(ChaseError::Delta(DeltaError::NonExtensionalRetraction(_)))
        ));
        let null = session
            .apply_delta(Delta::new().add(Fact::new("own", vec![Value::Null(7), "B".into()])));
        assert!(matches!(
            null,
            Err(ChaseError::Delta(DeltaError::NullInAddition(_)))
        ));
        assert!(Arc::ptr_eq(session.live().unwrap(), &live));
    }

    #[test]
    fn apply_delta_requires_a_live_outcome() {
        let parsed = parse_program(REACH).unwrap();
        let mut session = ChaseSession::new(&parsed.program);
        assert!(matches!(
            session.apply_delta(Delta::new().add(own("A", "B"))),
            Err(ChaseError::Delta(DeltaError::NoLiveOutcome))
        ));
    }

    #[test]
    fn aggregate_programs_fall_back_to_full_rechase() {
        let parsed = parse_program(
            r#"
            a1: own(x, y), k = count(y) -> count_of(x, k).
        "#,
        )
        .unwrap();
        let config = ChaseConfig::default();
        let (mut session, _) = initial(&parsed.program, vec![own("A", "B")], &config);
        let applied = session
            .apply_delta(Delta::new().add(own("A", "C")))
            .unwrap();
        assert_eq!(applied.strategy, DeltaStrategy::FullRechase);
        assert_matches_scratch(
            &parsed.program,
            vec![own("A", "B"), own("A", "C")],
            &applied.outcome,
        );
    }

    #[test]
    fn violations_are_recomputed_in_canonical_order() {
        let parsed = parse_program(
            r#"
            r1: own(x, y) -> reach(x, y).
            v1: reach(x, x) -> !.
        "#,
        )
        .unwrap();
        let config = ChaseConfig::default();
        let (mut session, _) = initial(&parsed.program, vec![own("A", "B")], &config);
        let applied = session
            .apply_delta(Delta::new().add(own("B", "B")))
            .unwrap();
        assert_eq!(applied.outcome.violations, vec!["v1".to_string()]);
        assert_matches_scratch(
            &parsed.program,
            vec![own("A", "B"), own("B", "B")],
            &applied.outcome,
        );
    }

    #[test]
    fn delta_metrics_are_emitted() {
        use crate::obs::metrics::MetricsRegistry;
        let parsed = parse_program(REACH).unwrap();
        let registry = Arc::new(MetricsRegistry::new());
        let config = ChaseConfig::default()
            .with_positional_index(true)
            .with_metrics(Arc::clone(&registry));
        let (mut session, _) = initial(&parsed.program, vec![own("A", "B")], &config);
        session
            .apply_delta(Delta::new().add(own("B", "C")))
            .unwrap();
        let rendered = registry.to_prometheus();
        assert!(rendered.contains("vadalog_delta_applies_total"));
        assert!(rendered.contains("strategy=\"incremental\""));
        assert!(rendered.contains("vadalog_delta_facts_added_total"));
    }
}
