//! Shared helpers of the study simulations.

use explain::DomainGlossary;
use vadalog::{ChaseOutcome, DerivationPolicy, FactId, Value};

/// The constants used in the proof of `fact`, rendered exactly as the
/// verbalizer renders them (same glossary formats). These are the items
/// whose presence the completeness experiment (Sec. 6.3) checks in the
/// output text.
pub fn proof_constants(
    outcome: &ChaseOutcome,
    fact: FactId,
    glossary: &DomainGlossary,
) -> Vec<String> {
    let proof = outcome.graph.proof(fact, DerivationPolicy::Richest);
    let mut out: Vec<String> = Vec::new();
    for id in proof.facts() {
        let f = outcome.database.fact(id);
        for (pos, v) in f.values.iter().enumerate() {
            if matches!(v, Value::Null(_)) {
                continue;
            }
            let rendered = glossary.format_of(f.predicate, pos).render(v);
            if !out.contains(&rendered) {
                out.push(rendered);
            }
        }
    }
    out
}

/// Splits `text` into sentences (shared with `llm-sim`'s splitter).
pub fn sentences(text: &str) -> Vec<String> {
    llm_sim::split_sentences(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use finkg::apps::simple_stress;
    use vadalog::{ChaseSession, Fact};

    #[test]
    fn constants_cover_the_figure_8_proof() {
        let out = ChaseSession::new(&simple_stress::program())
            .run(simple_stress::figure_8_database())
            .unwrap();
        let id = out.lookup(&Fact::new("default", vec!["C".into()])).unwrap();
        let cs = proof_constants(&out, id, &simple_stress::glossary());
        for needle in [
            "A",
            "B",
            "C",
            "6M euros",
            "5M euros",
            "7M euros",
            "11M euros",
        ] {
            assert!(cs.contains(&needle.to_string()), "missing {needle}: {cs:?}");
        }
    }

    #[test]
    fn constants_are_deduplicated() {
        let out = ChaseSession::new(&simple_stress::program())
            .run(simple_stress::figure_8_database())
            .unwrap();
        let id = out.lookup(&Fact::new("default", vec!["C".into()])).unwrap();
        let cs = proof_constants(&out, id, &simple_stress::glossary());
        let mut sorted = cs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), cs.len());
    }
}
