//! Figures 6, 7 and 11: domain glossaries and the generated explanation
//! templates (deterministic and enhanced) of every application.

use explain::{generate, DomainGlossary, TemplateStyle};
use finkg::apps::{close_links, control, simple_stress, stress};
use vadalog::Program;

/// The template catalog of one application.
pub struct AppCatalog {
    /// Application name.
    pub name: &'static str,
    /// Rule listing (surface syntax).
    pub rules: Vec<String>,
    /// Per-path rows: (path label, deterministic template, enhanced
    /// template).
    pub templates: Vec<(String, String, String)>,
}

/// Builds the catalog of one application.
pub fn app_catalog(
    name: &'static str,
    program: Program,
    goal: &str,
    glossary: &DomainGlossary,
) -> AppCatalog {
    let analysis = explain::analyze(&program, goal).expect("analysis succeeds");
    let templates = analysis
        .paths
        .iter()
        .enumerate()
        .map(|(i, path)| {
            let det = generate(&program, glossary, path, i, TemplateStyle::Deterministic);
            let enh = generate(&program, glossary, path, i, TemplateStyle::Fluent);
            (path.label(&program), det.render(), enh.render())
        })
        .collect();
    AppCatalog {
        name,
        rules: program.rules().iter().map(|r| r.to_string()).collect(),
        templates,
    }
}

/// The catalogs of all four applications.
pub fn run() -> Vec<AppCatalog> {
    vec![
        app_catalog(
            "Example 4.3 (simplified stress test)",
            simple_stress::program(),
            simple_stress::GOAL,
            &simple_stress::glossary(),
        ),
        app_catalog(
            "Company Control",
            control::program(),
            control::GOAL,
            &control::glossary(),
        ),
        app_catalog(
            "Stress Test",
            stress::program(),
            stress::GOAL,
            &stress::glossary(),
        ),
        app_catalog(
            "Close Links",
            close_links::program(),
            close_links::GOAL,
            &close_links::glossary(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_application_has_a_complete_catalog() {
        for app in run() {
            assert!(!app.rules.is_empty(), "{}", app.name);
            assert!(!app.templates.is_empty(), "{}", app.name);
            for (label, det, enh) in &app.templates {
                assert!(det.contains('<'), "{}/{} has no tokens", app.name, label);
                assert!(enh.contains('<'), "{}/{}", app.name, label);
                // The fluent form stays within the deterministic one, up
                // to connective slack (an atom kept for token coverage
                // plus longer sentence openers).
                assert!(enh.len() <= det.len() + 64, "{}/{}", app.name, label);
            }
        }
    }

    #[test]
    fn example_4_3_has_five_template_rows() {
        // Π1, Π2, Π2-dashed (= Fig. 5's Π3), Γ1, Γ1-dashed (= Γ2).
        let apps = run();
        assert_eq!(apps[0].templates.len(), 5);
    }
}
