//! Cross-crate integration tests: parse → chase → structural analysis →
//! explanation, for every KG application.

use ekg_explain::finkg::apps::{close_links, control, simple_stress, stress};
use ekg_explain::finkg::{self, scenario};
use ekg_explain::prelude::*;

/// Runs one application end to end and returns all explanations of its
/// derived goal facts.
fn explain_all(
    program: Program,
    goal: &str,
    glossary: &DomainGlossary,
    db: Database,
) -> Vec<Explanation> {
    let pipeline = ExplanationPipeline::builder(program.clone(), goal)
        .with_glossary(glossary)
        .build()
        .expect("pipeline");
    let outcome = ChaseSession::new(&program).run(db).expect("chase");
    let goal_sym = Symbol::new(goal);
    outcome
        .database
        .facts_of(goal_sym)
        .iter()
        .filter(|&&id| outcome.graph.is_derived(id))
        .map(|&id| {
            pipeline
                .explain_id(&outcome, id, TemplateFlavor::Enhanced)
                .unwrap_or_else(|e| panic!("explaining {}: {e}", outcome.database.fact(id)))
        })
        .collect::<Vec<_>>()
}

#[test]
fn company_control_scenario_explains_every_derived_fact() {
    let es = explain_all(
        control::program(),
        control::GOAL,
        &control::glossary(),
        scenario::database(),
    );
    assert!(!es.is_empty());
    for e in es {
        assert!(!e.text.is_empty(), "{}", e.fact);
        assert!(!e.text.contains('<'), "{}: {}", e.fact, e.text);
        assert!(!e.paths.is_empty());
    }
}

#[test]
fn stress_test_scenario_explains_every_derived_default() {
    let es = explain_all(
        stress::program(),
        stress::GOAL,
        &stress::glossary(),
        scenario::database(),
    );
    assert_eq!(es.len(), 4); // A, B, C, F
    for e in &es {
        assert!(!e.text.contains('<'), "{}: {}", e.fact, e.text);
    }
}

#[test]
fn close_links_chain_explains() {
    let mut db = Database::new();
    db.add("own", &["A".into(), "B".into(), 0.9.into()]);
    db.add("own", &["B".into(), "C".into(), 0.5.into()]);
    let es = explain_all(
        close_links::program(),
        close_links::GOAL,
        &close_links::glossary(),
        db,
    );
    assert_eq!(es.len(), 3); // A-B, B-C, A-C
}

#[test]
fn random_ownership_graphs_always_explain_cleanly() {
    // Explanation must succeed for every derived control fact of randomly
    // generated graphs (not just hand-built scenarios).
    for seed in 0..5u64 {
        let db = finkg::random_ownership(25, 3, seed);
        let es = explain_all(control::program(), control::GOAL, &control::glossary(), db);
        for e in es {
            assert!(!e.text.contains('<'), "seed {seed}, {}: {}", e.fact, e.text);
        }
    }
}

#[test]
fn random_debt_networks_always_explain_cleanly() {
    for seed in 0..5u64 {
        let db = finkg::random_debt_network(25, 3, 3, seed);
        let es = explain_all(stress::program(), stress::GOAL, &stress::glossary(), db);
        for e in es {
            assert!(!e.text.contains('<'), "seed {seed}, {}: {}", e.fact, e.text);
        }
    }
}

#[test]
fn explanations_contain_every_proof_constant() {
    // The completeness guarantee of Sec. 6.3, as an invariant over random
    // inputs: the enhanced explanation carries all constants of the proof.
    use ekg_explain::studies::proof_constants;
    for seed in 0..5u64 {
        let db = finkg::random_ownership(20, 3, 100 + seed);
        let program = control::program();
        let glossary = control::glossary();
        let pipeline = ExplanationPipeline::builder(program.clone(), control::GOAL)
            .with_glossary(&glossary)
            .build()
            .expect("pipeline");
        let outcome = ChaseSession::new(&program).run(db).expect("chase");
        for &id in outcome.database.facts_of(Symbol::new("control")) {
            if !outcome.graph.is_derived(id) {
                continue;
            }
            let e = pipeline
                .explain_id(&outcome, id, TemplateFlavor::Enhanced)
                .expect("explainable");
            for c in proof_constants(&outcome, id, &glossary) {
                assert!(
                    e.text.contains(&c),
                    "seed {seed}: {} missing constant {c}\n{}",
                    outcome.database.fact(id),
                    e.text
                );
            }
        }
    }
}

#[test]
fn deterministic_flavor_also_contains_every_constant() {
    use ekg_explain::studies::proof_constants;
    let program = simple_stress::program();
    let glossary = simple_stress::glossary();
    let pipeline = ExplanationPipeline::builder(program.clone(), simple_stress::GOAL)
        .with_glossary(&glossary)
        .build()
        .expect("pipeline");
    let outcome = ChaseSession::new(&program)
        .run(simple_stress::figure_8_database())
        .expect("chase");
    let id = outcome
        .lookup(&Fact::new("default", vec!["C".into()]))
        .unwrap();
    let e = pipeline
        .explain_id(&outcome, id, TemplateFlavor::Deterministic)
        .expect("explainable");
    for c in proof_constants(&outcome, id, &glossary) {
        assert!(e.text.contains(&c), "missing {c}: {}", e.text);
    }
}

#[test]
fn pipeline_with_llm_enhancer_still_explains_completely() {
    use ekg_explain::studies::proof_constants;
    let llm = SimulatedLlm::new(Prompt::Paraphrase, 3);
    let program = control::program();
    let glossary = control::glossary();
    let pipeline = ExplanationPipeline::builder(program.clone(), control::GOAL)
        .with_glossary(&glossary)
        .with_enhancer(&llm, 4)
        .build()
        .expect("pipeline");
    let bundle = finkg::control_bundle(6, 2, 8);
    let outcome = ChaseSession::new(&program)
        .run(bundle.database)
        .expect("chase");
    for target in &bundle.targets {
        let id = outcome.lookup(target).expect("derived");
        let e = pipeline
            .explain_id(&outcome, id, TemplateFlavor::Enhanced)
            .expect("explainable");
        for c in proof_constants(&outcome, id, &glossary) {
            assert!(e.text.contains(&c), "missing {c}: {}", e.text);
        }
    }
}

#[test]
fn explanation_queries_on_inputs_are_rejected() {
    let program = control::program();
    let pipeline = ExplanationPipeline::builder(program.clone(), control::GOAL)
        .with_glossary(&control::glossary())
        .build()
        .expect("pipeline");
    let outcome = ChaseSession::new(&program)
        .run(scenario::database())
        .expect("chase");
    let own_id = outcome.database.facts_of(Symbol::new("own"))[0];
    assert!(matches!(
        pipeline.explain_id(&outcome, own_id, TemplateFlavor::Enhanced),
        Err(ExplainError::ExtensionalFact(_))
    ));
}
