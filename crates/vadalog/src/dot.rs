//! Graphviz (DOT) rendering of dependency graphs and chase graphs — the
//! visual artefacts of the paper's Figures 3 and 8.

use crate::database::Database;
use crate::depgraph::DependencyGraph;
use crate::program::Program;
use crate::provenance::ChaseGraph;

/// Escapes a DOT string literal.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the dependency graph D(Σ) as DOT: predicate nodes (extensional
/// ones boxed) with rule-labelled edges (Fig. 3).
pub fn dependency_graph_dot(graph: &DependencyGraph, program: &Program) -> String {
    let mut out = String::from("digraph dependency_graph {\n  rankdir=LR;\n");
    for &node in graph.nodes() {
        let shape = if graph.is_extensional(node) {
            "box"
        } else {
            "ellipse"
        };
        out.push_str(&format!(
            "  \"{}\" [shape={}];\n",
            esc(node.as_str()),
            shape
        ));
    }
    for e in graph.edges() {
        // Negated dependencies render dashed: the head still depends on
        // the predicate (stratification orders them), but through `not`.
        let style = if e.negated { " style=dashed" } else { "" };
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"{}];\n",
            esc(e.from.as_str()),
            esc(e.to.as_str()),
            esc(&program.rule(e.rule).label),
            style
        ));
    }
    out.push_str("}\n");
    out
}

/// Renders a chase graph as DOT: fact nodes (extensional ones boxed) with
/// rule-labelled derivation edges (Fig. 8). Every premise of a derivation
/// points at its conclusion.
pub fn chase_graph_dot(graph: &ChaseGraph, db: &Database, program: &Program) -> String {
    let mut out = String::from("digraph chase_graph {\n  rankdir=TB;\n");
    let mut mentioned = std::collections::HashSet::new();
    for der in graph.derivations() {
        mentioned.insert(der.conclusion);
        mentioned.extend(der.premises.iter().copied());
    }
    let mut nodes: Vec<_> = mentioned.into_iter().collect();
    nodes.sort();
    for id in &nodes {
        let shape = if graph.is_extensional(*id) {
            "box"
        } else {
            "ellipse"
        };
        out.push_str(&format!(
            "  f{} [label=\"{}\", shape={}];\n",
            id.0,
            esc(&db.fact(*id).to_string()),
            shape
        ));
    }
    for der in graph.derivations() {
        for p in &der.premises {
            out.push_str(&format!(
                "  f{} -> f{} [label=\"{}\"];\n",
                p.0,
                der.conclusion.0,
                esc(&program.rule(der.rule).label)
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ChaseSession;
    use crate::parser::parse_program;

    fn setup() -> (Program, crate::engine::ChaseOutcome) {
        let parsed = parse_program(
            r#"
            o1: own(x, y, s), s > 0.5 -> control(x, y).
            own("A", "B", 0.6).
        "#,
        )
        .unwrap();
        let db: Database = parsed.facts.clone().into_iter().collect();
        let out = ChaseSession::new(&parsed.program).run(db).unwrap();
        (parsed.program, out)
    }

    #[test]
    fn dependency_graph_dot_lists_nodes_and_edges() {
        let (program, _) = setup();
        let g = DependencyGraph::build(&program);
        let dot = dependency_graph_dot(&g, &program);
        assert!(dot.starts_with("digraph dependency_graph {"));
        assert!(dot.contains("\"own\" [shape=box]"));
        assert!(dot.contains("\"control\" [shape=ellipse]"));
        assert!(dot.contains("\"own\" -> \"control\" [label=\"o1\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn chase_graph_dot_shows_derivations() {
        let (program, out) = setup();
        let dot = chase_graph_dot(&out.graph, &out.database, &program);
        assert!(dot.contains("own(\\\"A\\\",\\\"B\\\",0.6)"));
        assert!(dot.contains("control(\\\"A\\\",\\\"B\\\")"));
        assert!(dot.contains("[label=\"o1\"]"));
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(esc("a\"b"), "a\\\"b");
        assert_eq!(esc("a\\b"), "a\\\\b");
    }
}
