//! Integration tests of the `ekg-explain` command-line front end: drives
//! the compiled binary on a temporary program file.

use std::path::PathBuf;
use std::process::Command;

fn write_demo() -> PathBuf {
    let dir = std::env::temp_dir();
    let path = dir.join("ekg_explain_cli_demo.vada");
    std::fs::write(
        &path,
        r#"
        o1: own(x, y, s), s > 0.5 -> control(x, y).
        o2: company(x) -> control(x, x).
        o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).

        company("A"). company("B"). company("C").
        own("A", "B", 0.6).
        own("B", "C", 0.3).
        own("A", "C", 0.4).
    "#,
    )
    .expect("write demo program");
    path
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ekg-explain"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn analyze_prints_reasoning_paths() {
    let path = write_demo();
    let (ok, stdout, _) = run(&["analyze", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("recursive"));
    assert!(stdout.contains("{o1,o2,o3}*"));
    assert!(stdout.contains("critical nodes: control"));
}

#[test]
fn chase_lists_derived_goal_facts() {
    let path = write_demo();
    let (ok, stdout, _) = run(&["chase", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("control(\"A\",\"C\")"), "{stdout}");
    assert!(stdout.contains("derived"));
}

#[test]
fn explain_produces_complete_text() {
    let path = write_demo();
    let (ok, stdout, _) = run(&[
        "explain",
        path.to_str().unwrap(),
        "--fact",
        r#"control("A","C")"#,
    ]);
    assert!(ok);
    for needle in ["60%", "30%", "40%", "70%"] {
        assert!(stdout.contains(needle), "missing {needle}: {stdout}");
    }
    assert!(!stdout.contains('<'), "unsubstituted token: {stdout}");
}

#[test]
fn templates_render_with_tokens() {
    let path = write_demo();
    let (ok, stdout, _) = run(&["templates", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains('<'));
    assert!(stdout.contains("[{o1}]"));
}

#[test]
fn report_explains_every_derived_fact() {
    let path = write_demo();
    let (ok, stdout, _) = run(&["report", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.starts_with("Business report"));
    assert!(stdout.contains("control(\"A\",\"C\")"), "{stdout}");
    assert!(!stdout.contains('<'), "unsubstituted token: {stdout}");
}

#[test]
fn whynot_explains_absences() {
    let path = write_demo();
    let (ok, stdout, _) = run(&[
        "whynot",
        path.to_str().unwrap(),
        "--fact",
        r#"control("B","A")"#,
    ]);
    assert!(ok);
    assert!(stdout.contains("was not derived"), "{stdout}");
    // For a derived fact, it points at `explain` instead.
    let (ok, stdout, _) = run(&[
        "whynot",
        path.to_str().unwrap(),
        "--fact",
        r#"control("A","B")"#,
    ]);
    assert!(ok);
    assert!(stdout.contains("IS derived"), "{stdout}");
}

#[test]
fn dot_outputs_graphviz() {
    let path = write_demo();
    let (ok, stdout, _) = run(&["dot", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.starts_with("digraph dependency_graph {"));
    let (ok, stdout, _) = run(&["dot", path.to_str().unwrap(), "--chase"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph chase_graph {"));
}

#[test]
fn errors_exit_nonzero_with_usage() {
    let (ok, _, stderr) = run(&["explain", "/nonexistent/file.vada", "--fact", "p()"]);
    assert!(!ok);
    assert!(stderr.contains("error:"));
    assert!(stderr.contains("usage:"));
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("missing program file") || stderr.contains("unknown command"));
}

#[test]
fn extensional_fact_query_reports_cleanly() {
    let path = write_demo();
    let (ok, _, stderr) = run(&[
        "explain",
        path.to_str().unwrap(),
        "--fact",
        r#"own("A","B",0.6)"#,
    ]);
    assert!(!ok);
    assert!(stderr.contains("extensional"), "{stderr}");
}
