//! Run telemetry and resource governance: deadlines, cooperative
//! cancellation, budgets, and the machine-readable [`RunReport`].
//!
//! A production deployment of the reasoner must bound runaway recursion
//! and account for every derivation. This module provides the two halves
//! of that contract:
//!
//! * **Governance** — a [`RunGuard`] carries a wall-clock deadline, a
//!   cooperative [`CancelToken`] and round/fact/memory budgets. The engine
//!   polls the guard at *safe points only* (round boundaries, chunk
//!   boundaries of the parallel match phase, and between sequential rule
//!   commits), so an interrupted run is always a prefix of the canonical
//!   deterministic evaluation and can be resumed
//!   (`ChaseSession::resume`) to the exact state an
//!   uninterrupted run would have reached.
//! * **Telemetry** — a [`RunReport`] collected per run: per-rule and
//!   per-round counters, phase timings, and peak sizes, exposed as a typed
//!   struct plus JSON serialization so benches and service layers consume
//!   it without scraping logs.
//!
//! **Determinism contract:** every *count* field of the report (matches
//! enumerated, facts committed, duplicates pre-empted, isomorphism checks,
//! index probes, scans, rounds) is bitwise identical at any thread count.
//! Only wall-clock timings vary. [`RunReport::count_fingerprint`] renders
//! exactly the invariant subset, for tests and regression tracking.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation token, cloneable across threads.
///
/// Cancelling never interrupts work mid-commit: the engine observes the
/// token at chunk boundaries of the (read-only) parallel match phase and
/// between sequential rule commits, so the state left behind is always a
/// deterministic prefix of the run.
///
/// ```
/// use vadalog::telemetry::CancelToken;
/// let token = CancelToken::new();
/// let remote = token.clone();
/// remote.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True iff [`CancelToken::cancel`] was called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// The resource whose budget a run exhausted.
///
/// Carried by `ResourceExhausted` errors together with the observed value
/// at the trip point.
#[non_exhaustive]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Budget {
    /// The evaluation-round budget (the configured maximum).
    Rounds(u64),
    /// The fact budget (maximum facts in the store, EDB + derived).
    Facts(u64),
    /// The approximate fact-store memory budget, in bytes.
    MemoryBytes(u64),
    /// The wall-clock deadline (the configured timeout).
    Deadline(Duration),
    /// Cooperative cancellation via a [`CancelToken`].
    Cancelled,
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Budget::Rounds(n) => write!(f, "round budget of {}", n),
            Budget::Facts(n) => write!(f, "fact budget of {}", n),
            Budget::MemoryBytes(n) => write!(f, "memory budget of {} bytes", n),
            Budget::Deadline(d) => write!(f, "deadline of {:?}", d),
            Budget::Cancelled => write!(f, "cancellation request"),
        }
    }
}

impl Budget {
    /// A short machine-readable tag (`"rounds"`, `"facts"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            Budget::Rounds(_) => "rounds",
            Budget::Facts(_) => "facts",
            Budget::MemoryBytes(_) => "memory_bytes",
            Budget::Deadline(_) => "deadline",
            Budget::Cancelled => "cancelled",
        }
    }

    /// The configured limit, normalized to a number (milliseconds for
    /// deadlines, 0 for cancellation).
    pub fn limit(&self) -> u64 {
        match self {
            Budget::Rounds(n) | Budget::Facts(n) | Budget::MemoryBytes(n) => *n,
            Budget::Deadline(d) => d.as_millis() as u64,
            Budget::Cancelled => 0,
        }
    }
}

/// Resource governance for one run: deadline, cancellation and budgets.
///
/// The default guard is unlimited. Budgets set on the guard compose with
/// the legacy [`ChaseConfig`](crate::engine::ChaseConfig) `max_rounds` /
/// `max_facts` knobs: the tighter bound wins.
///
/// ```
/// use std::time::Duration;
/// use vadalog::telemetry::{CancelToken, RunGuard};
///
/// let token = CancelToken::new();
/// let guard = RunGuard::new()
///     .with_timeout(Duration::from_millis(50))
///     .with_cancel_token(token.clone())
///     .with_max_facts(100_000);
/// ```
#[non_exhaustive]
#[derive(Clone, Debug, Default)]
pub struct RunGuard {
    /// Relative wall-clock budget, armed when the run starts.
    pub timeout: Option<Duration>,
    /// Cooperative cancellation token observed at safe points.
    pub cancel: Option<CancelToken>,
    /// Maximum number of evaluation rounds.
    pub max_rounds: Option<u64>,
    /// Maximum number of facts (EDB + derived) in the store.
    pub max_facts: Option<u64>,
    /// Maximum approximate fact-store size in bytes.
    pub max_bytes: Option<u64>,
}

impl RunGuard {
    /// An unlimited guard.
    pub fn new() -> RunGuard {
        RunGuard::default()
    }

    /// Sets a relative wall-clock budget, armed when the run starts.
    pub fn with_timeout(mut self, timeout: Duration) -> RunGuard {
        self.timeout = Some(timeout);
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> RunGuard {
        self.cancel = Some(token);
        self
    }

    /// Sets the evaluation-round budget.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> RunGuard {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Sets the fact budget.
    pub fn with_max_facts(mut self, max_facts: u64) -> RunGuard {
        self.max_facts = Some(max_facts);
        self
    }

    /// Sets the approximate fact-store memory budget, in bytes.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> RunGuard {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// True iff no deadline, token or budget is set.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.cancel.is_none()
            && self.max_rounds.is_none()
            && self.max_facts.is_none()
            && self.max_bytes.is_none()
    }
}

/// A [`RunGuard`] armed at a concrete start instant, with the legacy
/// config limits folded in. Engine-internal; polled at safe points.
#[derive(Clone, Debug)]
pub(crate) struct ArmedGuard {
    deadline: Option<(Instant, Duration)>,
    cancel: Option<CancelToken>,
    max_rounds: u64,
    max_facts: u64,
    max_bytes: Option<u64>,
}

impl ArmedGuard {
    /// Arms `guard` at `start`, folding in the legacy limits (the tighter
    /// bound wins).
    pub(crate) fn arm(
        guard: &RunGuard,
        start: Instant,
        legacy_max_rounds: usize,
        legacy_max_facts: usize,
    ) -> ArmedGuard {
        ArmedGuard {
            deadline: guard.timeout.map(|t| (start + t, t)),
            cancel: guard.cancel.clone(),
            max_rounds: guard
                .max_rounds
                .unwrap_or(u64::MAX)
                .min(legacy_max_rounds as u64),
            max_facts: guard
                .max_facts
                .unwrap_or(u64::MAX)
                .min(legacy_max_facts as u64),
            max_bytes: guard.max_bytes,
        }
    }

    /// True iff a trip can fire *between* safe points (cancellation or
    /// deadline): when false, the match phase skips its per-chunk checks
    /// entirely, so governance-free runs pay nothing there.
    pub(crate) fn has_async_trips(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some()
    }

    /// Cheap check of the asynchronous trips (cancellation, deadline);
    /// suitable for chunk boundaries of the parallel match phase.
    pub(crate) fn interrupted(&self) -> Option<(Budget, u64)> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some((Budget::Cancelled, 0));
            }
        }
        if let Some((deadline, timeout)) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                let start = deadline - timeout;
                return Some((
                    Budget::Deadline(timeout),
                    now.duration_since(start).as_millis() as u64,
                ));
            }
        }
        None
    }

    /// Full check of every budget; used at round boundaries and between
    /// rule commits. `rounds` is the number of rounds *about to have been
    /// started* (the check trips when it exceeds the budget).
    pub(crate) fn trip(&self, rounds: u64, facts: u64, bytes: u64) -> Option<(Budget, u64)> {
        if rounds > self.max_rounds {
            return Some((Budget::Rounds(self.max_rounds), rounds));
        }
        if facts > self.max_facts {
            return Some((Budget::Facts(self.max_facts), facts));
        }
        if let Some(max_bytes) = self.max_bytes {
            if bytes > max_bytes {
                return Some((Budget::MemoryBytes(max_bytes), bytes));
            }
        }
        self.interrupted()
    }
}

/// How a run ended.
#[non_exhaustive]
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Termination {
    /// The chase reached fixpoint (or the pipeline finished).
    #[default]
    Completed,
    /// A budget tripped; the run holds a deterministic partial state.
    Exhausted {
        /// The budget that tripped.
        budget: Budget,
        /// The observed value at the trip point (rounds, facts, bytes or
        /// elapsed milliseconds, depending on the budget).
        observed: u64,
    },
    /// The run was checkpointed mid-flight (an autosave snapshot of a run
    /// still in progress, or the partial sealed when a checkpoint write
    /// failed): no budget tripped, the state is a deterministic prefix.
    Suspended,
    /// A worker panicked while evaluating a rule in the parallel match
    /// phase; the run holds the deterministic state of the last completed
    /// round (see
    /// [`ChaseError::WorkerPanic`](crate::error::ChaseError)).
    Panicked {
        /// Label of the rule whose evaluation panicked.
        rule: String,
    },
}

/// Per-rule execution counters of one run.
///
/// All fields are deterministic across thread counts.
#[non_exhaustive]
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RuleStats {
    /// The rule's label.
    pub label: String,
    /// Body matches enumerated for the rule (snapshot phase, top-up and
    /// ablation re-matches), before canonicalization.
    pub matches_enumerated: u64,
    /// Chase steps fired (head instantiations attempted after grouping
    /// and the restricted-chase check).
    pub firings: u64,
    /// Fresh facts committed by the rule.
    pub facts_committed: u64,
    /// Firings that re-derived an existing fact (duplicate pre-empted by
    /// the store's dedup) or re-recorded a known derivation.
    pub duplicates_preempted: u64,
    /// Restricted-chase satisfaction checks performed for existential
    /// heads (pattern-isomorphism probes against the store).
    pub isomorphism_checks: u64,
    /// Isomorphism checks that found a satisfying fact, pre-empting a
    /// labelled-null invention.
    pub satisfaction_preempted: u64,
    /// Candidate lookups served by a positional index.
    pub index_probes: u64,
    /// Candidate lookups served by a predicate scan.
    pub scans: u64,
    /// Index probes that bound two or more positions at once (a subset
    /// of `index_probes`).
    pub composite_probes: u64,
    /// Negated-atom checks answered by an index probe.
    pub negation_probes: u64,
    /// Negated-atom checks answered by a full-predicate scan.
    pub negation_scans: u64,
    /// Head-satisfaction checks answered by an index probe (a subset of
    /// `isomorphism_checks`).
    pub satisfaction_probes: u64,
    /// Head-satisfaction checks answered by a full-predicate scan (the
    /// complement of `satisfaction_probes`).
    pub satisfaction_scans: u64,
}

/// Per-round counters of one run.
#[non_exhaustive]
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RoundStats {
    /// 1-based round number (global across strata).
    pub round: u32,
    /// The stratum evaluated in this round.
    pub stratum: u32,
    /// Matches enumerated across all rules of the round.
    pub matches: u64,
    /// Fresh facts committed in the round.
    pub facts_committed: u64,
    /// Store size at the end of the round.
    pub facts_end: u64,
    /// Wall-clock duration of the round, in nanoseconds (not thread
    /// invariant).
    pub duration_ns: u64,
}

/// Wall-clock phase timings of one run, in nanoseconds.
///
/// Not deterministic across runs or thread counts; excluded from
/// [`RunReport::count_fingerprint`].
#[non_exhaustive]
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PhaseTimings {
    /// Eager construction of the statically-probed positional indexes.
    pub index_build_ns: u64,
    /// The parallel match phase (work-item execution).
    pub match_ns: u64,
    /// Merging per-chunk results into per-rule match lists.
    pub merge_ns: u64,
    /// The sequential commit phase (top-up, canonicalization, firing).
    pub commit_ns: u64,
    /// Aggregate grouping and folding (a sub-span of the commit phase).
    pub aggregate_ns: u64,
    /// Writing checkpoint snapshots (autosaves and trip saves) to disk.
    pub checkpoint_save_ns: u64,
    /// Loading and rebuilding a snapshot in
    /// [`ChaseSession::resume_from_path`](crate::engine::ChaseSession::resume_from_path).
    pub checkpoint_restore_ns: u64,
    /// Whole-run wall clock.
    pub total_ns: u64,
}

/// Peak sizes observed during one run.
#[non_exhaustive]
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PeakStats {
    /// Facts in the store at the end of the run (the store is
    /// append-only, so the end is the peak).
    pub facts: u64,
    /// Derivations recorded in the chase graph.
    pub derivations: u64,
    /// Largest per-round match buffer (matches held after the merge).
    pub match_buffer: u64,
    /// Approximate fact-store size in bytes at the end of the run.
    pub approx_bytes: u64,
}

/// The machine-readable report of one chase run.
///
/// Carried by [`ChaseOutcome::report`](crate::engine::ChaseOutcome) for
/// completed *and* interrupted runs (an interrupted run's report covers
/// the completed prefix). Serialize with [`RunReport::to_json`].
#[non_exhaustive]
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RunReport {
    /// How the run ended.
    pub termination: Termination,
    /// Worker threads of the parallel match phase (resolved count).
    pub threads: usize,
    /// Evaluation rounds executed (including the final fixpoint check).
    pub rounds: u32,
    /// Strata of the evaluated program.
    pub strata: u32,
    /// Per-rule counters, indexed by rule id.
    pub rules: Vec<RuleStats>,
    /// Per-round counters, in execution order. Empty when the run was
    /// configured with `ChaseConfig::full_telemetry` disabled.
    pub rounds_log: Vec<RoundStats>,
    /// Wall-clock phase timings (zeroed when `full_telemetry` is off).
    pub timings: PhaseTimings,
    /// Peak sizes.
    pub peak: PeakStats,
    /// Checkpoint snapshots written by the autosave policy during this
    /// run (see [`AutosavePolicy`](crate::checkpoint::AutosavePolicy)).
    pub autosaves: u64,
}

impl RunReport {
    /// Sum of `matches_enumerated` over all rules.
    pub fn total_matches(&self) -> u64 {
        self.rules.iter().map(|r| r.matches_enumerated).sum()
    }

    /// Sum of `facts_committed` over all rules.
    pub fn total_commits(&self) -> u64 {
        self.rules.iter().map(|r| r.facts_committed).sum()
    }

    /// Sum of `index_probes` over all rules.
    pub fn total_index_probes(&self) -> u64 {
        self.rules.iter().map(|r| r.index_probes).sum()
    }

    /// Sum of `scans` over all rules.
    pub fn total_scans(&self) -> u64 {
        self.rules.iter().map(|r| r.scans).sum()
    }

    /// True iff the run ended by exhausting a budget.
    pub fn is_partial(&self) -> bool {
        !matches!(self.termination, Termination::Completed)
    }

    /// Renders exactly the thread-invariant subset of the report: every
    /// count field, no timings, no thread count. Two runs of the same
    /// program over the same database must produce equal fingerprints at
    /// any thread count — the telemetry half of the determinism contract.
    pub fn count_fingerprint(&self) -> String {
        use fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "rounds={} strata={}", self.rounds, self.strata);
        for (i, r) in self.rules.iter().enumerate() {
            let _ = writeln!(
                s,
                "rule[{i}]={} matches={} firings={} commits={} dups={} iso={} sat={} probes={} scans={} composite={} negp={} negs={} satp={} sats={}",
                r.label,
                r.matches_enumerated,
                r.firings,
                r.facts_committed,
                r.duplicates_preempted,
                r.isomorphism_checks,
                r.satisfaction_preempted,
                r.index_probes,
                r.scans,
                r.composite_probes,
                r.negation_probes,
                r.negation_scans,
                r.satisfaction_probes,
                r.satisfaction_scans,
            );
        }
        for r in &self.rounds_log {
            let _ = writeln!(
                s,
                "round={} stratum={} matches={} commits={} facts={}",
                r.round, r.stratum, r.matches, r.facts_committed, r.facts_end
            );
        }
        let _ = write!(
            s,
            "peak facts={} derivations={} match_buffer={}",
            self.peak.facts, self.peak.derivations, self.peak.match_buffer
        );
        s
    }

    /// Serializes the full report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        match &self.termination {
            Termination::Completed => {
                w.field_str("termination", "completed");
            }
            Termination::Exhausted { budget, observed } => {
                w.key("termination");
                w.open_object();
                w.field_str("exhausted", budget.kind());
                w.field_u64("limit", budget.limit());
                w.field_u64("observed", *observed);
                w.close_object();
            }
            Termination::Suspended => {
                w.field_str("termination", "suspended");
            }
            Termination::Panicked { rule } => {
                w.key("termination");
                w.open_object();
                w.field_str("panicked", rule);
                w.close_object();
            }
        }
        w.field_u64("threads", self.threads as u64);
        w.field_u64("rounds", u64::from(self.rounds));
        w.field_u64("strata", u64::from(self.strata));
        w.key("rules");
        w.open_array();
        for r in &self.rules {
            w.open_object();
            w.field_str("label", &r.label);
            w.field_u64("matches_enumerated", r.matches_enumerated);
            w.field_u64("firings", r.firings);
            w.field_u64("facts_committed", r.facts_committed);
            w.field_u64("duplicates_preempted", r.duplicates_preempted);
            w.field_u64("isomorphism_checks", r.isomorphism_checks);
            w.field_u64("satisfaction_preempted", r.satisfaction_preempted);
            w.field_u64("index_probes", r.index_probes);
            w.field_u64("scans", r.scans);
            w.field_u64("composite_probes", r.composite_probes);
            w.field_u64("negation_probes", r.negation_probes);
            w.field_u64("negation_scans", r.negation_scans);
            w.field_u64("satisfaction_probes", r.satisfaction_probes);
            w.field_u64("satisfaction_scans", r.satisfaction_scans);
            w.close_object();
        }
        w.close_array();
        w.key("rounds_log");
        w.open_array();
        for r in &self.rounds_log {
            w.open_object();
            w.field_u64("round", u64::from(r.round));
            w.field_u64("stratum", u64::from(r.stratum));
            w.field_u64("matches", r.matches);
            w.field_u64("facts_committed", r.facts_committed);
            w.field_u64("facts_end", r.facts_end);
            w.field_u64("duration_ns", r.duration_ns);
            w.close_object();
        }
        w.close_array();
        w.key("timings_ns");
        w.open_object();
        w.field_u64("index_build", self.timings.index_build_ns);
        w.field_u64("match", self.timings.match_ns);
        w.field_u64("merge", self.timings.merge_ns);
        w.field_u64("commit", self.timings.commit_ns);
        w.field_u64("aggregate", self.timings.aggregate_ns);
        w.field_u64("checkpoint_save", self.timings.checkpoint_save_ns);
        w.field_u64("checkpoint_restore", self.timings.checkpoint_restore_ns);
        w.field_u64("total", self.timings.total_ns);
        w.close_object();
        w.field_u64("autosaves", self.autosaves);
        w.key("peak");
        w.open_object();
        w.field_u64("facts", self.peak.facts);
        w.field_u64("derivations", self.peak.derivations);
        w.field_u64("match_buffer", self.peak.match_buffer);
        w.field_u64("approx_bytes", self.peak.approx_bytes);
        w.close_object();
        w.close_object();
        w.finish()
    }
}

/// The dependency-free JSON writer, re-exported from its home in
/// [`crate::obs::json`] for existing callers of
/// `vadalog::telemetry::JsonWriter`.
pub use crate::obs::json::JsonWriter;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn armed_guard_trips_tightest_bound() {
        let guard = RunGuard::new().with_max_rounds(100);
        let armed = ArmedGuard::arm(&guard, Instant::now(), 10, usize::MAX);
        // Legacy max_rounds (10) is tighter than the guard's (100).
        assert_eq!(armed.trip(11, 0, 0), Some((Budget::Rounds(10), 11)));
        assert_eq!(armed.trip(10, 0, 0), None);
    }

    #[test]
    fn armed_guard_reports_fact_and_memory_budgets() {
        let guard = RunGuard::new().with_max_facts(5).with_max_bytes(100);
        let armed = ArmedGuard::arm(&guard, Instant::now(), usize::MAX, usize::MAX);
        assert_eq!(armed.trip(1, 6, 0), Some((Budget::Facts(5), 6)));
        assert_eq!(armed.trip(1, 5, 101), Some((Budget::MemoryBytes(100), 101)));
        assert_eq!(armed.trip(1, 5, 100), None);
    }

    #[test]
    fn expired_deadline_trips() {
        let guard = RunGuard::new().with_timeout(Duration::from_millis(1));
        let armed = ArmedGuard::arm(
            &guard,
            Instant::now() - Duration::from_millis(10),
            usize::MAX,
            usize::MAX,
        );
        match armed.interrupted() {
            Some((Budget::Deadline(t), observed)) => {
                assert_eq!(t, Duration::from_millis(1));
                assert!(observed >= 1, "observed {observed}ms");
            }
            other => panic!("expected deadline trip, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_trips_immediately() {
        let token = CancelToken::new();
        token.cancel();
        let guard = RunGuard::new().with_cancel_token(token);
        let armed = ArmedGuard::arm(&guard, Instant::now(), usize::MAX, usize::MAX);
        assert_eq!(armed.interrupted(), Some((Budget::Cancelled, 0)));
    }

    #[test]
    fn json_report_round_trips_structure() {
        let report = RunReport {
            termination: Termination::Exhausted {
                budget: Budget::Deadline(Duration::from_millis(50)),
                observed: 61,
            },
            threads: 2,
            rounds: 3,
            strata: 1,
            rules: vec![RuleStats {
                label: "o\"1".into(),
                matches_enumerated: 10,
                ..RuleStats::default()
            }],
            rounds_log: vec![RoundStats {
                round: 1,
                facts_end: 7,
                ..RoundStats::default()
            }],
            ..RunReport::default()
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"exhausted\":\"deadline\""));
        assert!(json.contains("\"observed\":61"));
        assert!(json.contains("\"label\":\"o\\\"1\""));
        assert!(json.contains("\"matches_enumerated\":10"));
        assert!(json.contains("\"facts_end\":7"));
        // Balanced braces/brackets.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn count_fingerprint_excludes_timings_and_threads() {
        let mut a = RunReport {
            threads: 1,
            rounds: 2,
            ..RunReport::default()
        };
        let mut b = a.clone();
        b.threads = 8;
        b.timings.match_ns = 12345;
        a.timings.match_ns = 999;
        assert_eq!(a.count_fingerprint(), b.count_fingerprint());
    }
}
