//! The structured span collector: always-compiled, pluggable tracing.
//!
//! Every instrumented scope of the engine, the checkpoint layer and the
//! explanation pipeline opens a [`Span`] via the [`span!`](crate::span!)
//! macro. Spans carry a process-unique id, a parent link (the innermost
//! open span of the same thread), typed key=value [fields](FieldValue)
//! and wall-clock extent. On close, the finished [`SpanRecord`] is handed
//! to the installed [`SpanSink`] — by default the bounded, lock-light
//! [`RingCollector`], whose contents export to Chrome `trace_event` JSON
//! ([`crate::obs::chrome`]) for Perfetto / `chrome://tracing`.
//!
//! # Cost model
//!
//! Span *compilation* is unconditional — there is no feature gate on the
//! instrumentation itself. With no collector installed, entering a span
//! costs one relaxed atomic load and constructs nothing (the field
//! closure is never called). The `tracing` cargo feature only arms a
//! *default stderr sink* (active when the `VADALOG_TRACE` environment
//! variable is set and no collector is installed); with a collector
//! installed, feature-gated and default builds produce identical trace
//! output.
//!
//! ```
//! use vadalog::obs::span::{install, uninstall, RingCollector};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingCollector::new(4096));
//! install(ring.clone());
//! {
//!     let _outer = vadalog::span!("doc.outer", answer = 42u64);
//!     let _inner = vadalog::span!("doc.inner");
//! }
//! uninstall();
//! let spans = ring.drain();
//! assert_eq!(spans.len(), 2); // inner closes (and records) first
//! assert_eq!(spans[0].name, "doc.inner");
//! assert_eq!(spans[0].parent, Some(spans[1].id));
//! ```

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use super::context;

/// A typed span field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! field_from {
    ($($ty:ty => $variant:ident as $conv:ty),+ $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue {
                FieldValue::$variant(v as $conv)
            }
        })+
    };
}

field_from! {
    u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, u8 => U64 as u64,
    usize => U64 as u64, i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}

impl From<&String> for FieldValue {
    fn from(v: &String) -> FieldValue {
        FieldValue::Str(v.clone())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// A finished span, as handed to the [`SpanSink`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique span id (monotonic, starts at 1).
    pub id: u64,
    /// Id of the innermost span open on the same thread at entry.
    pub parent: Option<u64>,
    /// The span's static name (e.g. `"chase.round"`).
    pub name: &'static str,
    /// Typed key=value fields captured at entry.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Dense id of the recording thread (process-local, starts at 1).
    pub thread: u64,
    /// Entry time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall-clock extent in nanoseconds.
    pub duration_ns: u64,
    /// The trace id of the request this span served, if a
    /// [`TraceContext`](super::context::TraceContext) was current on the
    /// recording thread at entry. Links spans across threads (HTTP
    /// handler → serving worker → pipeline) into one request tree.
    pub trace_id: Option<Arc<str>>,
    /// The process-local request id paired with `trace_id`.
    pub request_id: Option<u64>,
}

/// A span consumer. Implementations must be cheap and non-blocking: the
/// `record` call sits on the instrumented hot path.
pub trait SpanSink: Send + Sync {
    /// Consumes one finished span.
    fn record(&self, span: SpanRecord);
}

/// The default collector: a bounded ring buffer of the most recent
/// spans, behind a single uncontended mutex (spans close on the
/// recording thread; the engine's instrumented scopes are sequential).
///
/// When full, the oldest span is evicted and counted in
/// [`dropped`](RingCollector::dropped) — the collector never grows
/// without bound and never blocks the engine on a slow consumer.
#[derive(Debug)]
pub struct RingCollector {
    buf: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl RingCollector {
    /// A collector keeping at most `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> RingCollector {
        RingCollector {
            buf: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Removes and returns every collected span, oldest first.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect()
    }

    /// Copies every collected span without clearing, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Number of spans evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True iff no span is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SpanSink for RingCollector {
    fn record(&self, span: SpanRecord) {
        let mut buf = self
            .buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if buf.len() >= self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            dropped_total().inc();
        }
        buf.push_back(span);
    }
}

/// The global eviction counter every [`RingCollector`] reports into, so
/// silent span loss is visible on `/metrics`
/// (`vadalog_obs_spans_dropped_total`). Resolved once.
fn dropped_total() -> &'static Arc<super::metrics::Counter> {
    static DROPPED: OnceLock<Arc<super::metrics::Counter>> = OnceLock::new();
    DROPPED.get_or_init(|| {
        super::metrics::global().counter(
            "vadalog_obs_spans_dropped_total",
            "Span records evicted from bounded ring collectors before export.",
        )
    })
}

/// A sink that prints one line per span to stderr (the `tracing`
/// feature's default sink; also installable explicitly).
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrSink;

impl SpanSink for StderrSink {
    fn record(&self, span: SpanRecord) {
        let mut line = format!(
            "[span] {} id={} parent={} thread={} start={}ns dur={}ns",
            span.name,
            span.id,
            span.parent.unwrap_or(0),
            span.thread,
            span.start_ns,
            span.duration_ns
        );
        for (key, value) in &span.fields {
            line.push_str(&format!(" {key}={value}"));
        }
        eprintln!("{line}");
    }
}

/// Fast "is any sink listening" flag: the whole cost of a disabled span.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed collector. Read-locked per span close — uncontended in
/// practice (installation is a test/startup-time event).
static COLLECTOR: RwLock<Option<Arc<dyn SpanSink>>> = RwLock::new(None);
/// Whether the feature-gated stderr fallback is armed (resolved once).
static STDERR_ARMED: OnceLock<bool> = OnceLock::new();
/// Monotonic span-id source.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Monotonic thread-id source (0 = unassigned sentinel in the TLS cell).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
/// The process trace epoch: all `start_ns` values are relative to this.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Ids of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's dense trace id (0 until first assigned).
    static THREAD_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// Fast flag mirroring `CAPTURE.is_some()` (checked per span entry).
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    /// Spans closed on this thread while a [`Capture`] is active.
    static CAPTURE: RefCell<Option<Vec<SpanRecord>>> = const { RefCell::new(None) };
}

/// Starts capturing every span that closes on *this thread* until
/// [`Capture::finish`] (or drop). Capturing forces spans on for the
/// thread even when no global collector is installed — this is how the
/// serving layer's slow-query log records a full span tree per goal
/// without requiring process-wide tracing. Records still flow to the
/// installed sink as usual; the capture sees a copy.
///
/// Captures do not nest: beginning a new one discards any spans the
/// previous capture had accumulated on this thread.
#[must_use = "spans are captured until the guard is finished or dropped"]
pub fn capture_begin() -> Capture {
    CAPTURE.with(|cell| *cell.borrow_mut() = Some(Vec::new()));
    CAPTURING.with(|cell| cell.set(true));
    Capture {
        _not_send: std::marker::PhantomData,
    }
}

/// An active per-thread span capture (see [`capture_begin`]).
#[derive(Debug)]
pub struct Capture {
    /// Captures are thread-local; keep the guard on the capturing thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Capture {
    /// Ends the capture and returns the spans it collected, in close
    /// order (innermost first, like any sink sees them).
    pub fn finish(self) -> Vec<SpanRecord> {
        CAPTURING.with(|cell| cell.set(false));
        let spans = CAPTURE.with(|cell| cell.borrow_mut().take());
        std::mem::forget(self);
        spans.unwrap_or_default()
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        CAPTURING.with(|cell| cell.set(false));
        CAPTURE.with(|cell| cell.borrow_mut().take());
    }
}

/// True iff the feature-gated stderr fallback should report spans.
fn stderr_armed() -> bool {
    *STDERR_ARMED
        .get_or_init(|| cfg!(feature = "tracing") && std::env::var_os("VADALOG_TRACE").is_some())
}

/// Installs `sink` as the process-wide span collector, replacing any
/// previous one. Spans already open keep reporting — to the new sink.
pub fn install(sink: Arc<dyn SpanSink>) {
    *COLLECTOR
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the installed collector. Span observation stays on only if
/// the `tracing` feature's stderr fallback is armed.
pub fn uninstall() {
    *COLLECTOR
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    ENABLED.store(stderr_armed(), Ordering::Release);
}

/// True iff spans are being observed (a collector is installed, a
/// thread-local [`capture_begin`] is active, or the stderr fallback is
/// armed). One relaxed atomic load plus one thread-local flag read; the
/// `span!` macro checks this before constructing anything.
#[inline]
pub fn span_enabled() -> bool {
    if ENABLED.load(Ordering::Relaxed) {
        return true;
    }
    if CAPTURING.with(std::cell::Cell::get) {
        return true;
    }
    // The stderr fallback arms lazily on the first probe (it consults
    // the environment exactly once).
    if stderr_armed() {
        ENABLED.store(true, Ordering::Release);
        return true;
    }
    false
}

/// Nanoseconds since the process trace epoch — the timebase every span
/// (and the flight recorder's events) timestamps against, so exported
/// spans and structured events correlate on one axis.
pub(crate) fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// This thread's dense trace id, assigned on first use.
fn thread_id() -> u64 {
    THREAD_ID.with(|cell| {
        let id = cell.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        cell.set(id);
        id
    })
}

/// An RAII span guard: records entry on construction, reports the
/// finished [`SpanRecord`] to the installed sink when dropped.
///
/// Construct via the [`span!`](crate::span!) macro, which skips all of
/// this (including field evaluation) when no sink is listening.
#[derive(Debug)]
#[must_use = "a span measures the enclosing scope; bind it with `let _span = ...`"]
pub struct Span(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    start_ns: u64,
    start: Instant,
    trace: Option<context::TraceContext>,
}

impl Span {
    /// Opens a span, evaluating `fields` only if a sink is listening.
    pub fn enter(
        name: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, FieldValue)>,
    ) -> Span {
        if !span_enabled() {
            return Span(None);
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        Span(Some(ActiveSpan {
            id,
            parent,
            name,
            fields: fields(),
            start_ns: now_ns(),
            start: Instant::now(),
            trace: context::current(),
        }))
    }

    /// An inert span (no sink was listening at entry).
    pub fn disabled() -> Span {
        Span(None)
    }

    /// The span's id, if it is live.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let duration_ns = active.start.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Scoped drops close in LIFO order; a non-lexical drop order
            // still removes the right entry.
            if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            fields: active.fields,
            thread: thread_id(),
            start_ns: active.start_ns,
            duration_ns,
            trace_id: active.trace.as_ref().map(|t| Arc::clone(&t.trace_id)),
            request_id: active.trace.as_ref().map(|t| t.request_id),
        };
        let captured = CAPTURING.with(std::cell::Cell::get)
            && CAPTURE.with(|cell| {
                if let Some(spans) = cell.borrow_mut().as_mut() {
                    spans.push(record.clone());
                    true
                } else {
                    false
                }
            });
        let sink = COLLECTOR
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        match sink {
            Some(sink) => sink.record(record),
            None => {
                if !captured && stderr_armed() {
                    StderrSink.record(record);
                }
            }
        }
    }
}

/// Opens a structured telemetry span around the enclosing scope.
///
/// Always compiled; when no collector is installed the expansion costs
/// one atomic load and evaluates none of the field expressions. Bind the
/// result (`let _span = vadalog::span!(...)`) so the span covers the
/// scope:
///
/// ```
/// let _span = vadalog::span!("example.work", items = 3u64, kind = "doc");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::obs::span::Span::enter($name, ::std::vec::Vec::new)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::obs::span::Span::enter($name, || {
            ::std::vec![$((
                stringify!($key),
                $crate::obs::span::FieldValue::from($value),
            )),+]
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collector installation is process-global; every test that installs
    /// one serializes on this lock so parallel test threads don't steal
    /// each other's sink.
    pub(crate) static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_cost_nothing_and_collect_nothing() {
        let _guard = INSTALL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        uninstall();
        let ring = RingCollector::new(8);
        {
            let span = crate::span!("test.disabled", expensive = "ignored");
            assert_eq!(span.id(), None);
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_collector_records_nesting_and_fields() {
        let _guard = INSTALL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ring = Arc::new(RingCollector::new(64));
        install(ring.clone());
        {
            let outer = crate::span!("test.outer", label = "o", n = 7u64);
            let outer_id = outer.id().expect("enabled");
            {
                let inner = crate::span!("test.inner", flag = true);
                assert_ne!(inner.id(), Some(outer_id));
            }
        }
        uninstall();
        // Other unit tests in this binary may run chases concurrently;
        // keep only this test's spans.
        let spans: Vec<SpanRecord> = ring
            .drain()
            .into_iter()
            .filter(|s| s.name.starts_with("test."))
            .collect();
        assert_eq!(spans.len(), 2);
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "test.inner");
        assert_eq!(outer.name, "test.outer");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(inner.start_ns >= outer.start_ns);
        assert_eq!(
            outer.fields,
            vec![
                ("label", FieldValue::Str("o".into())),
                ("n", FieldValue::U64(7)),
            ]
        );
        assert_eq!(inner.fields, vec![("flag", FieldValue::Bool(true))]);
        assert_eq!(inner.thread, outer.thread);
    }

    #[test]
    fn ring_collector_bounds_memory_and_counts_drops() {
        let ring = RingCollector::new(2);
        for i in 0..5u64 {
            ring.record(SpanRecord {
                id: i + 1,
                parent: None,
                name: "test.evict",
                fields: Vec::new(),
                thread: 1,
                start_ns: i,
                duration_ns: 1,
                trace_id: None,
                request_id: None,
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let kept: Vec<u64> = ring.drain().iter().map(|s| s.id).collect();
        assert_eq!(kept, vec![4, 5]);
    }

    #[test]
    fn spans_carry_the_current_trace_context() {
        let _guard = INSTALL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ring = Arc::new(RingCollector::new(16));
        install(ring.clone());
        let ctx = context::TraceContext::with_trace_id("trace-span-test");
        {
            let _outside = crate::span!("test.ctx_outside");
            let _ctx = context::set(ctx.clone());
            let _inside = crate::span!("test.ctx_inside");
        }
        uninstall();
        let spans = ring.drain();
        let inside = spans.iter().find(|s| s.name == "test.ctx_inside").unwrap();
        let outside = spans.iter().find(|s| s.name == "test.ctx_outside").unwrap();
        assert_eq!(inside.trace_id.as_deref(), Some("trace-span-test"));
        assert_eq!(inside.request_id, Some(ctx.request_id));
        assert_eq!(outside.trace_id, None);
        assert_eq!(outside.request_id, None);
    }

    #[test]
    fn capture_collects_spans_without_a_global_collector() {
        let _guard = INSTALL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        uninstall();
        // No collector installed: spans are normally inert...
        {
            let span = crate::span!("test.capture_off");
            assert_eq!(span.id(), None);
        }
        // ...but a thread-local capture forces them on for this thread.
        let capture = capture_begin();
        {
            let _outer = crate::span!("test.capture_outer");
            let _inner = crate::span!("test.capture_inner");
        }
        let spans = capture.finish();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["test.capture_inner", "test.capture_outer"]);
        assert_eq!(spans[0].parent, Some(spans[1].id));
        // After finish, spans are inert again.
        {
            let span = crate::span!("test.capture_done");
            assert_eq!(span.id(), None);
        }
    }

    #[test]
    fn capture_is_thread_local() {
        let _guard = INSTALL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        uninstall();
        let capture = capture_begin();
        std::thread::scope(|s| {
            s.spawn(|| {
                // The sibling thread is not capturing: its span is inert.
                let span = crate::span!("test.capture_other_thread");
                assert_eq!(span.id(), None);
            });
        });
        {
            let _mine = crate::span!("test.capture_mine");
        }
        let spans = capture.finish();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "test.capture_mine");
    }

    #[test]
    fn worker_thread_spans_have_own_stack() {
        let _guard = INSTALL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ring = Arc::new(RingCollector::new(64));
        install(ring.clone());
        {
            let _outer = crate::span!("test.main");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = crate::span!("test.worker");
                });
            });
        }
        uninstall();
        let spans = ring.drain();
        let worker = spans.iter().find(|s| s.name == "test.worker").unwrap();
        let main = spans.iter().find(|s| s.name == "test.main").unwrap();
        // Parent links are per-thread: the worker span is a root on its
        // own thread, not a child of the main thread's open span.
        assert_eq!(worker.parent, None);
        assert_ne!(worker.thread, main.thread);
    }
}
