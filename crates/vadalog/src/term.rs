//! Terms: the building blocks of atoms.

use crate::symbol::Symbol;
use crate::value::Value;
use std::fmt;

/// A term occurring in a rule atom: either a constant or a variable.
///
/// Labelled nulls never appear in rules, only in facts (see
/// [`Value::Null`]); hence `Term` has no null variant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A constant value.
    Const(Value),
    /// A named variable.
    Var(Symbol),
}

impl Term {
    /// Builds a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::new(name))
    }

    /// Builds a constant term from anything convertible to [`Value`].
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant value, if this term is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }

    /// True iff this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(Value::Str(s)) => write!(f, "{:?}", s.as_str()),
            Term::Const(v) => write!(f, "{}", v),
            Term::Var(v) => write!(f, "{}", v),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Term {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_accessors() {
        let t = Term::var("x");
        assert!(t.is_var());
        assert_eq!(t.as_var(), Some(Symbol::new("x")));
        assert_eq!(t.as_const(), None);
    }

    #[test]
    fn const_accessors() {
        let t = Term::constant(42i64);
        assert!(!t.is_var());
        assert_eq!(t.as_const(), Some(&Value::Int(42)));
        assert_eq!(t.as_var(), None);
    }

    #[test]
    fn display_quotes_string_constants() {
        assert_eq!(Term::constant("B").to_string(), "\"B\"");
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::constant(0.5f64).to_string(), "0.5");
    }
}
