//! Error types for the engine, the parser and program validation.
//!
//! The engine's run-time error surface is *governed*: resource trips
//! (deadline, cancellation, round/fact/memory budgets) all surface as
//! [`ChaseError::ResourceExhausted`], carrying the tripped
//! [`Budget`], the observed value, and the
//! deterministic partial [`ChaseOutcome`]
//! reached so far — resumable via
//! [`ChaseSession::resume`](crate::engine::ChaseSession::resume).

use crate::checkpoint::CheckpointError;
use crate::engine::ChaseOutcome;
use crate::symbol::Symbol;
use crate::telemetry::Budget;
use crate::value::Value;
use std::fmt;

/// Errors raised while evaluating expressions and conditions.
#[derive(Clone, PartialEq, Debug)]
pub enum EvalError {
    /// A variable referenced by an expression is not bound by the match.
    UnboundVariable(Symbol),
    /// Division by zero (integer or float).
    DivisionByZero,
    /// Arithmetic was applied to a non-numeric operand.
    NonNumericOperand(Value),
    /// Floating-point arithmetic produced `NaN`.
    NanResult,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable `{}`", v),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::NonNumericOperand(v) => {
                write!(f, "arithmetic on non-numeric operand `{}`", v)
            }
            EvalError::NanResult => write!(f, "arithmetic produced NaN"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Errors raised by program validation (rule safety and well-formedness).
#[derive(Clone, PartialEq, Debug)]
pub enum ProgramError {
    /// A head variable is not bound by the body, an assignment, or an
    /// aggregate, and is not existentially quantifiable (constraint heads).
    UnsafeHeadVariable {
        /// The offending rule label.
        rule: String,
        /// The offending variable.
        var: Symbol,
    },
    /// A condition or assignment uses a variable never bound by body atoms
    /// or earlier assignments.
    UnboundBodyVariable {
        /// The offending rule label.
        rule: String,
        /// The offending variable.
        var: Symbol,
    },
    /// Two rules share the same label.
    DuplicateRuleLabel(String),
    /// A predicate is used with inconsistent arities.
    ArityMismatch {
        /// The predicate.
        predicate: Symbol,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A rule aggregates over a variable not bound by its body.
    UnboundAggregateInput {
        /// The offending rule label.
        rule: String,
        /// The aggregated variable.
        var: Symbol,
    },
    /// The program's recursion passes through negation: no stratification
    /// exists.
    NotStratifiable,
    /// A rule body is empty.
    EmptyBody(String),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnsafeHeadVariable { rule, var } => {
                write!(f, "rule `{}`: head variable `{}` is unsafe", rule, var)
            }
            ProgramError::UnboundBodyVariable { rule, var } => {
                write!(
                    f,
                    "rule `{}`: variable `{}` is not bound by any body atom",
                    rule, var
                )
            }
            ProgramError::DuplicateRuleLabel(l) => write!(f, "duplicate rule label `{}`", l),
            ProgramError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate `{}` used with arity {} but previously {}",
                predicate, found, expected
            ),
            ProgramError::UnboundAggregateInput { rule, var } => write!(
                f,
                "rule `{}`: aggregate input `{}` is not bound by the body",
                rule, var
            ),
            ProgramError::NotStratifiable => write!(
                f,
                "the program is not stratifiable: recursion passes through negation"
            ),
            ProgramError::EmptyBody(l) => write!(f, "rule `{}` has an empty body", l),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Errors raised by the chase engine at run time.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm, so future variants are non-breaking.
#[non_exhaustive]
#[derive(Debug)]
pub enum ChaseError {
    /// Expression evaluation failed inside a rule application.
    Eval {
        /// The rule label.
        rule: String,
        /// The underlying error (also exposed via
        /// [`std::error::Error::source`]).
        source: EvalError,
    },
    /// A resource budget tripped before fixpoint: deadline, cancellation,
    /// or a round/fact/memory budget (see
    /// [`RunGuard`](crate::telemetry::RunGuard)).
    ///
    /// Carries the deterministic partial outcome reached at the trip
    /// point — a prefix of the canonical evaluation, with its partial
    /// [`RunReport`](crate::telemetry::RunReport) — which
    /// [`ChaseSession::resume`](crate::engine::ChaseSession::resume)
    /// continues to the exact state an uninterrupted run would produce.
    ResourceExhausted {
        /// The budget that tripped.
        budget: Budget,
        /// The observed value at the trip point (rounds, facts, bytes, or
        /// elapsed milliseconds depending on the budget; 0 for
        /// cancellation).
        observed: u64,
        /// The partial outcome: every completed round's facts, provenance
        /// and report.
        partial: Box<ChaseOutcome>,
    },
    /// A negative constraint was violated.
    ConstraintViolated {
        /// The constraint rule label.
        rule: String,
    },
    /// An incremental extension was requested for a program with
    /// negation (more than one stratum): added facts could invalidate
    /// earlier conclusions, so the closure must be recomputed from
    /// scratch.
    NonMonotoneExtension,
    /// A worker panicked while evaluating a rule in the parallel match
    /// phase. The panic was isolated (`catch_unwind`): the process
    /// survives, and the error carries the deterministic state of the
    /// last completed round — the match phase is read-only, so nothing of
    /// the interrupted round was committed. The partial outcome is
    /// resumable via
    /// [`ChaseSession::resume`](crate::engine::ChaseSession::resume).
    ///
    /// When several rules panic in the same phase, which one is named is
    /// scheduling-dependent; the partial outcome is deterministic
    /// regardless.
    WorkerPanic {
        /// Label of the rule whose evaluation panicked.
        rule: String,
        /// The panic message (or a placeholder for non-string payloads).
        message: String,
        /// The deterministic partial outcome at the last completed round.
        partial: Box<ChaseOutcome>,
    },
    /// A checkpoint operation failed: an autosave or trip-save could not
    /// be written, or [`ChaseSession::resume_from_path`](crate::engine::ChaseSession::resume_from_path)
    /// could not load the snapshot. See
    /// [`CheckpointError`] for the precise corruption
    /// or I/O cause.
    Checkpoint {
        /// The underlying checkpoint failure (also exposed via
        /// [`std::error::Error::source`]).
        source: CheckpointError,
        /// For failed autosaves mid-run: the deterministic partial
        /// outcome at the failure point, resumable in memory. `None` when
        /// the failure happened while loading.
        partial: Option<Box<ChaseOutcome>>,
    },
    /// A delta could not be applied by
    /// [`ChaseSession::apply_delta`](crate::engine::ChaseSession::apply_delta);
    /// the live outcome is unchanged. See [`DeltaError`].
    Delta(DeltaError),
}

/// Why [`ChaseSession::apply_delta`](crate::engine::ChaseSession::apply_delta)
/// rejected a delta. The session's live outcome is never modified by a
/// rejected delta.
#[non_exhaustive]
#[derive(Clone, PartialEq, Debug)]
pub enum DeltaError {
    /// No completed outcome is loaded into the session (see
    /// [`ChaseSession::load`](crate::engine::ChaseSession::load)).
    NoLiveOutcome,
    /// The loaded outcome is the partial state of an interrupted run;
    /// continue it with
    /// [`ChaseSession::resume`](crate::engine::ChaseSession::resume)
    /// before applying deltas.
    PartialOutcome,
    /// A retraction names a fact not present in the live store.
    UnknownRetraction(String),
    /// A retraction names a fact that was derived, not asserted: only
    /// extensional (EDB) facts can be retracted.
    NonExtensionalRetraction(String),
    /// An added fact contains a labelled null; nulls are invented by the
    /// engine and cannot be asserted as EDB.
    NullInAddition(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::NoLiveOutcome => {
                write!(f, "no live outcome loaded; call ChaseSession::load first")
            }
            DeltaError::PartialOutcome => write!(
                f,
                "the live outcome is partial; resume it to fixpoint before applying deltas"
            ),
            DeltaError::UnknownRetraction(fact) => {
                write!(f, "cannot retract `{}`: not in the live store", fact)
            }
            DeltaError::NonExtensionalRetraction(fact) => {
                write!(f, "cannot retract `{}`: it is derived, not asserted", fact)
            }
            DeltaError::NullInAddition(fact) => write!(
                f,
                "cannot assert `{}`: labelled nulls are engine-invented",
                fact
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::Eval { rule, source } => {
                write!(f, "rule `{}`: {}", rule, source)
            }
            ChaseError::ResourceExhausted {
                budget, observed, ..
            } => match budget {
                Budget::Cancelled => {
                    write!(
                        f,
                        "chase cancelled before fixpoint; partial outcome retained"
                    )
                }
                _ => write!(
                    f,
                    "chase exceeded its {} (observed {}); partial outcome retained",
                    budget, observed
                ),
            },
            ChaseError::ConstraintViolated { rule } => {
                write!(f, "negative constraint `{}` violated", rule)
            }
            ChaseError::NonMonotoneExtension => write!(
                f,
                "incremental extension requires a negation-free (single-stratum) program"
            ),
            ChaseError::WorkerPanic { rule, message, .. } => write!(
                f,
                "worker panicked evaluating rule `{}`: {}; partial outcome retained",
                rule, message
            ),
            ChaseError::Checkpoint { source, partial } => {
                if partial.is_some() {
                    write!(
                        f,
                        "checkpoint save failed: {}; partial outcome retained",
                        source
                    )
                } else {
                    write!(f, "checkpoint load failed: {}", source)
                }
            }
            ChaseError::Delta(source) => write!(f, "delta rejected: {}", source),
        }
    }
}

impl std::error::Error for ChaseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChaseError::Eval { source, .. } => Some(source),
            ChaseError::Checkpoint { source, .. } => Some(source),
            ChaseError::Delta(source) => Some(source),
            _ => None,
        }
    }
}

/// Errors raised while parsing Vadalog surface syntax.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_rule_context() {
        let e = ChaseError::Eval {
            rule: "o3".into(),
            source: EvalError::DivisionByZero,
        };
        assert!(e.to_string().contains("o3"));
        assert!(e.to_string().contains("division by zero"));
    }

    #[test]
    fn eval_errors_chain_their_source() {
        let e = ChaseError::Eval {
            rule: "o3".into(),
            source: EvalError::DivisionByZero,
        };
        let source = std::error::Error::source(&e).expect("chained source");
        assert_eq!(source.to_string(), "division by zero");
        assert!(std::error::Error::source(&ChaseError::NonMonotoneExtension).is_none());
    }

    #[test]
    fn resource_exhausted_renders_budget_and_observation() {
        let partial = Box::new(crate::engine::ChaseOutcome::empty());
        let e = ChaseError::ResourceExhausted {
            budget: Budget::Rounds(50),
            observed: 51,
            partial,
        };
        let msg = e.to_string();
        assert!(msg.contains("round budget of 50"), "{msg}");
        assert!(msg.contains("51"), "{msg}");
        let cancelled = ChaseError::ResourceExhausted {
            budget: Budget::Cancelled,
            observed: 0,
            partial: Box::new(crate::engine::ChaseOutcome::empty()),
        };
        assert!(cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn parse_error_renders_position() {
        let e = ParseError {
            line: 3,
            column: 14,
            message: "expected `)`".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:14: expected `)`");
    }

    #[test]
    fn program_error_messages_name_the_predicate() {
        let e = ProgramError::ArityMismatch {
            predicate: Symbol::new("own"),
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("own"));
    }
}
