//! The checkpoint corruption matrix: every way a snapshot file can be
//! damaged — truncation, torn writes, bit flips in the body or the
//! checksum, stale format versions, a snapshot of a different program,
//! an empty file — must surface as its *specific*
//! [`CheckpointError`] variant, and never as a panic.

use std::path::{Path, PathBuf};
use vadalog::checkpoint::{self, CheckpointError};
use vadalog::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("checkpoint_corruption");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn control_program() -> ParsedProgram {
    parse_program(
        r#"
        o1: own(x, y, s), s > 0.5 -> control(x, y).
        o2: company(x) -> control(x, x).
        o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).
        company("A").
        own("A", "B", 0.6).
        own("B", "C", 0.3).
        own("A", "C", 0.4).
    "#,
    )
    .unwrap()
}

/// A valid snapshot of a completed run, as raw bytes plus the pieces
/// needed to re-load it.
fn snapshot(name: &str) -> (PathBuf, Vec<u8>, Program, ChaseConfig) {
    let parsed = control_program();
    let db: Database = parsed.facts.into_iter().collect();
    let session = ChaseSession::new(&parsed.program);
    let out = session.run(db).unwrap();
    let path = tmp(name);
    session.checkpoint_to(&out, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes, parsed.program, ChaseConfig::default())
}

fn load(path: &Path, program: &Program, config: &ChaseConfig) -> Result<(), CheckpointError> {
    checkpoint::load(path, program, config).map(|_| ())
}

#[test]
fn a_pristine_snapshot_round_trips() {
    let (path, _, program, config) = snapshot("pristine.ckpt");
    let loaded = checkpoint::load(&path, &program, &config).unwrap();
    assert!(!loaded.is_partial());
    let fresh: Database = control_program().facts.into_iter().collect();
    let reference = ChaseSession::new(&program).run(fresh).unwrap();
    assert_eq!(loaded.database.len(), reference.database.len());
    assert_eq!(
        loaded.graph.derivations().len(),
        reference.graph.derivations().len()
    );
    // Timings differ between runs; the deterministic counters must not.
    assert_eq!(loaded.report.rounds, reference.report.rounds);
    assert_eq!(loaded.report.termination, reference.report.termination);
}

#[test]
fn an_empty_file_is_reported_as_empty() {
    let (path, _, program, config) = snapshot("empty.ckpt");
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        load(&path, &program, &config),
        Err(CheckpointError::Empty)
    ));
}

#[test]
fn a_missing_file_is_an_io_error() {
    let (_, _, program, config) = snapshot("present.ckpt");
    assert!(matches!(
        load(&tmp("never-written.ckpt"), &program, &config),
        Err(CheckpointError::Io(_))
    ));
}

#[test]
fn every_truncation_point_is_detected() {
    let (path, bytes, program, config) = snapshot("truncated.ckpt");
    // A few header cuts, plus body cuts including one-byte-short.
    for cut in [1, 8, 20, 35, 36, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            matches!(
                load(&path, &program, &config),
                Err(CheckpointError::Truncated { .. })
            ),
            "cut at {cut} of {} not reported as truncation",
            bytes.len()
        );
    }
}

#[test]
fn a_flipped_body_byte_fails_the_checksum() {
    let (path, bytes, program, config) = snapshot("bodyflip.ckpt");
    // Flip one byte in the body (header is 36 bytes).
    for pos in [36, 36 + (bytes.len() - 36) / 2, bytes.len() - 1] {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x40;
        std::fs::write(&path, &damaged).unwrap();
        assert!(
            matches!(
                load(&path, &program, &config),
                Err(CheckpointError::ChecksumMismatch { .. })
            ),
            "body flip at {pos} not caught by the checksum"
        );
    }
}

#[test]
fn a_flipped_checksum_byte_is_a_checksum_mismatch() {
    let (path, mut bytes, program, config) = snapshot("sumflip.ckpt");
    bytes[28] ^= 0x01; // first byte of the stored checksum
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        load(&path, &program, &config),
        Err(CheckpointError::ChecksumMismatch { .. })
    ));
}

#[test]
fn a_stale_format_version_is_rejected_by_number() {
    let (path, mut bytes, program, config) = snapshot("version.ckpt");
    bytes[8] = bytes[8].wrapping_add(1); // version is LE at offset 8
    std::fs::write(&path, &bytes).unwrap();
    match load(&path, &program, &config) {
        Err(CheckpointError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, checkpoint::FORMAT_VERSION + 1);
            assert_eq!(supported, checkpoint::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn a_snapshot_of_a_different_program_is_a_fingerprint_mismatch() {
    let (path, _, _, config) = snapshot("foreign.ckpt");
    let other = parse_program("r: p(x) -> q(x).").unwrap().program;
    assert!(matches!(
        load(&path, &other, &config),
        Err(CheckpointError::FingerprintMismatch { .. })
    ));
    // A semantics-affecting config difference is an equally foreign
    // snapshot; thread count is not.
    let (path, _, program, config) = snapshot("config.ckpt");
    assert!(matches!(
        load(&path, &program, &config.clone().with_semi_naive(false)),
        Err(CheckpointError::FingerprintMismatch { .. })
    ));
    assert!(load(&path, &program, &config.clone().with_threads(7)).is_ok());
}

#[test]
fn wrong_magic_is_not_a_checkpoint() {
    let (path, mut bytes, program, config) = snapshot("magic.ckpt");
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        load(&path, &program, &config),
        Err(CheckpointError::BadMagic)
    ));
}

#[test]
fn trailing_garbage_is_malformed() {
    let (path, mut bytes, program, config) = snapshot("trailing.ckpt");
    bytes.extend_from_slice(b"extra");
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        load(&path, &program, &config),
        Err(CheckpointError::Malformed { .. })
    ));
}

#[test]
fn session_load_errors_carry_no_partial_outcome() {
    let (path, mut bytes, program, config) = snapshot("session.ckpt");
    bytes[40] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let session = ChaseSession::new(&program).with_config(config);
    match session.resume_from_path(&path) {
        Err(ChaseError::Checkpoint { source, partial }) => {
            assert!(matches!(source, CheckpointError::ChecksumMismatch { .. }));
            assert!(partial.is_none());
        }
        other => panic!("expected ChaseError::Checkpoint, got {other:?}"),
    }
}
