//! Crash-safe checkpointing of chase runs.
//!
//! A *checkpoint* is a versioned, checksummed snapshot of a (partial or
//! completed) [`ChaseOutcome`]: every fact in [`FactId`] order, the full
//! chase-graph provenance, the run's [`RunReport`], and — for partial
//! outcomes — the engine's continuation cursor (per-rule watermarks,
//! stratum, round, next rule). Loading a snapshot and resuming it reaches
//! a state *bitwise identical* to an uninterrupted run, at any thread
//! count: the snapshot captures exactly the deterministic prefix the
//! engine's [resume](crate::engine::ChaseSession::resume) contract is
//! built on.
//!
//! # Durability protocol
//!
//! Snapshots are written atomically: the encoded bytes go to a sibling
//! temp file, which is fsynced and then renamed over the target (plus a
//! best-effort fsync of the directory). A crash at any point leaves
//! either the previous snapshot or the new one — never a torn file — and
//! a torn or tampered file is *detected*, not trusted: the header carries
//! a magic tag, a format version, a program+config fingerprint, the body
//! length and an FNV-1a checksum of the body. Each failure mode surfaces
//! as its own [`CheckpointError`] variant; loading never panics.
//!
//! # What the fingerprint covers
//!
//! The fingerprint hashes the program text and the *semantics-affecting*
//! configuration (positional indexes, semi-naive mode, fail-on-violation)
//! — the knobs that change which prefix the engine computes. Thread
//! count, budgets and telemetry settings are deliberately excluded:
//! resuming on a different machine, with different budgets or a different
//! worker count, is legal and reaches the identical state.
//!
//! Interned [`Symbol`] ids are process-local, so
//! the snapshot stores strings (deduplicated in a table) and re-interns
//! them on load.
//!
//! ```no_run
//! use vadalog::prelude::*;
//!
//! # fn demo(program: &Program, db: Database) -> Result<(), Box<dyn std::error::Error>> {
//! let session = ChaseSession::new(program);
//! match session.run(db) {
//!     Ok(out) => session.checkpoint_to(&out, "run.ckpt")?,
//!     Err(ChaseError::ResourceExhausted { partial, .. }) => {
//!         session.checkpoint_to(&partial, "run.ckpt")?;
//!     }
//!     Err(e) => return Err(e.into()),
//! }
//! // Later — possibly in a new process:
//! let out = session.resume_from_path("run.ckpt")?;
//! # Ok(())
//! # }
//! ```

use crate::atom::Fact;
use crate::database::{Database, FactId};
use crate::engine::{ChaseConfig, ChaseOutcome, EngineResume, PendingRound};
use crate::expr::Bindings;
use crate::faultpoint;
use crate::program::Program;
use crate::provenance::{ChaseGraph, Derivation};
use crate::rule::RuleId;
use crate::symbol::Symbol;
use crate::telemetry::{
    Budget, PeakStats, PhaseTimings, RoundStats, RuleStats, RunReport, Termination,
};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The snapshot format version this build writes and reads.
///
/// v2 widened the per-rule stats block with the join-planning counters
/// (composite/negation/satisfaction probe-vs-scan splits).
pub const FORMAT_VERSION: u32 = 2;

const MAGIC: [u8; 8] = *b"VDLGCKPT";
/// magic (8) + version (4) + fingerprint (8) + body length (8) +
/// body checksum (8).
const HEADER_LEN: usize = 36;

/// Why a checkpoint could not be written or loaded.
///
/// Every corruption mode of the load path is a distinct variant, so
/// callers (and operators) can tell a half-written file from a tampered
/// one from a snapshot of a different program. Loading never panics.
#[non_exhaustive]
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed (also covers injected
    /// I/O faults, see [`crate::faultpoint`]).
    Io(std::io::Error),
    /// The file is empty: a create that never got its contents (e.g. a
    /// crash between `open` and `write` of a non-atomic writer).
    Empty,
    /// The file ends before the length its header promises: a torn write
    /// or a truncated copy.
    Truncated {
        /// Bytes the header (or the minimum header size) requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The file does not start with the checkpoint magic: not a snapshot.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// Version tag found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The body bytes do not hash to the header's checksum: bit rot or
    /// tampering.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// The snapshot belongs to a different program or
    /// semantics-affecting configuration; resuming it here would not
    /// reproduce the original run.
    FingerprintMismatch {
        /// Fingerprint of the program+config attempting the load.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// The body passed the checksum but does not decode to a well-formed
    /// snapshot (internal inconsistency; should not happen for files this
    /// build wrote).
    Malformed {
        /// What failed to decode.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {}", e),
            CheckpointError::Empty => {
                write!(f, "checkpoint file is empty (never written or zeroed)")
            }
            CheckpointError::Truncated { expected, actual } => write!(
                f,
                "checkpoint truncated: {} bytes present, {} required (torn write?)",
                actual, expected
            ),
            CheckpointError::BadMagic => {
                write!(f, "not a checkpoint file (magic tag missing)")
            }
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint format version {} unsupported (this build reads version {})",
                found, supported
            ),
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint body checksum mismatch: header says {:#018x}, body hashes to {:#018x}",
                expected, actual
            ),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different program/config: fingerprint {:#018x} \
                 recorded, {:#018x} expected",
                found, expected
            ),
            CheckpointError::Malformed { detail } => {
                write!(f, "checkpoint body malformed: {}", detail)
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// When the engine writes snapshots on its own (see
/// [`ChaseConfig::with_autosave`](crate::engine::ChaseConfig::with_autosave)).
///
/// With a policy set, the engine saves to `path` every
/// [`every_rounds`](AutosavePolicy::every_rounds) completed rounds, and —
/// with [`on_guard_trip`](AutosavePolicy::on_guard_trip) — whenever a
/// budget trips or a worker panic interrupts the run, so the partial
/// outcome those errors carry is also on disk. Autosave failures surface
/// as [`ChaseError::Checkpoint`](crate::error::ChaseError) carrying the
/// in-memory partial outcome: a full disk never silently loses the run.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct AutosavePolicy {
    /// Snapshot target; each save atomically replaces the previous one.
    pub path: PathBuf,
    /// Save every N completed rounds (`0`: only on guard trips).
    pub every_rounds: u32,
    /// Also save when a budget trips or a worker panic interrupts the
    /// run (default: true).
    pub on_guard_trip: bool,
}

impl AutosavePolicy {
    /// A policy writing to `path` on guard trips only; chain
    /// [`every_rounds`](AutosavePolicy::every_rounds) for periodic saves.
    pub fn new(path: impl Into<PathBuf>) -> AutosavePolicy {
        AutosavePolicy {
            path: path.into(),
            every_rounds: 0,
            on_guard_trip: true,
        }
    }

    /// Saves every `n` completed rounds (`0` disables periodic saves).
    pub fn every_rounds(mut self, n: u32) -> AutosavePolicy {
        self.every_rounds = n;
        self
    }

    /// Enables or disables saving on guard trips and worker panics.
    pub fn on_guard_trip(mut self, on: bool) -> AutosavePolicy {
        self.on_guard_trip = on;
        self
    }
}

/// The program+config fingerprint embedded in (and checked against)
/// every snapshot: FNV-1a over the program text and the
/// semantics-affecting configuration. Thread count, budgets and
/// telemetry knobs are excluded — they may differ between the saving and
/// the resuming process.
pub fn fingerprint(program: &Program, config: &ChaseConfig) -> u64 {
    let mut h = Fnv::new();
    h.write(b"vadalog-checkpoint-fingerprint-v1");
    h.write(program.to_string().as_bytes());
    h.write(&[
        u8::from(config.use_positional_index),
        u8::from(config.semi_naive),
        u8::from(config.fail_on_violation),
    ]);
    h.finish()
}

/// Atomically writes a snapshot of `outcome` to `path`.
///
/// Prefer the session-level wrapper
/// [`ChaseSession::checkpoint_to`](crate::engine::ChaseSession::checkpoint_to);
/// this free function exists for tooling that holds program and config
/// separately.
pub fn save(
    path: &Path,
    program: &Program,
    config: &ChaseConfig,
    outcome: &ChaseOutcome,
) -> Result<(), CheckpointError> {
    save_parts(
        path,
        fingerprint(program, config),
        &SnapshotParts {
            db: &outcome.database,
            graph: &outcome.graph,
            rounds: outcome.rounds as u64,
            derived_facts: outcome.derived_facts as u64,
            violations: &outcome.violations,
            report: &outcome.report,
            resume: outcome.resume.as_ref(),
        },
        &config.metrics_registry(),
    )
}

/// Loads, verifies and rebuilds the snapshot at `path` written for
/// `program` under `config`.
///
/// The returned outcome is exactly the state that was saved: for a
/// partial snapshot, [`ChaseOutcome::is_partial`] is true and
/// [`ChaseSession::resume`](crate::engine::ChaseSession::resume) (or the
/// one-call [`resume_from_path`](crate::engine::ChaseSession::resume_from_path))
/// continues it.
pub fn load(
    path: &Path,
    program: &Program,
    config: &ChaseConfig,
) -> Result<ChaseOutcome, CheckpointError> {
    let _span = crate::span!("checkpoint.load", path = path.display().to_string());
    config
        .metrics_registry()
        .counter(
            "vadalog_checkpoint_loads_total",
            "Checkpoint snapshots read back from disk.",
        )
        .inc();
    faultpoint::io("checkpoint.read")?;
    let bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Err(CheckpointError::Empty);
    }
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated {
            expected: HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let found_fp = u64::from_le_bytes(bytes[12..20].try_into().expect("8 header bytes"));
    let body_len = u64::from_le_bytes(bytes[20..28].try_into().expect("8 header bytes"));
    let checksum = u64::from_le_bytes(bytes[28..36].try_into().expect("8 header bytes"));
    let total = HEADER_LEN as u64 + body_len;
    if (bytes.len() as u64) < total {
        return Err(CheckpointError::Truncated {
            expected: total,
            actual: bytes.len() as u64,
        });
    }
    if bytes.len() as u64 > total {
        return Err(CheckpointError::Malformed {
            detail: format!(
                "{} trailing bytes after the declared body",
                bytes.len() as u64 - total
            ),
        });
    }
    let body = &bytes[HEADER_LEN..];
    let actual = fnv1a(body);
    if actual != checksum {
        return Err(CheckpointError::ChecksumMismatch {
            expected: checksum,
            actual,
        });
    }
    let expected_fp = fingerprint(program, config);
    if found_fp != expected_fp {
        return Err(CheckpointError::FingerprintMismatch {
            expected: expected_fp,
            found: found_fp,
        });
    }
    decode_body(body)
}

/// The borrowed pieces of a snapshot, so the engine can autosave without
/// materializing a [`ChaseOutcome`].
pub(crate) struct SnapshotParts<'a> {
    pub db: &'a Database,
    pub graph: &'a ChaseGraph,
    pub rounds: u64,
    pub derived_facts: u64,
    pub violations: &'a [String],
    pub report: &'a RunReport,
    pub resume: Option<&'a EngineResume>,
}

/// Encodes `parts` and writes them durably: temp file → fsync → rename,
/// with a best-effort directory fsync. Fault points guard every step.
pub(crate) fn save_parts(
    path: &Path,
    fingerprint: u64,
    parts: &SnapshotParts<'_>,
    registry: &crate::obs::metrics::MetricsRegistry,
) -> Result<(), CheckpointError> {
    let _span = crate::span!(
        "checkpoint.save",
        path = path.display().to_string(),
        facts = parts.db.len(),
    );
    let body = encode_body(parts);
    let mut bytes = Vec::with_capacity(HEADER_LEN + body.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&fingerprint.to_le_bytes());
    bytes.extend_from_slice(&(body.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    let file_name = path
        .file_name()
        .ok_or_else(|| {
            CheckpointError::Io(std::io::Error::other("checkpoint path has no file name"))
        })?
        .to_owned();
    let mut tmp_name = file_name;
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);

    faultpoint::io("checkpoint.write")?;
    let mut f = fs::File::create(&tmp)?;
    f.write_all(&bytes)?;
    faultpoint::io("checkpoint.sync")?;
    let sync_start = std::time::Instant::now();
    f.sync_all()?;
    registry
        .histogram(
            "vadalog_checkpoint_fsync_ns",
            &[100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000],
            "Time spent in fsync per checkpoint write, in nanoseconds.",
        )
        .observe(sync_start.elapsed().as_nanos() as u64);
    drop(f);
    // A crash here (after the durable temp write, before the rename)
    // leaves the previous snapshot untouched — the atomicity the tests
    // inject faults to verify.
    faultpoint::trigger("checkpoint.commit");
    faultpoint::io("checkpoint.rename")?;
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Durability of the rename itself; best effort (not all
        // filesystems support fsync on directories).
        let _ = fs::File::open(dir).and_then(|d| d.sync_all());
    }
    // Counted only after the rename: a snapshot isn't "saved" until it
    // is the file at `path`.
    registry
        .counter(
            "vadalog_checkpoint_bytes_total",
            "Bytes written to committed checkpoint snapshots (header + body).",
        )
        .add(bytes.len() as u64);
    registry
        .counter(
            "vadalog_checkpoint_saves_total",
            "Checkpoint snapshots committed durably.",
        )
        .inc();
    Ok(())
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Streaming FNV-1a 64.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

/// Interns strings in first-use order while the content section is
/// encoded; the table section is emitted first, so decoding is one pass.
#[derive(Default)]
struct StringTable {
    index: HashMap<String, u32>,
    strings: Vec<String>,
}

impl StringTable {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.index.insert(s.to_string(), i);
        self.strings.push(s.to_string());
        i
    }
}

struct Enc {
    buf: Vec<u8>,
    strings: StringTable,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        let i = self.strings.intern(s);
        self.u32(i);
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Str(s) => {
                self.u8(0);
                self.str(s.as_str());
            }
            Value::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(2);
                self.u64(f.to_bits());
            }
            Value::Bool(b) => {
                self.u8(3);
                self.u8(u8::from(*b));
            }
            Value::Null(n) => {
                self.u8(4);
                self.u64(*n);
            }
        }
    }

    /// Bindings in sorted variable-name order: `HashMap` iteration order
    /// is nondeterministic, snapshot bytes must not be.
    fn bindings(&mut self, b: &Bindings) {
        let mut entries: Vec<(&str, &Value)> = b.iter().map(|(k, v)| (k.as_str(), v)).collect();
        entries.sort_by_key(|&(name, _)| name);
        self.u32(entries.len() as u32);
        for (name, value) in entries {
            self.str(name);
            self.value(value);
        }
    }
}

fn encode_body(parts: &SnapshotParts<'_>) -> Vec<u8> {
    let mut e = Enc {
        buf: Vec::new(),
        strings: StringTable::default(),
    };

    // Facts, in FactId order (dense: the i-th entry is fact i).
    e.u32(parts.db.len() as u32);
    for (_, fact) in parts.db.iter() {
        e.str(fact.predicate.as_str());
        e.u32(fact.values.len() as u32);
        for v in &fact.values {
            e.value(v);
        }
    }
    // Inactive (superseded) facts, ascending.
    let inactive: Vec<u32> = (0..parts.db.len() as u32)
        .filter(|&i| !parts.db.is_active(FactId(i)))
        .collect();
    e.u32(inactive.len() as u32);
    for id in inactive {
        e.u32(id);
    }
    // Extensional facts, ascending.
    let extensional: Vec<u32> = (0..parts.db.len() as u32)
        .filter(|&i| parts.graph.is_extensional(FactId(i)))
        .collect();
    e.u32(extensional.len() as u32);
    for id in extensional {
        e.u32(id);
    }
    // Derivations, in recording order.
    let ders = parts.graph.derivations();
    e.u32(ders.len() as u32);
    for d in ders {
        e.u32(d.rule.0 as u32);
        e.u32(d.conclusion.0);
        e.u32(d.round);
        e.u32(d.contributors);
        e.u32(d.premises.len() as u32);
        for p in &d.premises {
            e.u32(p.0);
        }
        e.bindings(&d.bindings);
        e.u32(d.contributor_bindings.len() as u32);
        for cb in &d.contributor_bindings {
            e.bindings(cb);
        }
    }
    // Violations.
    e.u32(parts.violations.len() as u32);
    for v in parts.violations {
        e.str(v);
    }
    e.u64(parts.rounds);
    e.u64(parts.derived_facts);
    e.u64(parts.db.approx_bytes() as u64);
    // Continuation cursor.
    match parts.resume {
        None => e.u8(0),
        Some(r) => {
            e.u8(1);
            e.u32(r.last_seen_len.len() as u32);
            for &w in &r.last_seen_len {
                e.u64(w as u64);
            }
            e.u32(r.stratum as u32);
            e.u32(r.completed_rounds);
            match &r.pending {
                None => e.u8(0),
                Some(p) => {
                    e.u8(1);
                    e.u32(p.round);
                    e.u32(p.next_rule as u32);
                    e.u8(u8::from(p.changed_so_far));
                }
            }
        }
    }
    // Report.
    encode_report(&mut e, parts.report, parts.resume.is_some());

    // Final layout: string table first, content after.
    let mut body = Vec::with_capacity(e.buf.len() + 64);
    let mut head = Enc {
        buf: Vec::new(),
        strings: StringTable::default(),
    };
    head.u32(e.strings.strings.len() as u32);
    for s in &e.strings.strings {
        head.u32(s.len() as u32);
        head.buf.extend_from_slice(s.as_bytes());
    }
    body.extend_from_slice(&head.buf);
    body.extend_from_slice(&e.buf);
    body
}

fn encode_report(e: &mut Enc, report: &RunReport, partial: bool) {
    // A mid-run autosave clones a report whose termination was never
    // stamped; record it as Suspended so the loaded report reflects a
    // run in progress.
    let suspended = Termination::Suspended;
    let termination = if partial && matches!(report.termination, Termination::Completed) {
        &suspended
    } else {
        &report.termination
    };
    match termination {
        Termination::Completed => e.u8(0),
        Termination::Exhausted { budget, observed } => {
            e.u8(1);
            match budget {
                Budget::Rounds(n) => {
                    e.u8(0);
                    e.u64(*n);
                }
                Budget::Facts(n) => {
                    e.u8(1);
                    e.u64(*n);
                }
                Budget::MemoryBytes(n) => {
                    e.u8(2);
                    e.u64(*n);
                }
                Budget::Deadline(d) => {
                    e.u8(3);
                    e.u64(d.as_millis() as u64);
                }
                Budget::Cancelled => {
                    e.u8(4);
                    e.u64(0);
                }
            }
            e.u64(*observed);
        }
        Termination::Suspended => e.u8(2),
        Termination::Panicked { rule } => {
            e.u8(3);
            e.str(rule);
        }
    }
    e.u64(report.threads as u64);
    e.u32(report.rounds);
    e.u32(report.strata);
    e.u32(report.rules.len() as u32);
    for r in &report.rules {
        e.str(&r.label);
        for v in [
            r.matches_enumerated,
            r.firings,
            r.facts_committed,
            r.duplicates_preempted,
            r.isomorphism_checks,
            r.satisfaction_preempted,
            r.index_probes,
            r.scans,
            r.composite_probes,
            r.negation_probes,
            r.negation_scans,
            r.satisfaction_probes,
            r.satisfaction_scans,
        ] {
            e.u64(v);
        }
    }
    e.u32(report.rounds_log.len() as u32);
    for r in &report.rounds_log {
        e.u32(r.round);
        e.u32(r.stratum);
        e.u64(r.matches);
        e.u64(r.facts_committed);
        e.u64(r.facts_end);
        e.u64(r.duration_ns);
    }
    for v in [
        report.timings.index_build_ns,
        report.timings.match_ns,
        report.timings.merge_ns,
        report.timings.commit_ns,
        report.timings.aggregate_ns,
        report.timings.checkpoint_save_ns,
        report.timings.checkpoint_restore_ns,
        report.timings.total_ns,
    ] {
        e.u64(v);
    }
    for v in [
        report.peak.facts,
        report.peak.derivations,
        report.peak.match_buffer,
        report.peak.approx_bytes,
    ] {
        e.u64(v);
    }
    e.u64(report.autosaves);
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    strings: Vec<Symbol>,
}

type DecResult<T> = Result<T, CheckpointError>;

fn malformed(detail: impl Into<String>) -> CheckpointError {
    CheckpointError::Malformed {
        detail: detail.into(),
    }
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| malformed(format!("unexpected end of body at byte {}", self.pos)))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> DecResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn i64(&mut self) -> DecResult<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an element count and sanity-checks it against the bytes
    /// remaining (each element needs at least `min_elem` bytes), so a
    /// corrupted count cannot drive a huge allocation.
    fn count(&mut self, min_elem: usize, what: &str) -> DecResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.buf.len() - self.pos {
            return Err(malformed(format!("{} count {} exceeds body size", what, n)));
        }
        Ok(n)
    }

    fn str(&mut self) -> DecResult<Symbol> {
        let i = self.u32()? as usize;
        self.strings
            .get(i)
            .copied()
            .ok_or_else(|| malformed(format!("string index {} out of table range", i)))
    }

    fn value(&mut self) -> DecResult<Value> {
        match self.u8()? {
            0 => Ok(Value::Str(self.str()?)),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            3 => Ok(Value::Bool(self.u8()? != 0)),
            4 => Ok(Value::Null(self.u64()?)),
            t => Err(malformed(format!("unknown value tag {}", t))),
        }
    }

    fn bindings(&mut self) -> DecResult<Bindings> {
        let n = self.count(5, "binding")?;
        let mut b = Bindings::with_capacity(n);
        for _ in 0..n {
            let var = self.str()?;
            let value = self.value()?;
            b.insert(var, value);
        }
        Ok(b)
    }

    fn fact_id(&mut self, facts: usize, what: &str) -> DecResult<FactId> {
        let id = self.u32()?;
        if (id as usize) < facts {
            Ok(FactId(id))
        } else {
            Err(malformed(format!(
                "{} references fact {} of {}",
                what, id, facts
            )))
        }
    }
}

fn decode_body(body: &[u8]) -> Result<ChaseOutcome, CheckpointError> {
    let mut d = Dec {
        buf: body,
        pos: 0,
        strings: Vec::new(),
    };
    // String table.
    let n_strings = d.count(4, "string table")?;
    for _ in 0..n_strings {
        let len = d.u32()? as usize;
        let bytes = d.take(len)?;
        let s =
            std::str::from_utf8(bytes).map_err(|_| malformed("string table entry is not UTF-8"))?;
        d.strings.push(Symbol::new(s));
    }

    // Facts → a fresh store; ids must come out dense and in order.
    let n_facts = d.count(8, "fact")?;
    let mut database = Database::new();
    for i in 0..n_facts {
        let predicate = d.str()?;
        let arity = d.count(1, "fact value")?;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(d.value()?);
        }
        let (id, fresh) = database.insert(Fact { predicate, values });
        if !fresh || id.0 as usize != i {
            return Err(malformed(format!(
                "fact {} is a duplicate in the snapshot",
                i
            )));
        }
    }
    let n_inactive = d.count(4, "inactive fact")?;
    for _ in 0..n_inactive {
        let id = d.fact_id(n_facts, "inactive set")?;
        database.deactivate(id);
    }

    let mut graph = ChaseGraph::new();
    let n_ext = d.count(4, "extensional fact")?;
    for _ in 0..n_ext {
        let id = d.fact_id(n_facts, "extensional set")?;
        graph.mark_extensional(id);
    }
    let n_ders = d.count(24, "derivation")?;
    for _ in 0..n_ders {
        let rule = RuleId(d.u32()? as usize);
        let conclusion = d.fact_id(n_facts, "derivation conclusion")?;
        let round = d.u32()?;
        let contributors = d.u32()?;
        let n_prem = d.count(4, "premise")?;
        let mut premises = Vec::with_capacity(n_prem);
        for _ in 0..n_prem {
            premises.push(d.fact_id(n_facts, "derivation premise")?);
        }
        let bindings = d.bindings()?;
        let n_cb = d.count(4, "contributor bindings")?;
        let mut contributor_bindings = Vec::with_capacity(n_cb);
        for _ in 0..n_cb {
            contributor_bindings.push(d.bindings()?);
        }
        graph.record(Derivation {
            rule,
            premises,
            conclusion,
            round,
            contributors,
            bindings,
            contributor_bindings,
        });
    }

    let n_viol = d.count(4, "violation")?;
    let mut violations = Vec::with_capacity(n_viol);
    for _ in 0..n_viol {
        violations.push(d.str()?.as_str().to_string());
    }
    let rounds = d.u64()? as usize;
    let derived_facts = d.u64()? as usize;
    let approx_bytes = d.u64()? as usize;
    database.restore_approx_bytes(approx_bytes);

    let resume = match d.u8()? {
        0 => None,
        1 => {
            let n = d.count(8, "watermark")?;
            let mut last_seen_len = Vec::with_capacity(n);
            for _ in 0..n {
                last_seen_len.push(d.u64()? as usize);
            }
            let stratum = d.u32()? as usize;
            let completed_rounds = d.u32()?;
            let pending = match d.u8()? {
                0 => None,
                1 => Some(PendingRound {
                    round: d.u32()?,
                    next_rule: d.u32()? as usize,
                    changed_so_far: d.u8()? != 0,
                }),
                t => return Err(malformed(format!("unknown pending-round tag {}", t))),
            };
            Some(EngineResume {
                last_seen_len,
                stratum,
                completed_rounds,
                pending,
            })
        }
        t => return Err(malformed(format!("unknown resume tag {}", t))),
    };

    let report = decode_report(&mut d)?;
    if d.pos != d.buf.len() {
        return Err(malformed(format!(
            "{} undecoded bytes after the report",
            d.buf.len() - d.pos
        )));
    }

    Ok(ChaseOutcome {
        database,
        graph,
        rounds,
        derived_facts,
        violations,
        report,
        resume,
    })
}

fn decode_report(d: &mut Dec<'_>) -> DecResult<RunReport> {
    let termination = match d.u8()? {
        0 => Termination::Completed,
        1 => {
            let budget = match d.u8()? {
                0 => Budget::Rounds(d.u64()?),
                1 => Budget::Facts(d.u64()?),
                2 => Budget::MemoryBytes(d.u64()?),
                3 => Budget::Deadline(Duration::from_millis(d.u64()?)),
                4 => {
                    d.u64()?;
                    Budget::Cancelled
                }
                t => return Err(malformed(format!("unknown budget tag {}", t))),
            };
            Termination::Exhausted {
                budget,
                observed: d.u64()?,
            }
        }
        2 => Termination::Suspended,
        3 => Termination::Panicked {
            rule: d.str()?.as_str().to_string(),
        },
        t => return Err(malformed(format!("unknown termination tag {}", t))),
    };
    let threads = d.u64()? as usize;
    let rounds = d.u32()?;
    let strata = d.u32()?;
    let n_rules = d.count(108, "rule stats")?;
    let mut rules = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let label = d.str()?.as_str().to_string();
        let mut r = RuleStats {
            label,
            ..RuleStats::default()
        };
        r.matches_enumerated = d.u64()?;
        r.firings = d.u64()?;
        r.facts_committed = d.u64()?;
        r.duplicates_preempted = d.u64()?;
        r.isomorphism_checks = d.u64()?;
        r.satisfaction_preempted = d.u64()?;
        r.index_probes = d.u64()?;
        r.scans = d.u64()?;
        r.composite_probes = d.u64()?;
        r.negation_probes = d.u64()?;
        r.negation_scans = d.u64()?;
        r.satisfaction_probes = d.u64()?;
        r.satisfaction_scans = d.u64()?;
        rules.push(r);
    }
    let n_rounds = d.count(40, "round stats")?;
    let mut rounds_log = Vec::with_capacity(n_rounds);
    // Struct-literal fields evaluate in written order, which is the
    // serialized order.
    for _ in 0..n_rounds {
        rounds_log.push(RoundStats {
            round: d.u32()?,
            stratum: d.u32()?,
            matches: d.u64()?,
            facts_committed: d.u64()?,
            facts_end: d.u64()?,
            duration_ns: d.u64()?,
        });
    }
    let timings = PhaseTimings {
        index_build_ns: d.u64()?,
        match_ns: d.u64()?,
        merge_ns: d.u64()?,
        commit_ns: d.u64()?,
        aggregate_ns: d.u64()?,
        checkpoint_save_ns: d.u64()?,
        checkpoint_restore_ns: d.u64()?,
        total_ns: d.u64()?,
    };
    let peak = PeakStats {
        facts: d.u64()?,
        derivations: d.u64()?,
        match_buffer: d.u64()?,
        approx_bytes: d.u64()?,
    };
    let autosaves = d.u64()?;
    Ok(RunReport {
        termination,
        threads,
        rounds,
        strata,
        rules,
        rounds_log,
        timings,
        peak,
        autosaves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn small_outcome() -> (crate::program::Program, ChaseOutcome) {
        let parsed = parse_program(
            r#"
            o1: own(x, y, s), s > 0.5 -> control(x, y).
            o2: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).
            own("A", "B", 0.6).
            own("B", "C", 0.8).
        "#,
        )
        .unwrap();
        let db: Database = parsed.facts.into_iter().collect();
        let out = crate::engine::ChaseSession::new(&parsed.program)
            .run(db)
            .unwrap();
        (parsed.program, out)
    }

    /// Structural equality of two outcomes, at the level the determinism
    /// contract promises: facts (with activity), provenance, counters.
    fn assert_same(a: &ChaseOutcome, b: &ChaseOutcome) {
        assert_eq!(a.database.len(), b.database.len());
        for (id, fact) in a.database.iter() {
            assert_eq!(fact, b.database.fact(id));
            assert_eq!(a.database.is_active(id), b.database.is_active(id));
        }
        assert_eq!(a.database.approx_bytes(), b.database.approx_bytes());
        assert_eq!(a.graph.derivations().len(), b.graph.derivations().len());
        for (x, y) in a.graph.derivations().iter().zip(b.graph.derivations()) {
            assert_eq!(x.rule, y.rule);
            assert_eq!(x.premises, y.premises);
            assert_eq!(x.conclusion, y.conclusion);
            assert_eq!(x.round, y.round);
            assert_eq!(x.contributors, y.contributors);
            assert_eq!(x.bindings, y.bindings);
            assert_eq!(x.contributor_bindings, y.contributor_bindings);
        }
        assert_eq!(a.graph.approx_bytes(), b.graph.approx_bytes());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.derived_facts, b.derived_facts);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn body_round_trips_bit_for_bit() {
        let (_, out) = small_outcome();
        let parts = SnapshotParts {
            db: &out.database,
            graph: &out.graph,
            rounds: out.rounds as u64,
            derived_facts: out.derived_facts as u64,
            violations: &out.violations,
            report: &out.report,
            resume: None,
        };
        let body = encode_body(&parts);
        let decoded = decode_body(&body).unwrap();
        assert_same(&out, &decoded);
        assert!(decoded.resume.is_none());
        // Re-encoding the decoded outcome reproduces identical bytes.
        let parts2 = SnapshotParts {
            db: &decoded.database,
            graph: &decoded.graph,
            rounds: decoded.rounds as u64,
            derived_facts: decoded.derived_facts as u64,
            violations: &decoded.violations,
            report: &decoded.report,
            resume: None,
        };
        assert_eq!(body, encode_body(&parts2));
    }

    #[test]
    fn fingerprint_tracks_program_and_semantics_only() {
        let (program, _) = small_outcome();
        let other = parse_program("r: p(x) -> q(x).").unwrap().program;
        // Pinned so the ne-assertions below hold when VADALOG_NO_INDEX
        // flips the default.
        let base = ChaseConfig::default().with_positional_index(true);
        let fp = fingerprint(&program, &base);
        assert_eq!(fp, fingerprint(&program, &base.clone().with_threads(8)));
        assert_eq!(fp, fingerprint(&program, &base.clone().with_max_rounds(3)));
        assert_ne!(fp, fingerprint(&other, &base));
        assert_ne!(
            fp,
            fingerprint(&program, &base.clone().with_semi_naive(false))
        );
        assert_ne!(
            fp,
            fingerprint(&program, &base.clone().with_positional_index(false))
        );
    }

    #[test]
    fn truncated_body_is_malformed_not_a_panic() {
        let (_, out) = small_outcome();
        let parts = SnapshotParts {
            db: &out.database,
            graph: &out.graph,
            rounds: out.rounds as u64,
            derived_facts: out.derived_facts as u64,
            violations: &out.violations,
            report: &out.report,
            resume: None,
        };
        let body = encode_body(&parts);
        for cut in [0, 1, body.len() / 2, body.len() - 1] {
            assert!(
                matches!(
                    decode_body(&body[..cut]),
                    Err(CheckpointError::Malformed { .. })
                ),
                "cut at {} must be malformed",
                cut
            );
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
