//! The chase procedure: forward inference to fixpoint with provenance.
//!
//! The engine implements the (restricted) chase of Sec. 3: rules are
//! applied round by round until no chase step adds knowledge. Monotonic
//! aggregations are evaluated per round over all currently visible
//! contributors, so aggregate facts grow towards their fixpoint value and
//! the full contributor set is recorded as provenance (cf. Fig. 8, where
//! `Risk(C,11)` is premised on both `Debts(B,C,2)` and `Debts(B,C,9)`).
//!
//! # Parallel matching, sequential commit
//!
//! Each round is split into two phases:
//!
//! 1. **Parallel match phase** — every applicable rule's body matches are
//!    enumerated against the round-start snapshot of the (append-only)
//!    database, read-only, across a pool of worker threads. Work is
//!    decomposed into [`MatchChunk`]s (rules × semi-naive pivots ×
//!    slices of the outermost join loop), whose results are merged in a
//!    canonical order independent of thread scheduling.
//! 2. **Sequential commit phase** — rules are committed in rule-id order.
//!    Before a rule fires, a cheap incremental *top-up* match picks up
//!    matches that touch facts committed earlier in the same round (by
//!    lower-id rules), restoring exactly the intra-round visibility of a
//!    sequential evaluation. The union is filtered against superseded
//!    facts, sorted by premise-id vector (lexicographic) and fired in
//!    that order. Aggregation re-grouping, the restricted-chase
//!    existential satisfaction check, labelled-null invention and
//!    provenance recording all live in this phase: they read and write
//!    global state.
//!
//! **Determinism contract:** the committed fact set, the dense [`FactId`]
//! assignment and the chase-graph derivations are *bitwise identical at
//! any thread count* (including 1): commit order is `(rule id, premise-id
//! lexicographic)`, a pure function of the database state, never of
//! scheduling. `threads == 1` executes the same phases inline without
//! spawning.

mod delta;
mod matcher;

pub use delta::{Delta, DeltaOutcome, DeltaStrategy};
pub use matcher::{
    match_body, match_body_incremental, match_body_incremental_metered,
    match_body_incremental_planned, match_body_planned, match_body_with, match_body_with_metered,
    match_chunk, match_chunk_metered, match_chunk_planned, required_indexes, BodyMatch, JoinPlan,
    MatchChunk, MatchMetrics,
};

use crate::atom::Fact;
use crate::checkpoint::{self, AutosavePolicy, CheckpointError, SnapshotParts};
use crate::database::{Database, FactId};
use crate::depgraph::GoalCone;
use crate::error::{ChaseError, EvalError};
use crate::expr::Bindings;
use crate::faultpoint;
use crate::obs::metrics::{Histogram, MetricsRegistry};
use crate::program::Program;
use crate::provenance::{ChaseGraph, Derivation};
use crate::rule::{AggFunc, Head, Rule, RuleId};
use crate::symbol::Symbol;
use crate::telemetry::{
    ArmedGuard, Budget, RoundStats, RuleStats, RunGuard, RunReport, Termination,
};
use crate::term::Term;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Configuration of a chase run.
///
/// Marked `#[non_exhaustive]`: construct it with [`ChaseConfig::default`]
/// and the `with_*` setters, so future knobs (sharding, memory caps) are
/// non-breaking.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Maximum number of full evaluation rounds before giving up.
    pub max_rounds: usize,
    /// Maximum number of facts (EDB + derived) before giving up.
    pub max_facts: usize,
    /// If true, a violated negative constraint aborts the run with an
    /// error; otherwise violations are collected in the outcome.
    pub fail_on_violation: bool,
    /// Use positional indexes during matching (default). The engine
    /// builds every statically-probed index eagerly before the first
    /// round. Disabling falls back to per-predicate scans — the
    /// engine-ablation baseline — and to a purely sequential evaluation.
    ///
    /// The default is `true` unless the `VADALOG_NO_INDEX` environment
    /// variable is set (to anything but `0` or the empty string), which
    /// flips the process default to the scan-ablation path — the knob CI
    /// uses to run the whole test suite over the scan code path.
    pub use_positional_index: bool,
    /// Plan joins statically per rule (default): probe composite indexes
    /// binding *all* statically-bound positions of each atom, and serve
    /// negated-atom and head-satisfaction checks from indexes built for
    /// their planned signatures. Disabling reverts to the legacy
    /// single-position probe (first bound position per atom, negation and
    /// satisfaction by linear scan) — kept as the measured baseline of
    /// the `join_plan` bench. Only meaningful while
    /// `use_positional_index` is on.
    pub join_planning: bool,
    /// Evaluate non-aggregate rules semi-naively: after the first round,
    /// only matches involving at least one new fact are enumerated
    /// (default). Aggregate rules always re-match fully, since their
    /// groups fold over all contributors.
    pub semi_naive: bool,
    /// Worker threads for the parallel match phase. `0` (default) uses
    /// the available parallelism of the host; `1` evaluates inline
    /// without spawning. The chase output is bitwise identical at any
    /// thread count.
    pub threads: usize,
    /// Resource governance for the run: wall-clock deadline, cooperative
    /// cancellation and round/fact/memory budgets. Composes with the
    /// legacy `max_rounds`/`max_facts` knobs (the tighter bound wins);
    /// trips surface as [`ChaseError::ResourceExhausted`] carrying the
    /// deterministic partial outcome.
    pub guard: RunGuard,
    /// Collect full telemetry: wall-clock phase timings and the per-round
    /// log of the [`RunReport`]. The cheap integer counters are always
    /// collected; disabling this skips only the clock reads and the round
    /// log (the knob the telemetry-overhead bench toggles). Default: on.
    pub full_telemetry: bool,
    /// Crash-safety: when set, the engine snapshots the run to the
    /// policy's path every N completed rounds and/or on budget trips and
    /// worker panics (see [`AutosavePolicy`]). A process crash then loses
    /// at most the work since the last snapshot:
    /// [`ChaseSession::resume_from_path`] picks it up. Default: off.
    pub autosave: Option<AutosavePolicy>,
    /// The metrics registry the run reports into. `None` (default) uses
    /// the process-wide [`crate::obs::metrics::global`] registry; tests
    /// pass their own to observe a single run in isolation. Every metric
    /// the engine writes is derived from the deterministic run telemetry,
    /// so registry contents are thread-count invariant (latency histogram
    /// *bucket placement* excepted — observation counts still are).
    pub metrics: Option<std::sync::Arc<MetricsRegistry>>,
    /// Goal-directed relevance pruning: when set, the run evaluates only
    /// the rules in the goal predicate's relevance cone (see
    /// [`crate::depgraph::GoalCone`]) and builds indexes only
    /// for them. The cone follows positive *and* negated dependency
    /// edges closed over the SCC condensation, so the pruned run derives
    /// exactly the full perfect model restricted to cone predicates —
    /// goal facts, their provenance and therefore their explanations are
    /// identical to a full run's. Rules outside the cone (constraints
    /// included) are skipped entirely: pruned runs are an explanation
    /// evaluation mode, not a constraint-validation one.
    ///
    /// Set by [`ChaseConfig::with_goal_cone`]; ignored process-wide when
    /// the `VADALOG_NO_PRUNE` environment variable is set (to anything
    /// but `0` or the empty string) — the CI knob that runs the whole
    /// suite with pruning disabled.
    pub goal_cone: Option<Symbol>,
}

/// True iff the `VADALOG_NO_INDEX` environment variable requests the
/// scan-ablation default for [`ChaseConfig::use_positional_index`]. Read
/// once per process: a config default must not change mid-run.
fn scan_ablation_default() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var_os("VADALOG_NO_INDEX").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

/// True iff the `VADALOG_NO_PRUNE` environment variable disables
/// goal-directed relevance pruning process-wide: a set
/// [`ChaseConfig::goal_cone`] is then ignored and every run evaluates
/// the full program — the ablation mirror of `VADALOG_NO_INDEX`, used by
/// CI to run the whole suite over the unpruned path. Read once per
/// process: pruning must not change mid-run.
fn prune_ablation_default() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var_os("VADALOG_NO_PRUNE").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

impl Default for ChaseConfig {
    fn default() -> ChaseConfig {
        ChaseConfig {
            max_rounds: 10_000,
            max_facts: 5_000_000,
            fail_on_violation: false,
            use_positional_index: !scan_ablation_default(),
            join_planning: true,
            semi_naive: true,
            threads: 0,
            guard: RunGuard::default(),
            full_telemetry: true,
            autosave: None,
            metrics: None,
            goal_cone: None,
        }
    }
}

impl ChaseConfig {
    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> ChaseConfig {
        self.threads = threads;
        self
    }

    /// Sets the round limit.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> ChaseConfig {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the fact limit.
    pub fn with_max_facts(mut self, max_facts: usize) -> ChaseConfig {
        self.max_facts = max_facts;
        self
    }

    /// Sets whether a violated constraint aborts the run.
    pub fn with_fail_on_violation(mut self, fail: bool) -> ChaseConfig {
        self.fail_on_violation = fail;
        self
    }

    /// Enables or disables positional-index matching.
    pub fn with_positional_index(mut self, use_index: bool) -> ChaseConfig {
        self.use_positional_index = use_index;
        self
    }

    /// Enables or disables static join planning (composite-index probes
    /// and indexed negation/satisfaction checks). Disabling reverts to
    /// the legacy single-position probe selection.
    pub fn with_join_planning(mut self, join_planning: bool) -> ChaseConfig {
        self.join_planning = join_planning;
        self
    }

    /// Enables or disables semi-naive (delta) evaluation.
    pub fn with_semi_naive(mut self, semi_naive: bool) -> ChaseConfig {
        self.semi_naive = semi_naive;
        self
    }

    /// Sets the run's resource governance (deadline, cancellation,
    /// budgets).
    pub fn with_guard(mut self, guard: RunGuard) -> ChaseConfig {
        self.guard = guard;
        self
    }

    /// Enables or disables full telemetry (timings and the round log;
    /// counters are always on).
    pub fn with_full_telemetry(mut self, full_telemetry: bool) -> ChaseConfig {
        self.full_telemetry = full_telemetry;
        self
    }

    /// Sets the autosave policy: periodic and/or on-trip checkpoint
    /// snapshots of the run (see [`AutosavePolicy`]).
    pub fn with_autosave(mut self, policy: AutosavePolicy) -> ChaseConfig {
        self.autosave = Some(policy);
        self
    }

    /// Directs the run's metrics into `registry` instead of the
    /// process-wide [`crate::obs::metrics::global`] registry.
    pub fn with_metrics(mut self, registry: std::sync::Arc<MetricsRegistry>) -> ChaseConfig {
        self.metrics = Some(registry);
        self
    }

    /// Restricts the run to the relevance cone of `goal`: only rules
    /// that can contribute to deriving `goal` facts — through positive
    /// or negated dependencies, closed over recursion cliques — are
    /// evaluated and indexed. Goal facts, their provenance and their
    /// explanations are bitwise identical to a full run's; facts of
    /// predicates outside the cone are simply never derived. See
    /// [`ChaseConfig::goal_cone`] for the semantics and the
    /// `VADALOG_NO_PRUNE` ablation flip.
    pub fn with_goal_cone(mut self, goal: impl Into<Symbol>) -> ChaseConfig {
        self.goal_cone = Some(goal.into());
        self
    }

    /// The registry this run reports into.
    pub(crate) fn metrics_registry(&self) -> std::sync::Arc<MetricsRegistry> {
        self.metrics
            .clone()
            .unwrap_or_else(|| crate::obs::metrics::global().clone())
    }

    /// The resolved worker count: `threads`, or the host's available
    /// parallelism when `threads == 0`.
    fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// The result of a chase run: the augmented database, the chase graph and
/// run statistics.
///
/// A *partial* outcome — carried by
/// [`ChaseError::ResourceExhausted`] when a
/// [`RunGuard`] budget trips — has exactly the same shape: every
/// completed round's facts and provenance, plus the telemetry
/// [`report`](ChaseOutcome::report) accumulated up to the trip point.
/// [`ChaseSession::resume`] continues it to the very state an
/// uninterrupted run would have produced, bit for bit.
#[derive(Clone, Debug)]
pub struct ChaseOutcome {
    /// The database closed under the program (or its deterministic prefix,
    /// for a partial outcome).
    pub database: Database,
    /// Fact-level provenance of every derivation.
    pub graph: ChaseGraph,
    /// Number of evaluation rounds executed (including the final fixpoint
    /// check).
    pub rounds: usize,
    /// Number of facts added by the chase.
    pub derived_facts: usize,
    /// Labels of violated negative constraints (empty when
    /// `fail_on_violation` is set and the run succeeded).
    pub violations: Vec<String>,
    /// Telemetry of the run: termination, per-rule and per-round counters,
    /// phase timings and peak sizes. Always populated; the timing fields
    /// and the round log stay zero/empty when
    /// [`ChaseConfig::full_telemetry`] is off.
    pub report: RunReport,
    /// Continuation state of an interrupted run, consumed by
    /// [`ChaseSession::resume`]; `None` once fixpoint was reached.
    pub(crate) resume: Option<EngineResume>,
}

impl ChaseOutcome {
    /// Facts of `predicate` in the closed database.
    pub fn facts_of(&self, predicate: &str) -> Vec<(FactId, &Fact)> {
        self.database
            .facts_of(Symbol::new(predicate))
            .iter()
            .map(|&id| (id, self.database.fact(id)))
            .collect()
    }

    /// Looks up a fact id in the closed database.
    pub fn lookup(&self, fact: &Fact) -> Option<FactId> {
        self.database.lookup(fact)
    }

    /// True iff this outcome is the partial state of an interrupted run
    /// (a budget tripped before fixpoint).
    pub fn is_partial(&self) -> bool {
        self.resume.is_some()
    }

    /// An empty, completed outcome; used by tests and error plumbing.
    #[cfg(test)]
    pub(crate) fn empty() -> ChaseOutcome {
        ChaseOutcome {
            database: Database::new(),
            graph: ChaseGraph::new(),
            rounds: 0,
            derived_facts: 0,
            violations: Vec::new(),
            report: RunReport::default(),
            resume: None,
        }
    }
}

/// Continuation state of an interrupted run, carried inside the partial
/// [`ChaseOutcome`] so [`ChaseSession::resume`] picks up at the exact trip
/// point. Round numbering continues across the resume, so the derivation
/// round stamps — and hence the whole provenance — match an uninterrupted
/// run bit for bit.
#[derive(Clone, Debug)]
pub(crate) struct EngineResume {
    /// Per-rule `db.len()` watermarks at the trip.
    pub(crate) last_seen_len: Vec<usize>,
    /// The stratum being evaluated when the budget tripped.
    pub(crate) stratum: usize,
    /// Number of fully committed rounds.
    pub(crate) completed_rounds: u32,
    /// A round interrupted mid-commit, to be finished before the loop
    /// continues.
    pub(crate) pending: Option<PendingRound>,
}

/// A round whose commit phase was interrupted between two rules.
#[derive(Clone, Debug)]
pub(crate) struct PendingRound {
    /// The interrupted round's number.
    pub(crate) round: u32,
    /// First rule index not yet committed.
    pub(crate) next_rule: usize,
    /// Whether any earlier rule of the round committed a fresh fact.
    pub(crate) changed_so_far: bool,
}

/// Outcome of one commit phase.
enum CommitControl {
    /// Every applicable rule committed.
    Completed {
        /// Whether any rule derived a fresh fact.
        changed: bool,
    },
    /// A budget tripped before `next_rule`; all earlier rules committed
    /// canonically.
    Interrupted {
        budget: Budget,
        observed: u64,
        next_rule: usize,
        changed: bool,
    },
}

/// A configured chase over one program: the engine's entry point.
///
/// ```
/// use vadalog::prelude::*;
///
/// let parsed = parse_program(r#"
///     o1: own(x, y, s), s > 0.5 -> control(x, y).
///     own("A", "B", 0.6).
/// "#).unwrap();
/// let db: Database = parsed.facts.into_iter().collect();
/// let out = ChaseSession::new(&parsed.program).run(db).unwrap();
/// assert!(out.database.contains(&Fact::new("control", vec!["A".into(), "B".into()])));
/// ```
///
/// The session borrows the program; configure it fluently and reuse it
/// for several runs or [resumes](ChaseSession::resume).
#[derive(Clone, Debug)]
pub struct ChaseSession<'p> {
    program: &'p Program,
    config: ChaseConfig,
    /// The live outcome maintained by [`ChaseSession::apply_delta`]
    /// (shared with snapshot consumers; see [`ChaseSession::load`]).
    live: Option<std::sync::Arc<ChaseOutcome>>,
}

impl<'p> ChaseSession<'p> {
    /// A session over `program` with the default configuration.
    pub fn new(program: &'p Program) -> ChaseSession<'p> {
        ChaseSession {
            program,
            config: ChaseConfig::default(),
            live: None,
        }
    }

    /// Replaces the whole configuration.
    pub fn with_config(mut self, config: ChaseConfig) -> ChaseSession<'p> {
        self.config = config;
        self
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> ChaseSession<'p> {
        self.config.threads = threads;
        self
    }

    /// Sets the run's resource governance: deadline, cancellation token
    /// and round/fact/memory budgets.
    pub fn with_guard(mut self, guard: RunGuard) -> ChaseSession<'p> {
        self.config.guard = guard;
        self
    }

    /// The session's current configuration.
    pub fn current_config(&self) -> &ChaseConfig {
        &self.config
    }

    /// Atomically writes a checkpoint snapshot of `outcome` to `path`
    /// (temp file → fsync → rename; see [`crate::checkpoint`]).
    ///
    /// Works for completed and partial outcomes alike — checkpointing the
    /// partial carried by [`ChaseError::ResourceExhausted`] or
    /// [`ChaseError::WorkerPanic`] preserves an interrupted run across
    /// process restarts.
    pub fn checkpoint_to(
        &self,
        outcome: &ChaseOutcome,
        path: impl AsRef<Path>,
    ) -> Result<(), CheckpointError> {
        checkpoint::save(path.as_ref(), self.program, &self.config, outcome)
    }

    /// Loads the snapshot at `path` and continues it to fixpoint.
    ///
    /// The snapshot is verified (magic, version, checksum, program+config
    /// fingerprint) before anything is rebuilt; every corruption mode
    /// surfaces as [`ChaseError::Checkpoint`] with a precise
    /// [`CheckpointError`], never a panic. A snapshot of a *completed*
    /// run is returned as-is; a partial one is resumed with
    /// [`ChaseSession::resume`] and reaches a state bitwise identical to
    /// an uninterrupted run, at any thread count. The load/rebuild time
    /// is stamped into the outcome's
    /// [`checkpoint_restore_ns`](crate::telemetry::PhaseTimings::checkpoint_restore_ns).
    pub fn resume_from_path(&self, path: impl AsRef<Path>) -> Result<ChaseOutcome, ChaseError> {
        let t = Instant::now();
        let loaded =
            checkpoint::load(path.as_ref(), self.program, &self.config).map_err(|source| {
                ChaseError::Checkpoint {
                    source,
                    partial: None,
                }
            })?;
        let restore_ns = t.elapsed().as_nanos() as u64;
        if !loaded.is_partial() {
            let mut out = loaded;
            out.report.timings.checkpoint_restore_ns += restore_ns;
            return Ok(out);
        }
        match self.resume(loaded, std::iter::empty()) {
            Ok(mut out) => {
                out.report.timings.checkpoint_restore_ns += restore_ns;
                Ok(out)
            }
            Err(ChaseError::ResourceExhausted {
                budget,
                observed,
                mut partial,
            }) => {
                partial.report.timings.checkpoint_restore_ns += restore_ns;
                Err(ChaseError::ResourceExhausted {
                    budget,
                    observed,
                    partial,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Runs the chase over `database` to fixpoint.
    pub fn run(&self, database: Database) -> Result<ChaseOutcome, ChaseError> {
        Chase::new(self.program, database, self.config.clone()).run()
    }

    /// Continues a previous chase outcome, optionally extended with new
    /// extensional facts, and re-chases to fixpoint, reusing the database
    /// and the chase graph (no recomputation of already-derived knowledge;
    /// new derivations are appended to the provenance).
    ///
    /// Two use cases share this entry point:
    ///
    /// * **Incremental extension** of a *completed* outcome with new
    ///   facts. Restricted to *monotone* programs (a single stratum),
    ///   because this append-only path never revisits conclusions that
    ///   negation would invalidate — such programs return
    ///   [`ChaseError::NonMonotoneExtension`]. For stratified programs —
    ///   and for **retractions**, which this path does not accept at
    ///   all — use [`ChaseSession::apply_delta`]: it re-checks recorded
    ///   derivations against grown negated predicates and runs DRed
    ///   over-delete/re-derive for retracted facts, stratum by stratum,
    ///   with the same bitwise from-scratch-equivalence contract. The
    ///   caveats that remain over there are aggregates and existential
    ///   invention, which fall back to a full re-chase
    ///   ([`DeltaStrategy::FullRechase`]).
    /// * **Continuation** of a *partial* outcome (one carried by
    ///   [`ChaseError::ResourceExhausted`]). Without new facts this
    ///   replays the very evaluation the trip paused, for any program,
    ///   and reaches a final state bitwise identical to an uninterrupted
    ///   run. With new facts, the single-stratum restriction applies.
    pub fn resume(
        &self,
        outcome: ChaseOutcome,
        new_facts: impl IntoIterator<Item = Fact>,
    ) -> Result<ChaseOutcome, ChaseError> {
        let program = self.program;
        let new_facts: Vec<Fact> = new_facts.into_iter().collect();
        if program.stratification().strata > 1
            && (outcome.resume.is_none() || !new_facts.is_empty())
        {
            return Err(ChaseError::NonMonotoneExtension);
        }
        let ChaseOutcome {
            mut database,
            mut graph,
            violations,
            resume,
            ..
        } = outcome;

        // Watermark BEFORE the new facts: semi-naive evaluation then only
        // explores matches touching the extension.
        let watermark = database.len();
        for f in new_facts {
            let (id, fresh) = database.insert(f);
            if fresh {
                graph.mark_extensional(id);
            }
        }

        // Rebuild the engine state from the provenance.
        let mut seen_derivations = HashSet::new();
        let mut null_counter = 0u64;
        let mut agg_current: HashMap<(RuleId, Vec<Value>), FactId> = HashMap::new();
        for der in graph.derivations() {
            seen_derivations.insert((der.rule, der.conclusion, der.premises.clone()));
            let rule = program.rule(der.rule);
            if rule.aggregate.is_some() {
                let group: Vec<Value> = rule
                    .aggregate_group_vars()
                    .iter()
                    .filter_map(|v| der.bindings.get(v).copied())
                    .collect();
                agg_current.insert((der.rule, group), der.conclusion);
            }
        }
        for (_, fact) in database.iter() {
            for v in &fact.values {
                if let Value::Null(n) = v {
                    null_counter = null_counter.max(*n);
                }
            }
        }

        let initial_facts = database.len();
        // For a pure continuation the per-rule watermarks of the trip
        // point are restored, so the replay sees exactly the deltas the
        // interrupted run would have seen; added facts land above every
        // watermark and are therefore always explored.
        let (last_seen_len, resume_from) = match resume {
            Some(state) => (state.last_seen_len.clone(), Some(state)),
            None => (vec![watermark; program.len()], None),
        };
        let metrics = EngineMetrics::new(program, &self.config);
        let plans = join_plans(program, &self.config);
        let postings_at_start = database.postings_built();
        let (cone, pruned_edb_facts) = resolve_cone(program, &self.config, &database);
        let engine = Chase {
            program,
            db: database,
            graph,
            config: self.config.clone(),
            null_counter,
            seen_derivations,
            last_seen_len,
            agg_current,
            violations,
            initial_facts,
            report: RunReport::default(),
            resume_from,
            metrics,
            plans,
            postings_at_start,
            cone,
            pruned_edb_facts,
        };
        // `initial_facts` counts the pre-extension closure plus the new
        // input facts, so `derived_facts` of the result counts only the
        // *newly* derived knowledge.
        engine.run_in_place()
    }
}

/// Matching work below this many outermost candidates is not worth
/// splitting further: one chunk per ~64 candidates, capped per thread.
const CHUNK_TARGET: usize = 64;

/// One unit of work of the parallel match phase.
struct WorkItem<'r> {
    rule_idx: usize,
    rule: &'r Rule,
    plan: &'r JoinPlan,
    chunk: MatchChunk,
}

/// Result of matching one work item: the chunk's matches plus the probe
/// and scan counts the enumeration accumulated.
type ItemResult = Result<(Vec<BodyMatch>, MatchMetrics), EvalError>;

/// Per-item results of [`Chase::execute_items`]; `None` slots were never
/// started (the phase was interrupted and the caller discards them all).
type ItemResults = Vec<Option<ItemResult>>;

/// What [`Chase::execute_items`] hands back: the per-item results, the
/// async budget trip (if one interrupted the phase), and the first
/// worker panic as `(item index, message)`.
type ExecutedItems = (ItemResults, Option<(Budget, u64)>, Option<(usize, String)>);

/// Everything the match phase hands to the run loop: the merged matches
/// and the phase's telemetry.
struct MatchPhaseOutput {
    /// Per-rule merged matches, in canonical chunk order.
    merged: HashMap<usize, Result<Vec<BodyMatch>, EvalError>>,
    /// Per rule: snapshot-phase match metrics and matches enumerated.
    /// Thread-count invariant (chunk-boundary work is attributed to
    /// chunk 0 only).
    rule_metrics: Vec<(usize, MatchMetrics, u64)>,
    /// Total matches buffered after the merge (peak-size telemetry).
    buffered: u64,
    /// Set iff cancellation or the deadline tripped mid-phase; `merged`
    /// is then empty.
    interrupted: Option<(Budget, u64)>,
    /// Set iff a worker panicked mid-phase (rule index and panic
    /// message); `merged` is then empty. When several items panic, the
    /// lowest *observed* item index wins — which items were observed is
    /// scheduling-dependent, the committed state is not.
    panicked: Option<(usize, String)>,
    match_ns: u64,
    merge_ns: u64,
}

impl MatchPhaseOutput {
    fn empty() -> MatchPhaseOutput {
        MatchPhaseOutput {
            merged: HashMap::new(),
            rule_metrics: Vec::new(),
            buffered: 0,
            interrupted: None,
            panicked: None,
            match_ns: 0,
            merge_ns: 0,
        }
    }
}

/// Elapsed nanoseconds of an optional phase timer (0 when telemetry is
/// reduced).
fn lap(timer: Option<Instant>) -> u64 {
    timer.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
}

/// The human-readable message of a caught panic payload (panics carry
/// `&str` or `String` in practice; anything else gets a placeholder).
/// Callers must pass `&*boxed` — `&boxed` would unsize the `Box` itself
/// into the trait object and every downcast would miss.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Pre-resolved metric handles the engine updates during a run.
/// Resolving a handle takes the registry lock once; updating one is a
/// relaxed atomic, cheap enough to stay on unconditionally.
struct EngineMetrics {
    registry: std::sync::Arc<MetricsRegistry>,
    /// Commit latency per rule, indexed like `Program::rules`. Observation
    /// *counts* are deterministic (the commit phase is sequential); bucket
    /// placement is wall-clock.
    rule_commit_ns: Vec<std::sync::Arc<Histogram>>,
    /// Facts committed per completed round.
    commit_batch_facts: std::sync::Arc<Histogram>,
    /// Wall-clock extent per completed round (0 under reduced telemetry).
    round_duration_ns: std::sync::Arc<Histogram>,
}

/// Nanosecond histogram bounds: 10µs .. 10s, decade-spaced.
const NS_BOUNDS: &[u64] = &[
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

impl EngineMetrics {
    fn new(program: &Program, config: &ChaseConfig) -> EngineMetrics {
        let registry = config.metrics_registry();
        let rule_commit_ns = program
            .rules()
            .iter()
            .map(|rule| {
                registry.histogram_with(
                    "vadalog_rule_commit_ns",
                    &[("rule", &rule.label)],
                    NS_BOUNDS,
                    "Commit-phase latency per rule (match top-up, canonicalization and firing), in nanoseconds.",
                )
            })
            .collect();
        let commit_batch_facts = registry.histogram(
            "vadalog_commit_batch_facts",
            &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000],
            "Facts committed per completed chase round.",
        );
        let round_duration_ns = registry.histogram(
            "vadalog_round_duration_ns",
            NS_BOUNDS,
            "Wall-clock extent per completed chase round, in nanoseconds.",
        );
        EngineMetrics {
            registry,
            rule_commit_ns,
            commit_batch_facts,
            round_duration_ns,
        }
    }
}

/// Observes a rule-commit's latency into its histogram when dropped, so
/// every exit path of the commit block (no-match skips included) counts
/// exactly once.
struct LatencyGuard {
    hist: std::sync::Arc<Histogram>,
    timer: Option<Instant>,
}

impl Drop for LatencyGuard {
    fn drop(&mut self) {
        self.hist.observe(lap(self.timer.take()));
    }
}

struct Chase<'p> {
    program: &'p Program,
    db: Database,
    graph: ChaseGraph,
    config: ChaseConfig,
    /// Fresh labelled-null counter.
    null_counter: u64,
    /// Derivation dedup: naive re-evaluation would otherwise re-record
    /// every step each round.
    seen_derivations: HashSet<(RuleId, FactId, Vec<FactId>)>,
    /// db.len() at the last evaluation of each rule; unchanged length
    /// means no new facts can have enabled the rule (the store is
    /// append-only).
    last_seen_len: Vec<usize>,
    /// Latest aggregate fact per (rule, group key): a fuller re-aggregation
    /// supersedes (deactivates) the previous partial fact, so downstream
    /// rules never sum a partial and a full aggregate of the same group.
    agg_current: HashMap<(RuleId, Vec<Value>), FactId>,
    violations: Vec<String>,
    initial_facts: usize,
    /// Telemetry accumulated over this run (fresh per run: a resumed run
    /// reports only its own work).
    report: RunReport,
    /// Trip-point state to continue from, set by [`ChaseSession::resume`].
    resume_from: Option<EngineResume>,
    /// Pre-resolved handles into the run's metrics registry.
    metrics: EngineMetrics,
    /// Static join plans, one per program rule, computed once up front
    /// (composite when `config.join_planning`, legacy otherwise).
    plans: Vec<JoinPlan>,
    /// `db.postings_built()` at construction, so the run reports only the
    /// posting-list entries it built itself.
    postings_at_start: u64,
    /// The resolved relevance cone when goal-directed pruning is active:
    /// rules outside it are never matched, committed or indexed. `None`
    /// when no cone is configured or `VADALOG_NO_PRUNE` disabled pruning
    /// process-wide.
    cone: Option<GoalCone>,
    /// EDB facts whose predicate lies outside the cone — facts the
    /// pruned run exempts from indexing and derivation.
    pruned_edb_facts: u64,
}

/// The per-rule join plans of `program` under `config`.
fn join_plans(program: &Program, config: &ChaseConfig) -> Vec<JoinPlan> {
    program
        .rules()
        .iter()
        .map(|rule| {
            if config.join_planning {
                JoinPlan::for_rule(rule)
            } else {
                JoinPlan::legacy(rule)
            }
        })
        .collect()
}

/// Resolves [`ChaseConfig::goal_cone`] against the program and the EDB:
/// the cone to prune by (unless `VADALOG_NO_PRUNE` disables pruning) plus
/// the number of EDB facts outside it. The count is deterministic — a
/// pure function of the EDB and the program — so the cone metrics stay
/// thread-count invariant like every other engine metric.
fn resolve_cone(program: &Program, config: &ChaseConfig, db: &Database) -> (Option<GoalCone>, u64) {
    let Some(goal) = config.goal_cone else {
        return (None, 0);
    };
    if prune_ablation_default() {
        return (None, 0);
    }
    let cone = GoalCone::compute(program, goal);
    let pruned_facts = db
        .iter()
        .filter(|(_, f)| !cone.contains(f.predicate))
        .count() as u64;
    (Some(cone), pruned_facts)
}

impl<'p> Chase<'p> {
    fn new(program: &'p Program, db: Database, config: ChaseConfig) -> Chase<'p> {
        let mut graph = ChaseGraph::new();
        for (id, _) in db.iter() {
            graph.mark_extensional(id);
        }
        let initial_facts = db.len();
        let metrics = EngineMetrics::new(program, &config);
        let plans = join_plans(program, &config);
        let postings_at_start = db.postings_built();
        let (cone, pruned_edb_facts) = resolve_cone(program, &config, &db);
        Chase {
            program,
            db,
            graph,
            config,
            null_counter: 0,
            seen_derivations: HashSet::new(),
            last_seen_len: vec![usize::MAX; program.len()],
            agg_current: HashMap::new(),
            violations: Vec::new(),
            initial_facts,
            report: RunReport::default(),
            resume_from: None,
            metrics,
            plans,
            postings_at_start,
            cone,
            pruned_edb_facts,
        }
    }

    fn run(self) -> Result<ChaseOutcome, ChaseError> {
        self.run_in_place()
    }

    fn run_in_place(mut self) -> Result<ChaseOutcome, ChaseError> {
        let start = Instant::now();
        let armed = ArmedGuard::arm(
            &self.config.guard,
            start,
            self.config.max_rounds,
            self.config.max_facts,
        );
        let threads = self.config.effective_threads();
        let strata = self.program.stratification().strata;
        let _run_span = crate::span!("chase.run", strata = strata, threads = threads);

        // Build exactly the planned composite indexes before the first
        // parallel phase: a cold index must never be constructed while the
        // store is shared read-only across matching workers. The plans
        // cover positive-atom probes plus — under join planning — the
        // negated-atom and head-satisfaction signatures, so those checks
        // probe instead of scanning.
        let t = self.timer();
        if self.config.use_positional_index {
            // Under goal-directed pruning only cone rules are indexed:
            // predicates outside the cone stay scan-only dead weight the
            // run never touches.
            for (idx, (rule, plan)) in self.program.rules().iter().zip(&self.plans).enumerate() {
                if !self.rule_in_cone(idx) {
                    continue;
                }
                for (pred, sig) in plan.required_composite_indexes(rule) {
                    self.db.ensure_composite_index(pred, &sig);
                }
            }
        }
        self.report.timings.index_build_ns += lap(t);

        self.report.threads = threads;
        self.report.strata = strata as u32;
        self.report.rules = self
            .program
            .rules()
            .iter()
            .map(|rule| RuleStats {
                label: rule.label.clone(),
                ..RuleStats::default()
            })
            .collect();

        let (first_stratum, mut round, mut pending) = match self.resume_from.take() {
            Some(state) => (state.stratum, state.completed_rounds, state.pending),
            None => (0, 0, None),
        };

        // Strata are evaluated bottom-up: a negated atom is only checked
        // once its predicate's stratum has reached fixpoint, giving the
        // standard perfect-model semantics for stratified negation.
        for stratum in first_stratum..strata {
            let _stratum_span = crate::span!("chase.stratum", stratum = stratum);
            // Completion pass: finish a round that a previous run left
            // interrupted mid-commit, starting at the rule the trip
            // stopped before. Its matches are re-derived from each rule's
            // restored watermark, which (after canonicalization) is
            // exactly the snapshot-phase ∪ top-up set the uninterrupted
            // round would have committed.
            if let Some(p) = pending.take() {
                let round_t = self.timer();
                let facts_before = self.db.len();
                let matches_before = self.report.total_matches();
                let t = self.timer();
                let control = self.commit_phase(
                    stratum,
                    0,
                    HashMap::new(),
                    p.round,
                    p.next_rule,
                    true,
                    &armed,
                )?;
                self.report.timings.commit_ns += lap(t);
                match control {
                    CommitControl::Interrupted {
                        budget,
                        observed,
                        next_rule,
                        changed,
                    } => {
                        let still_pending = PendingRound {
                            round: p.round,
                            next_rule,
                            changed_so_far: p.changed_so_far || changed,
                        };
                        return self.exhausted(
                            budget,
                            observed,
                            stratum,
                            p.round - 1,
                            Some(still_pending),
                            start,
                        );
                    }
                    CommitControl::Completed { changed } => {
                        round = p.round;
                        self.log_round(p.round, stratum, matches_before, facts_before, round_t);
                        if !(changed || p.changed_so_far) {
                            // The interrupted round was the fixpoint check.
                            continue;
                        }
                    }
                }
            }
            loop {
                // Round boundary: the one place every budget is checked.
                // A run that reaches fixpoint in the same round it
                // exhausts a budget completes — trips only pre-empt
                // *further* work, deterministically.
                if let Some((budget, observed)) = armed.trip(
                    u64::from(round) + 1,
                    self.db.len() as u64,
                    self.memory_bytes(),
                ) {
                    return self.exhausted(budget, observed, stratum, round, None, start);
                }
                faultpoint::trigger("chase.round");
                round += 1;
                let _round_span = crate::span!("chase.round", round = round);
                let round_t = self.timer();
                let snapshot_len = self.db.len();
                let matches_before = self.report.total_matches();
                // Phase 1: enumerate every applicable rule's matches
                // against the round-start snapshot, in parallel.
                let phase = if self.config.use_positional_index {
                    self.match_phase(stratum, snapshot_len, threads, &armed)
                } else {
                    MatchPhaseOutput::empty()
                };
                self.report.timings.match_ns += phase.match_ns;
                self.report.timings.merge_ns += phase.merge_ns;
                for (idx, metrics, enumerated) in &phase.rule_metrics {
                    let stats = &mut self.report.rules[*idx];
                    stats.index_probes += metrics.index_probes;
                    stats.scans += metrics.scans;
                    stats.composite_probes += metrics.composite_probes;
                    stats.negation_probes += metrics.negation_probes;
                    stats.negation_scans += metrics.negation_scans;
                    stats.matches_enumerated += enumerated;
                }
                self.report.peak.match_buffer = self.report.peak.match_buffer.max(phase.buffered);
                if let Some((budget, observed)) = phase.interrupted {
                    // The phase is read-only, so nothing was committed:
                    // the round never started.
                    return self.exhausted(budget, observed, stratum, round - 1, None, start);
                }
                if let Some((rule_idx, message)) = phase.panicked {
                    // Same reasoning: the panicked phase committed
                    // nothing, so the state is the last completed round.
                    return self.worker_panicked(rule_idx, message, stratum, round - 1, start);
                }
                // Phase 2: commit in rule-id order, topping up each rule
                // with the matches enabled by this round's earlier rules.
                let t = self.timer();
                let control = self.commit_phase(
                    stratum,
                    snapshot_len,
                    phase.merged,
                    round,
                    0,
                    false,
                    &armed,
                )?;
                self.report.timings.commit_ns += lap(t);
                match control {
                    CommitControl::Interrupted {
                        budget,
                        observed,
                        next_rule,
                        changed,
                    } => {
                        let pending = PendingRound {
                            round,
                            next_rule,
                            changed_so_far: changed,
                        };
                        return self.exhausted(
                            budget,
                            observed,
                            stratum,
                            round - 1,
                            Some(pending),
                            start,
                        );
                    }
                    CommitControl::Completed { changed } => {
                        self.log_round(round, stratum, matches_before, snapshot_len, round_t);
                        if let Some(policy) = self.autosave_due(round, changed) {
                            if let Err(source) = self.autosave_now(&policy, stratum, round) {
                                return Err(self.checkpoint_failed(source, stratum, round, start));
                            }
                        }
                        if !changed {
                            break;
                        }
                    }
                }
            }
        }
        Ok(self.finish(Termination::Completed, round, start, None))
    }

    /// A phase timer: `Some(now)` under full telemetry, else `None` (no
    /// clock read at all).
    fn timer(&self) -> Option<Instant> {
        self.config.full_telemetry.then(Instant::now)
    }

    /// The governed memory observation: the deterministic O(1) running
    /// estimates of the fact store and the chase graph.
    fn memory_bytes(&self) -> u64 {
        (self.db.approx_bytes() + self.graph.approx_bytes()) as u64
    }

    /// Appends one round to the report's round log (full telemetry only).
    fn log_round(
        &mut self,
        round: u32,
        stratum: usize,
        matches_before: u64,
        facts_before: usize,
        round_t: Option<Instant>,
    ) {
        let facts_end = self.db.len();
        // Round histograms are always on: their observation counts derive
        // from the deterministic round structure. The duration value is 0
        // under reduced telemetry (no clock was read).
        self.metrics
            .commit_batch_facts
            .observe((facts_end - facts_before) as u64);
        self.metrics.round_duration_ns.observe(lap(round_t));
        if !self.config.full_telemetry {
            return;
        }
        self.report.rounds_log.push(RoundStats {
            round,
            stratum: stratum as u32,
            matches: self.report.total_matches() - matches_before,
            facts_committed: (facts_end - facts_before) as u64,
            facts_end: facts_end as u64,
            duration_ns: lap(round_t),
        });
    }

    /// Seals a budget trip: packages the deterministic partial outcome
    /// (with its continuation state) into
    /// [`ChaseError::ResourceExhausted`]. With an on-trip autosave policy
    /// the partial is also snapshotted to disk first.
    fn exhausted(
        self,
        budget: Budget,
        observed: u64,
        stratum: usize,
        completed_rounds: u32,
        pending: Option<PendingRound>,
        start: Instant,
    ) -> Result<ChaseOutcome, ChaseError> {
        let resume = EngineResume {
            last_seen_len: self.last_seen_len.clone(),
            stratum,
            completed_rounds,
            pending,
        };
        let program = self.program;
        let config = self.config.clone();
        let partial = self.finish(
            Termination::Exhausted { budget, observed },
            completed_rounds,
            start,
            Some(resume),
        );
        let partial = Self::trip_save(program, &config, partial)?;
        Err(ChaseError::ResourceExhausted {
            budget,
            observed,
            partial: Box::new(partial),
        })
    }

    /// Seals a worker panic (already isolated by [`Chase::execute_items`])
    /// into [`ChaseError::WorkerPanic`] carrying the deterministic state
    /// of the last completed round, resumable like any budget trip.
    fn worker_panicked(
        self,
        rule_idx: usize,
        message: String,
        stratum: usize,
        completed_rounds: u32,
        start: Instant,
    ) -> Result<ChaseOutcome, ChaseError> {
        let rule = self.program.rule(RuleId(rule_idx)).label.clone();
        let resume = EngineResume {
            last_seen_len: self.last_seen_len.clone(),
            stratum,
            completed_rounds,
            pending: None,
        };
        let program = self.program;
        let config = self.config.clone();
        let partial = self.finish(
            Termination::Panicked { rule: rule.clone() },
            completed_rounds,
            start,
            Some(resume),
        );
        let partial = Self::trip_save(program, &config, partial)?;
        Err(ChaseError::WorkerPanic {
            rule,
            message,
            partial: Box::new(partial),
        })
    }

    /// The autosave policy due after completing `round`, if any. Periodic
    /// saves fire every `every_rounds` completed rounds while the run is
    /// still making progress (the final fixpoint check is not worth a
    /// snapshot: the completed outcome follows immediately).
    fn autosave_due(&self, round: u32, changed: bool) -> Option<AutosavePolicy> {
        let policy = self.config.autosave.as_ref()?;
        (changed && policy.every_rounds > 0 && round.is_multiple_of(policy.every_rounds))
            .then(|| policy.clone())
    }

    /// Writes a periodic autosave snapshot of the run as of completed
    /// round `round`: the continuation cursor is a clean round boundary
    /// (no pending commit), exactly the state a budget trip at the next
    /// round top would produce.
    fn autosave_now(
        &mut self,
        policy: &AutosavePolicy,
        stratum: usize,
        round: u32,
    ) -> Result<(), CheckpointError> {
        let t = self.timer();
        self.report.autosaves += 1;
        let mut report = self.report.clone();
        report.rounds = round;
        report.termination = Termination::Suspended;
        report.peak.facts = self.db.len() as u64;
        report.peak.derivations = self.graph.derivations().len() as u64;
        report.peak.approx_bytes = self.memory_bytes();
        let resume = EngineResume {
            last_seen_len: self.last_seen_len.clone(),
            stratum,
            completed_rounds: round,
            pending: None,
        };
        let result = checkpoint::save_parts(
            &policy.path,
            checkpoint::fingerprint(self.program, &self.config),
            &SnapshotParts {
                db: &self.db,
                graph: &self.graph,
                rounds: u64::from(round),
                derived_facts: (self.db.len() - self.initial_facts) as u64,
                violations: &self.violations,
                report: &report,
                resume: Some(&resume),
            },
            &self.metrics.registry,
        );
        self.report.timings.checkpoint_save_ns += lap(t);
        if result.is_err() {
            self.report.autosaves -= 1;
        }
        result
    }

    /// Seals a failed autosave: the run stops (so the caller learns about
    /// the failing disk *now*, not after hours more work), but the
    /// deterministic partial outcome is carried in the error and stays
    /// resumable in memory.
    fn checkpoint_failed(
        self,
        source: CheckpointError,
        stratum: usize,
        round: u32,
        start: Instant,
    ) -> ChaseError {
        let resume = EngineResume {
            last_seen_len: self.last_seen_len.clone(),
            stratum,
            completed_rounds: round,
            pending: None,
        };
        let partial = self.finish(Termination::Suspended, round, start, Some(resume));
        ChaseError::Checkpoint {
            source,
            partial: Some(Box::new(partial)),
        }
    }

    /// On-trip autosave: snapshots `partial` to the policy path (when one
    /// is configured with `on_guard_trip`), stamping the save time and
    /// count into the partial's report. A failed save turns into
    /// [`ChaseError::Checkpoint`] still carrying the partial.
    fn trip_save(
        program: &Program,
        config: &ChaseConfig,
        mut partial: ChaseOutcome,
    ) -> Result<ChaseOutcome, ChaseError> {
        let Some(policy) = config.autosave.as_ref().filter(|p| p.on_guard_trip) else {
            return Ok(partial);
        };
        partial.report.autosaves += 1;
        let t = config.full_telemetry.then(Instant::now);
        let result = checkpoint::save(&policy.path, program, config, &partial);
        partial.report.timings.checkpoint_save_ns += lap(t);
        match result {
            Ok(()) => Ok(partial),
            Err(source) => {
                partial.report.autosaves -= 1;
                Err(ChaseError::Checkpoint {
                    source,
                    partial: Some(Box::new(partial)),
                })
            }
        }
    }

    /// Seals the run into its outcome, stamping the report's termination,
    /// peaks and total time.
    fn finish(
        mut self,
        termination: Termination,
        rounds: u32,
        start: Instant,
        resume: Option<EngineResume>,
    ) -> ChaseOutcome {
        self.report.termination = termination;
        self.report.rounds = rounds;
        self.report.peak.facts = self.db.len() as u64;
        self.report.peak.derivations = self.graph.derivations().len() as u64;
        self.report.peak.approx_bytes = self.memory_bytes();
        if self.config.full_telemetry {
            self.report.timings.total_ns = start.elapsed().as_nanos() as u64;
        }
        self.flush_metrics();
        ChaseOutcome {
            derived_facts: self.db.len() - self.initial_facts,
            database: self.db,
            graph: self.graph,
            rounds: rounds as usize,
            violations: self.violations,
            report: self.report,
            resume,
        }
    }

    /// Flushes the sealed report's counters into the run's metrics
    /// registry. Every value here comes from the deterministic run
    /// telemetry, so registry counts are bitwise identical at any
    /// worker-thread count.
    fn flush_metrics(&self) {
        let registry = &self.metrics.registry;
        let status = match &self.report.termination {
            Termination::Completed => "completed",
            Termination::Exhausted { .. } => "exhausted",
            Termination::Suspended => "suspended",
            Termination::Panicked { .. } => "panicked",
        };
        registry
            .counter_with(
                "vadalog_chase_runs_total",
                &[("status", status)],
                "Chase runs sealed, by termination status.",
            )
            .inc();
        registry
            .counter(
                "vadalog_chase_rounds_total",
                "Chase rounds completed across runs.",
            )
            .add(u64::from(self.report.rounds));
        registry
            .counter(
                "vadalog_chase_matches_total",
                "Body matches enumerated across runs.",
            )
            .add(self.report.total_matches());
        registry
            .counter(
                "vadalog_chase_facts_derived_total",
                "Facts derived (beyond the EDB) across runs.",
            )
            .add((self.db.len() - self.initial_facts) as u64);
        let mut probes = 0;
        let mut scans = 0;
        let mut composite = 0;
        let mut neg_probes = 0;
        let mut neg_scans = 0;
        let mut sat_probes = 0;
        let mut sat_scans = 0;
        let mut duplicates = 0;
        for rule in &self.report.rules {
            probes += rule.index_probes;
            scans += rule.scans;
            composite += rule.composite_probes;
            neg_probes += rule.negation_probes;
            neg_scans += rule.negation_scans;
            sat_probes += rule.satisfaction_probes;
            sat_scans += rule.satisfaction_scans;
            duplicates += rule.duplicates_preempted;
        }
        registry
            .counter(
                "vadalog_index_probes_total",
                "Positional-index probes during matching (vs vadalog_index_scans_total: the probe/scan ratio).",
            )
            .add(probes);
        registry
            .counter(
                "vadalog_index_scans_total",
                "Full-predicate scans during matching.",
            )
            .add(scans);
        registry
            .counter(
                "vadalog_composite_probes_total",
                "Multi-position composite-index probes during matching (subset of vadalog_index_probes_total).",
            )
            .add(composite);
        registry
            .counter(
                "vadalog_negation_probes_total",
                "Negated-atom checks answered by an index probe.",
            )
            .add(neg_probes);
        registry
            .counter(
                "vadalog_negation_scans_total",
                "Negated-atom checks answered by a full-predicate scan.",
            )
            .add(neg_scans);
        registry
            .counter(
                "vadalog_satisfaction_probes_total",
                "Restricted-chase head-satisfaction checks answered by an index probe.",
            )
            .add(sat_probes);
        registry
            .counter(
                "vadalog_satisfaction_scans_total",
                "Restricted-chase head-satisfaction checks answered by a full-predicate scan.",
            )
            .add(sat_scans);
        registry
            .counter(
                "vadalog_index_postings_total",
                "Index posting-list entries built (eager builds plus incremental inserts).",
            )
            .add(self.db.postings_built() - self.postings_at_start);
        registry
            .counter(
                "vadalog_duplicates_preempted_total",
                "Chase steps preempted because the fact already existed.",
            )
            .add(duplicates);
        registry
            .counter(
                "vadalog_autosaves_total",
                "Autosave checkpoints written by the engine.",
            )
            .add(self.report.autosaves);
        if let Termination::Exhausted { budget, .. } = &self.report.termination {
            registry
                .counter_with(
                    "vadalog_guard_trips_total",
                    &[("budget", budget.kind())],
                    "Resource-guard trips, by exhausted budget.",
                )
                .inc();
        }
        if let Termination::Panicked { rule } = &self.report.termination {
            registry
                .counter_with(
                    "vadalog_worker_panics_total",
                    &[("rule", rule)],
                    "Match-phase worker panics isolated by the engine, by rule.",
                )
                .inc();
        }
        registry
            .gauge(
                "vadalog_peak_facts",
                "Largest fact store observed at the end of any run.",
            )
            .set_max(self.report.peak.facts);
        if let Some(cone) = &self.cone {
            registry
                .gauge(
                    "vadalog_cone_size",
                    "Predicates in the goal cone of the latest pruned run.",
                )
                .set(cone.predicate_count() as u64);
            registry
                .counter(
                    "vadalog_cone_pruned_rules_total",
                    "Rules excluded from evaluation by goal-directed pruning, across runs.",
                )
                .add(cone.pruned_rule_count() as u64);
            registry
                .counter(
                    "vadalog_cone_pruned_facts_total",
                    "EDB facts outside the goal cone (exempt from indexing and derivation), across pruned runs.",
                )
                .add(self.pruned_edb_facts);
        }
    }

    /// True iff rule `idx` participates in this run: always, unless
    /// goal-directed pruning is active and the rule falls outside the
    /// goal's relevance cone.
    fn rule_in_cone(&self, idx: usize) -> bool {
        self.cone
            .as_ref()
            .is_none_or(|cone| cone.includes_rule(RuleId(idx)))
    }

    /// True iff `rule` is matched semi-naively (delta expansion per pivot)
    /// at its current watermark.
    fn is_incremental(&self, rule: &Rule, watermark: usize) -> bool {
        self.config.semi_naive
            && self.config.use_positional_index
            && watermark != usize::MAX
            && !rule.has_aggregate()
            && !rule.is_constraint()
    }

    /// The parallel match phase: enumerates the body matches of every
    /// applicable rule of `stratum` against the snapshot, returning the
    /// merged per-rule results plus the phase's telemetry. Read-only on
    /// the database; executed inline when a single worker suffices.
    ///
    /// Cancellation and deadline are polled at chunk boundaries; on a
    /// trip the phase's (partial) results are discarded wholesale, so an
    /// interruption can never perturb the determinism of committed
    /// rounds.
    fn match_phase(
        &self,
        stratum: usize,
        snapshot_len: usize,
        threads: usize,
        armed: &ArmedGuard,
    ) -> MatchPhaseOutput {
        let mut items: Vec<WorkItem<'_>> = Vec::new();
        for (idx, rule) in self.program.rules().iter().enumerate() {
            if self.program.rule_stratum(RuleId(idx)) != stratum || !self.rule_in_cone(idx) {
                continue;
            }
            let watermark = self.last_seen_len[idx];
            if watermark == snapshot_len {
                // Nothing new since the rule's last evaluation; matches
                // enabled by *this* round's commits are found by the
                // commit-phase top-up instead.
                continue;
            }
            let parts = self.parts_for(rule, threads);
            if self.is_incremental(rule, watermark) {
                let n_atoms = rule.positive_body().count();
                for pivot in 0..n_atoms {
                    for part in 0..parts {
                        items.push(WorkItem {
                            rule_idx: idx,
                            rule,
                            plan: &self.plans[idx],
                            chunk: MatchChunk {
                                pivot: Some((pivot, watermark as u32)),
                                part,
                                parts,
                                use_index: true,
                            },
                        });
                    }
                }
            } else {
                for part in 0..parts {
                    items.push(WorkItem {
                        rule_idx: idx,
                        rule,
                        plan: &self.plans[idx],
                        chunk: MatchChunk {
                            pivot: None,
                            part,
                            parts,
                            use_index: true,
                        },
                    });
                }
            }
        }

        let t = self.timer();
        let (results, interrupted, panicked) = self.execute_items(&items, threads, armed);
        let match_ns = lap(t);
        if let Some((budget, observed)) = interrupted {
            return MatchPhaseOutput {
                interrupted: Some((budget, observed)),
                match_ns,
                ..MatchPhaseOutput::empty()
            };
        }
        if let Some((item_idx, message)) = panicked {
            return MatchPhaseOutput {
                panicked: Some((items[item_idx].rule_idx, message)),
                match_ns,
                ..MatchPhaseOutput::empty()
            };
        }

        // Merge per rule, in item order: chunk concatenation restores the
        // sequential enumeration; the commit phase canonicalizes further.
        let t = self.timer();
        let mut merged: HashMap<usize, Result<Vec<BodyMatch>, EvalError>> = HashMap::new();
        let mut per_rule: HashMap<usize, (MatchMetrics, u64)> = HashMap::new();
        for (item, result) in items.iter().zip(results) {
            let result = result.expect("uninterrupted phase fills every slot");
            let slot = merged
                .entry(item.rule_idx)
                .or_insert_with(|| Ok(Vec::new()));
            match result {
                Ok((ms, metrics)) => {
                    let entry = per_rule.entry(item.rule_idx).or_default();
                    entry.0.merge(&metrics);
                    entry.1 += ms.len() as u64;
                    if let Ok(acc) = slot {
                        acc.extend(ms);
                    }
                }
                // Keep the first error, in item order.
                Err(e) => {
                    if slot.is_ok() {
                        *slot = Err(e);
                    }
                }
            }
        }
        let buffered = merged
            .values()
            .map(|r| r.as_ref().map(|v| v.len() as u64).unwrap_or(0))
            .sum();
        let mut rule_metrics: Vec<(usize, MatchMetrics, u64)> = per_rule
            .into_iter()
            .map(|(idx, (metrics, enumerated))| (idx, metrics, enumerated))
            .collect();
        rule_metrics.sort_by_key(|&(idx, _, _)| idx);
        MatchPhaseOutput {
            merged,
            rule_metrics,
            buffered,
            interrupted: None,
            panicked: None,
            match_ns,
            merge_ns: lap(t),
        }
    }

    /// Runs the work items, spreading them over up to `threads` workers.
    /// Results are slotted by item index, so scheduling cannot influence
    /// anything downstream. When the armed guard carries a cancellation
    /// token or a deadline, every worker polls it before taking the next
    /// chunk and the phase stops early with the trip; the partially
    /// filled slots are then discarded by the caller.
    ///
    /// Worker panics are isolated (`catch_unwind`, in the inline path
    /// too, so isolation is thread-count invariant): the phase stops and
    /// reports the lowest observed panicking item, which the run loop
    /// seals into [`ChaseError::WorkerPanic`]. The one exception is the
    /// [`faultpoint::FaultCrash`] payload of an injected crash, which is
    /// deliberately re-raised: a simulated process death must kill the
    /// run, not be absorbed by the isolation it is testing.
    fn execute_items(
        &self,
        items: &[WorkItem<'_>],
        threads: usize,
        armed: &ArmedGuard,
    ) -> ExecutedItems {
        let check = armed.has_async_trips();
        let workers = threads.min(items.len());
        let run_item = |item: &WorkItem<'_>| -> Result<ItemResult, Box<dyn std::any::Any + Send>> {
            panic::catch_unwind(AssertUnwindSafe(|| {
                faultpoint::trigger("chase.match_chunk");
                let mut metrics = MatchMetrics::default();
                match_chunk_planned(&self.db, item.rule, item.plan, &item.chunk, &mut metrics)
                    .map(|ms| (ms, metrics))
            }))
            .map_err(|payload| {
                if payload.downcast_ref::<faultpoint::FaultCrash>().is_some() {
                    panic::resume_unwind(payload);
                }
                payload
            })
        };
        if workers <= 1 {
            let mut out: ItemResults = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                if check {
                    if let Some(trip) = armed.interrupted() {
                        return (out, Some(trip), None);
                    }
                }
                match run_item(item) {
                    Ok(result) => out.push(Some(result)),
                    Err(payload) => {
                        return (out, None, Some((i, panic_message(&*payload))));
                    }
                }
            }
            return (out, None, None);
        }
        let slots: Vec<OnceLock<ItemResult>> = items.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let trip: OnceLock<(Budget, u64)> = OnceLock::new();
        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if check {
                        if let Some(t) = armed.interrupted() {
                            let _ = trip.set(t);
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    match run_item(item) {
                        Ok(result) => {
                            let _ = slots[i].set(result);
                        }
                        Err(payload) => {
                            panics
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push((i, panic_message(&*payload)));
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
        let interrupted = trip.get().copied();
        let panicked = {
            let mut observed = panics
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            observed.sort_by_key(|&(i, _)| i);
            observed.into_iter().next()
        };
        (
            slots.into_iter().map(OnceLock::into_inner).collect(),
            interrupted,
            panicked,
        )
    }

    /// Number of outermost-loop slices for one rule's matching work: one
    /// per ~[`CHUNK_TARGET`] candidates, capped at a few chunks per
    /// worker. Any value yields the same output; this only shapes load
    /// balance.
    fn parts_for(&self, rule: &Rule, threads: usize) -> usize {
        if threads <= 1 {
            return 1;
        }
        let first = rule
            .positive_body()
            .next()
            .map(|atom| self.db.active_count(atom.predicate))
            .unwrap_or(0);
        (first / CHUNK_TARGET).clamp(1, threads * 4)
    }

    /// The sequential commit phase of one round. Processes the stratum's
    /// rules in rule-id order starting at `from_rule`; for each, unions
    /// the snapshot-phase matches with a top-up delta over facts committed
    /// earlier in this round, canonicalizes, and fires.
    ///
    /// Budgets are checked *between* rule commits: a trip returns
    /// [`CommitControl::Interrupted`] with the first uncommitted rule, so
    /// the prefix already committed is exactly the canonical prefix of an
    /// uninterrupted round. In `completion` mode (resuming such a trip)
    /// no snapshot phase ran, so each rule re-derives the full match set
    /// this round would have seen: the semi-naive delta from the rule's
    /// own restored watermark, or — for aggregate/naive rules, whose
    /// firing folds over *all* contributors — a full re-match.
    #[allow(clippy::too_many_arguments)]
    fn commit_phase(
        &mut self,
        stratum: usize,
        snapshot_len: usize,
        mut phase_matches: HashMap<usize, Result<Vec<BodyMatch>, EvalError>>,
        round: u32,
        from_rule: usize,
        completion: bool,
        armed: &ArmedGuard,
    ) -> Result<CommitControl, ChaseError> {
        let mut changed = false;
        for (idx, rule) in self.program.rules().iter().enumerate().skip(from_rule) {
            let rule_id = RuleId(idx);
            if self.program.rule_stratum(rule_id) != stratum || !self.rule_in_cone(idx) {
                continue;
            }
            if let Some((budget, observed)) =
                armed.trip(u64::from(round), self.db.len() as u64, self.memory_bytes())
            {
                return Ok(CommitControl::Interrupted {
                    budget,
                    observed,
                    next_rule: idx,
                    changed,
                });
            }
            faultpoint::trigger("chase.commit_rule");
            let watermark = self.last_seen_len[idx];
            let current_len = self.db.len();
            if watermark == current_len {
                continue; // nothing new since last evaluation
            }
            let _rule_span = crate::span!("chase.rule", rule = &rule.label, stratum = stratum);
            let _rule_latency = LatencyGuard {
                hist: self.metrics.rule_commit_ns[idx].clone(),
                timer: self.timer(),
            };
            let eval_err = |source| ChaseError::Eval {
                rule: rule.label.clone(),
                source,
            };
            let mut metrics = MatchMetrics::default();
            let mut matches = match phase_matches.remove(&idx) {
                Some(result) => result.map_err(eval_err)?,
                None => Vec::new(),
            };
            let phase_count = matches.len();
            if completion {
                matches = if self.is_incremental(rule, watermark) {
                    match_body_incremental_planned(
                        &mut self.db,
                        rule,
                        &self.plans[idx],
                        watermark as u32,
                        &mut metrics,
                    )
                } else {
                    match_body_planned(
                        &mut self.db,
                        rule,
                        &self.plans[idx],
                        self.config.use_positional_index,
                        &mut metrics,
                    )
                }
                .map_err(eval_err)?;
            } else if self.config.use_positional_index {
                // Top-up: matches touching facts committed by lower-id
                // rules earlier in this round (ids >= the snapshot). This
                // restores sequential intra-round visibility; it is empty
                // whenever no earlier rule fired.
                let topup_from = if watermark == usize::MAX {
                    snapshot_len
                } else {
                    watermark.max(snapshot_len)
                };
                if current_len > topup_from {
                    matches.extend(
                        match_body_incremental_planned(
                            &mut self.db,
                            rule,
                            &self.plans[idx],
                            topup_from as u32,
                            &mut metrics,
                        )
                        .map_err(eval_err)?,
                    );
                }
            } else {
                // Index-free ablation baseline: plain sequential
                // re-matching at the rule's turn, as in the original
                // engine.
                matches = match_body_with_metered(&mut self.db, rule, false, &mut metrics)
                    .map_err(eval_err)?;
            }
            {
                // Snapshot-phase matches were already counted at merge
                // time; attribute only what this phase added (completion
                // and ablation replace the — empty — phase set outright).
                let newly_enumerated = matches.len().saturating_sub(if completion {
                    0
                } else if self.config.use_positional_index {
                    phase_count
                } else {
                    0
                }) as u64;
                let stats = &mut self.report.rules[idx];
                stats.index_probes += metrics.index_probes;
                stats.scans += metrics.scans;
                stats.composite_probes += metrics.composite_probes;
                stats.negation_probes += metrics.negation_probes;
                stats.negation_scans += metrics.negation_scans;
                stats.matches_enumerated += newly_enumerated;
            }
            self.last_seen_len[idx] = current_len;
            if matches.is_empty() {
                continue;
            }

            // Canonicalize: drop matches over facts superseded by an
            // earlier commit of this round, order by premise-id vector
            // (for full enumerations this is already the join order) and
            // dedup across semi-naive pivots and the top-up.
            matches.retain(|m| m.premises.iter().all(|&p| self.db.is_active(p)));
            matches.sort_by(|a, b| a.premises.cmp(&b.premises));
            matches.dedup_by(|a, b| a.premises == b.premises);
            if matches.is_empty() {
                continue;
            }

            changed |= self.apply_matches(rule_id, rule, matches, round)?;
        }
        Ok(CommitControl::Completed { changed })
    }

    /// Commits one rule's canonicalized matches: constraint handling,
    /// aggregate grouping, then one chase step per match/group. Returns
    /// true if any new fact was added.
    fn apply_matches(
        &mut self,
        rule_id: RuleId,
        rule: &Rule,
        matches: Vec<BodyMatch>,
        round: u32,
    ) -> Result<bool, ChaseError> {
        if rule.is_constraint() {
            if !self.violations.iter().any(|l| l == &rule.label) {
                self.violations.push(rule.label.clone());
            }
            if self.config.fail_on_violation {
                return Err(ChaseError::ConstraintViolated {
                    rule: rule.label.clone(),
                });
            }
            return Ok(false);
        }

        let mut changed = false;
        if rule.aggregate.is_some() {
            let t = self.timer();
            let groups = group_matches(rule, &matches).map_err(|source| ChaseError::Eval {
                rule: rule.label.clone(),
                source,
            })?;
            self.report.timings.aggregate_ns += lap(t);
            for group in groups {
                changed |= self
                    .fire(
                        rule_id,
                        rule,
                        &group.bindings,
                        group.premises,
                        group.contributor_bindings,
                        round,
                    )
                    .map_err(|source| ChaseError::Eval {
                        rule: rule.label.clone(),
                        source,
                    })?;
            }
        } else {
            for m in &matches {
                changed |= self
                    .fire(
                        rule_id,
                        rule,
                        &m.bindings,
                        m.premises.clone(),
                        Vec::new(),
                        round,
                    )
                    .map_err(|source| ChaseError::Eval {
                        rule: rule.label.clone(),
                        source,
                    })?;
            }
        }
        Ok(changed)
    }

    /// Fires one chase step: instantiates the head, handles existentials
    /// with the restricted-chase satisfaction check, inserts the fact and
    /// records the derivation.
    fn fire(
        &mut self,
        rule_id: RuleId,
        rule: &Rule,
        bindings: &Bindings,
        premises: Vec<FactId>,
        contributor_bindings: Vec<Bindings>,
        round: u32,
    ) -> Result<bool, EvalError> {
        let Head::Atom(head) = &rule.head else {
            return Ok(false);
        };
        self.report.rules[rule_id.0].firings += 1;

        let existentials: HashSet<Symbol> = rule.existential_variables().into_iter().collect();

        if !existentials.is_empty() {
            // Restricted chase: skip the step if the head is already
            // satisfied by an existing fact (existential positions are
            // wildcards, consistently per variable).
            let pattern: Vec<Option<Value>> = head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(v) => Some(*v),
                    Term::Var(v) if existentials.contains(v) => None,
                    Term::Var(v) => bindings.get(v).copied(),
                })
                .collect();
            self.report.rules[rule_id.0].isomorphism_checks += 1;
            // Under join planning the head-signature index was built
            // eagerly, so this is a hash probe; the scan path remains for
            // the ablation baseline and for unplanned (all-existential)
            // heads.
            let (hit, probed) = if self.config.use_positional_index {
                self.db.find_matching_metered(head.predicate, &pattern)
            } else {
                (self.db.find_matching_scan(head.predicate, &pattern), false)
            };
            if probed {
                self.report.rules[rule_id.0].satisfaction_probes += 1;
            } else {
                self.report.rules[rule_id.0].satisfaction_scans += 1;
            }
            if hit.is_some() {
                self.report.rules[rule_id.0].satisfaction_preempted += 1;
                return Ok(false);
            }
        }

        // Fresh nulls, one per existential variable of this firing.
        let mut null_for: HashMap<Symbol, Value> = HashMap::new();
        let values: Vec<Value> = head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(v) => Ok(*v),
                Term::Var(v) => {
                    if let Some(val) = bindings.get(v) {
                        Ok(*val)
                    } else if existentials.contains(v) {
                        Ok(*null_for.entry(*v).or_insert_with(|| {
                            self.null_counter += 1;
                            Value::Null(self.null_counter)
                        }))
                    } else {
                        Err(EvalError::UnboundVariable(*v))
                    }
                }
            })
            .collect::<Result<_, _>>()?;

        let fact = Fact {
            predicate: head.predicate,
            values,
        };
        let (fact_id, fresh) = self.db.insert(fact);
        if fresh {
            self.report.rules[rule_id.0].facts_committed += 1;
        } else {
            self.report.rules[rule_id.0].duplicates_preempted += 1;
        }

        let key = (rule_id, fact_id, premises.clone());
        if self.seen_derivations.contains(&key) {
            return Ok(false);
        }
        self.seen_derivations.insert(key);

        // Monotonic-aggregate supersession: the new aggregate fact of a
        // group replaces (deactivates) the group's previous fact.
        if rule.aggregate.is_some() {
            let group: Vec<Value> = rule
                .aggregate_group_vars()
                .iter()
                .filter_map(|v| bindings.get(v).copied())
                .collect();
            if let Some(prev) = self.agg_current.insert((rule_id, group), fact_id) {
                if prev != fact_id {
                    self.db.deactivate(prev);
                }
            }
        }
        let contributors = contributor_bindings.len().max(1) as u32;
        self.graph.record(Derivation {
            rule: rule_id,
            premises,
            conclusion: fact_id,
            round,
            contributors,
            bindings: bindings.clone(),
            contributor_bindings,
        });
        // A new derivation of an existing fact is knowledge for the chase
        // graph but must not keep the fixpoint loop alive forever: the
        // dedup set above already guarantees each derivation is recorded
        // once, so only fresh facts report change.
        Ok(fresh)
    }
}

/// One aggregated group: the head bindings (group key plus aggregate
/// result), the union of contributing premises, and the per-contributor
/// match bindings.
struct AggGroup {
    bindings: Bindings,
    premises: Vec<FactId>,
    contributor_bindings: Vec<Bindings>,
}

/// Groups matches by the head variables other than the aggregate result
/// and folds the aggregate, checking post-aggregate conditions.
fn group_matches(rule: &Rule, matches: &[BodyMatch]) -> Result<Vec<AggGroup>, EvalError> {
    let agg = rule.aggregate.as_ref().expect("aggregate rule");
    if rule.head.atom().is_none() {
        return Ok(Vec::new());
    }

    // Group key: head variables except the aggregate result, plus body
    // variables referenced by post-aggregate conditions (see
    // `Rule::aggregate_group_vars`).
    let key_vars: Vec<Symbol> = rule.aggregate_group_vars();

    // Deterministic grouping: preserve first-seen group order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, m) in matches.iter().enumerate() {
        let key: Option<Vec<Value>> = key_vars
            .iter()
            .map(|v| m.bindings.get(v).copied())
            .collect();
        // A key variable may be unbound only if it is existential; such
        // rules (aggregate + existential group key) group everything
        // together per distinct bound part.
        let key = key.unwrap_or_default();
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Vec::new()
        });
        entry.push(i);
    }

    let mut out = Vec::new();
    for key in order {
        let idxs = &groups[&key];
        // Fold the aggregate over each distinct contributing match.
        let mut inputs = Vec::with_capacity(idxs.len());
        for &i in idxs {
            inputs.push(agg.input.eval(&matches[i].bindings)?);
        }
        let value = fold_aggregate(agg.func, &inputs)?;

        let mut bindings = Bindings::new();
        for (v, val) in key_vars.iter().zip(&key) {
            bindings.insert(*v, *val);
        }
        bindings.insert(agg.result, value);

        // Post-aggregate conditions.
        let mut ok = true;
        for c in &rule.conditions {
            let mut vars = Vec::new();
            c.collect_vars(&mut vars);
            if vars.contains(&agg.result) {
                // The condition may also mention group-key variables (all
                // bound); other body variables are out of scope post-
                // aggregation and yield an error, which validation of
                // reasonable programs prevents.
                if !c.holds(&bindings)? {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }

        let mut premises: Vec<FactId> = Vec::new();
        for &i in idxs {
            for &p in &matches[i].premises {
                if !premises.contains(&p) {
                    premises.push(p);
                }
            }
        }
        out.push(AggGroup {
            bindings,
            premises,
            contributor_bindings: idxs.iter().map(|&i| matches[i].bindings.clone()).collect(),
        });
    }
    Ok(out)
}

/// Folds an aggregate function over the contributed values.
fn fold_aggregate(func: AggFunc, inputs: &[Value]) -> Result<Value, EvalError> {
    match func {
        AggFunc::Count => Ok(Value::Int(inputs.len() as i64)),
        AggFunc::Sum | AggFunc::Prod => {
            let mut acc_i: i64 = if func == AggFunc::Sum { 0 } else { 1 };
            let mut acc_f: f64 = if func == AggFunc::Sum { 0.0 } else { 1.0 };
            let mut is_float = false;
            for v in inputs {
                match v {
                    Value::Int(i) => {
                        if func == AggFunc::Sum {
                            acc_i = acc_i.wrapping_add(*i);
                            acc_f += *i as f64;
                        } else {
                            acc_i = acc_i.wrapping_mul(*i);
                            acc_f *= *i as f64;
                        }
                    }
                    Value::Float(f) => {
                        is_float = true;
                        if func == AggFunc::Sum {
                            acc_f += *f;
                        } else {
                            acc_f *= *f;
                        }
                    }
                    other => return Err(EvalError::NonNumericOperand(*other)),
                }
            }
            if is_float {
                if acc_f.is_nan() {
                    Err(EvalError::NanResult)
                } else {
                    Ok(Value::Float(acc_f))
                }
            } else {
                Ok(Value::Int(acc_i))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in inputs {
                best = Some(match best {
                    None => *v,
                    Some(b) => {
                        let ord = b
                            .partial_cmp_values(v)
                            .ok_or(EvalError::NonNumericOperand(*v))?;
                        let take_new = match func {
                            AggFunc::Min => ord == std::cmp::Ordering::Greater,
                            _ => ord == std::cmp::Ordering::Less,
                        };
                        if take_new {
                            *v
                        } else {
                            b
                        }
                    }
                });
            }
            best.ok_or(EvalError::NanResult)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::expr::{CmpOp, Condition, Expr};
    use crate::rule::RuleBuilder;

    fn chase(program: &Program, db: Database) -> Result<ChaseOutcome, ChaseError> {
        ChaseSession::new(program).run(db)
    }

    fn control_program() -> Program {
        Program::new(vec![
            RuleBuilder::new("o1")
                .body(Atom::new(
                    "own",
                    vec![Term::var("x"), Term::var("y"), Term::var("s")],
                ))
                .condition(Condition::new(
                    Expr::var("s"),
                    CmpOp::Gt,
                    Expr::constant(0.5f64),
                ))
                .head(Atom::new("control", vec![Term::var("x"), Term::var("y")])),
            RuleBuilder::new("o2")
                .body(Atom::new("company", vec![Term::var("x")]))
                .head(Atom::new("control", vec![Term::var("x"), Term::var("x")])),
            RuleBuilder::new("o3")
                .body(Atom::new("control", vec![Term::var("x"), Term::var("z")]))
                .body(Atom::new(
                    "own",
                    vec![Term::var("z"), Term::var("y"), Term::var("s")],
                ))
                .aggregate(AggFunc::Sum, "ts", Expr::var("s"))
                .condition(Condition::new(
                    Expr::var("ts"),
                    CmpOp::Gt,
                    Expr::constant(0.5f64),
                ))
                .head(Atom::new("control", vec![Term::var("x"), Term::var("y")])),
        ])
        .unwrap()
    }

    #[test]
    fn direct_control_is_derived() {
        let mut db = Database::new();
        db.add("company", &["A".into()]);
        db.add("company", &["B".into()]);
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        let out = chase(&control_program(), db).unwrap();
        assert!(out
            .database
            .contains(&Fact::new("control", vec!["A".into(), "B".into()])));
    }

    #[test]
    fn joint_control_through_aggregation() {
        // The paper's running example (Fig. 15): Irish Bank controls
        // Madrid Credit with 21% + 36% through controlled intermediaries.
        let mut db = Database::new();
        for c in ["irish", "fondo", "french", "madrid"] {
            db.add("company", &[c.into()]);
        }
        db.add("own", &["irish".into(), "fondo".into(), 0.83.into()]);
        db.add("own", &["irish".into(), "french".into(), 0.54.into()]);
        db.add("own", &["french".into(), "madrid".into(), 0.21.into()]);
        db.add("own", &["fondo".into(), "madrid".into(), 0.36.into()]);
        let out = chase(&control_program(), db).unwrap();
        let target = Fact::new("control", vec!["irish".into(), "madrid".into()]);
        let id = out.lookup(&target).expect("joint control derived");
        // The winning derivation aggregates two contributors.
        let der = out
            .graph
            .derivations_of(id)
            .iter()
            .map(|&d| out.graph.derivation(d))
            .find(|d| d.contributors == 2)
            .expect("two-contributor aggregation recorded");
        assert_eq!(out.database.fact(der.conclusion), &target);
    }

    #[test]
    fn no_control_below_threshold() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.5.into()]);
        let out = chase(&control_program(), db).unwrap();
        assert!(!out
            .database
            .contains(&Fact::new("control", vec!["A".into(), "B".into()])));
    }

    #[test]
    fn chase_reaches_fixpoint_on_cycles() {
        // Ownership cycle: A owns B, B owns A, both majority.
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.9.into()]);
        db.add("own", &["B".into(), "A".into(), 0.9.into()]);
        let out = chase(&control_program(), db).unwrap();
        assert!(out
            .database
            .contains(&Fact::new("control", vec!["A".into(), "A".into()])));
        assert!(out
            .database
            .contains(&Fact::new("control", vec!["B".into(), "B".into()])));
    }

    #[test]
    fn aggregate_premises_cover_all_contributors() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "HUB".into(), 0.6.into()]);
        db.add("own", &["HUB".into(), "T".into(), 0.3.into()]);
        db.add("own", &["A".into(), "HUB2".into(), 0.7.into()]);
        db.add("own", &["HUB2".into(), "T".into(), 0.3.into()]);
        let out = chase(&control_program(), db).unwrap();
        let id = out
            .lookup(&Fact::new("control", vec!["A".into(), "T".into()]))
            .expect("joint control via two hubs");
        let best = out
            .graph
            .choose_derivation(id, crate::provenance::DerivationPolicy::Richest)
            .unwrap();
        let der = out.graph.derivation(best);
        assert_eq!(der.contributors, 2);
        // Premises: control(A,HUB), own(HUB,T), control(A,HUB2), own(HUB2,T).
        assert_eq!(der.premises.len(), 4);
    }

    #[test]
    fn existential_rule_invents_nulls_once() {
        // person(x) -> parent(x, z); parent(x, z) -> person(z)
        // Restricted chase: one invented parent per person, then the
        // invented null's own parent is satisfied by... nothing, so a
        // chain would grow; isomorphism pre-emption stops at the null
        // because parent(n1, z) is satisfied by checking patterns?  It is
        // not: this program is genuinely non-terminating under the
        // oblivious chase; the restricted check stops it because
        // parent(x,z) for x = n1 is satisfied only if some parent fact
        // with first argument n1 exists.  It does not, so we rely on the
        // fact limit to keep the test bounded and assert the engine
        // reports the overflow rather than hanging.
        let p = Program::new(vec![
            RuleBuilder::new("p1")
                .body(Atom::new("person", vec![Term::var("x")]))
                .head(Atom::new("parent", vec![Term::var("x"), Term::var("z")])),
            RuleBuilder::new("p2")
                .body(Atom::new("parent", vec![Term::var("x"), Term::var("z")]))
                .head(Atom::new("person", vec![Term::var("z")])),
        ])
        .unwrap();
        let mut db = Database::new();
        db.add("person", &["alice".into()]);
        let cfg = ChaseConfig::default()
            .with_max_rounds(50)
            .with_max_facts(100);
        let result = ChaseSession::new(&p).with_config(cfg).run(db);
        match result {
            Err(ChaseError::ResourceExhausted {
                budget: Budget::Rounds(_) | Budget::Facts(_),
                partial,
                ..
            }) => {
                // The partial outcome is the deterministic prefix: the
                // rounds already committed carry their facts and report.
                assert!(partial.is_partial());
                assert!(partial.database.len() > 1);
                assert!(partial.report.is_partial());
            }
            Ok(out) => {
                // Acceptable alternative: engine terminated because each
                // new person's parent head was satisfied by an existing
                // fact. Verify nulls were introduced.
                assert!(out.database.iter().any(|(_, f)| f.has_nulls()));
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn existential_satisfaction_preempts_firing() {
        // employee(x) -> works_for(x, z); plus an explicit works_for fact:
        // the restricted chase must not invent a null for alice.
        let p = Program::new(vec![RuleBuilder::new("w")
            .body(Atom::new("employee", vec![Term::var("x")]))
            .head(Atom::new("works_for", vec![Term::var("x"), Term::var("z")]))])
        .unwrap();
        let mut db = Database::new();
        db.add("employee", &["alice".into()]);
        db.add("works_for", &["alice".into(), "acme".into()]);
        let out = chase(&p, db).unwrap();
        assert_eq!(out.derived_facts, 0);
        assert!(!out.database.iter().any(|(_, f)| f.has_nulls()));
    }

    #[test]
    fn constraints_are_collected() {
        let p = Program::new(vec![RuleBuilder::new("r")
            .body(Atom::new("own", vec![Term::var("x"), Term::var("x")]))
            .falsum()])
        .unwrap();
        let mut db = Database::new();
        db.add("own", &["A".into(), "A".into()]);
        let out = chase(&p, db).unwrap();
        assert_eq!(out.violations, vec!["r".to_string()]);
    }

    #[test]
    fn constraints_can_fail_fast() {
        let p = Program::new(vec![RuleBuilder::new("r")
            .body(Atom::new("own", vec![Term::var("x"), Term::var("x")]))
            .falsum()])
        .unwrap();
        let mut db = Database::new();
        db.add("own", &["A".into(), "A".into()]);
        let cfg = ChaseConfig::default().with_fail_on_violation(true);
        assert!(matches!(
            ChaseSession::new(&p).with_config(cfg).run(db),
            Err(ChaseError::ConstraintViolated { .. })
        ));
    }

    #[test]
    fn fold_aggregates_cover_all_functions() {
        let ints = [Value::Int(2), Value::Int(3), Value::Int(4)];
        assert_eq!(fold_aggregate(AggFunc::Sum, &ints).unwrap(), Value::Int(9));
        assert_eq!(
            fold_aggregate(AggFunc::Prod, &ints).unwrap(),
            Value::Int(24)
        );
        assert_eq!(fold_aggregate(AggFunc::Min, &ints).unwrap(), Value::Int(2));
        assert_eq!(fold_aggregate(AggFunc::Max, &ints).unwrap(), Value::Int(4));
        assert_eq!(
            fold_aggregate(AggFunc::Count, &ints).unwrap(),
            Value::Int(3)
        );
        let mixed = [Value::Int(1), Value::Float(0.5)];
        assert_eq!(
            fold_aggregate(AggFunc::Sum, &mixed).unwrap(),
            Value::Float(1.5)
        );
        assert!(fold_aggregate(AggFunc::Sum, &[Value::str("x")]).is_err());
    }

    #[test]
    fn derived_fact_count_is_reported() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.8.into()]);
        db.add("own", &["B".into(), "C".into(), 0.8.into()]);
        let out = chase(&control_program(), db).unwrap();
        // control(A,B), control(B,C), control(A,C)
        assert_eq!(out.derived_facts, 3);
        assert!(out.rounds >= 2);
    }

    #[test]
    fn session_builder_covers_run_and_resume() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.8.into()]);
        let out = ChaseSession::new(&control_program()).run(db).unwrap();
        assert_eq!(out.derived_facts, 1);
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.8.into()]);
        let out = ChaseSession::new(&control_program())
            .with_config(ChaseConfig::default())
            .run(db)
            .unwrap();
        assert_eq!(out.derived_facts, 1);
        // A monotone single-rule program for the incremental extension.
        let program = Program::new(vec![control_program().rules()[0].clone()]).unwrap();
        let base = ChaseSession::new(&program).run(Database::new()).unwrap();
        let out = ChaseSession::new(&program)
            .with_config(ChaseConfig::default())
            .resume(
                base,
                [Fact::new("own", vec!["B".into(), "C".into(), 0.9.into()])],
            )
            .unwrap();
        assert_eq!(out.derived_facts, 1);
    }
}

#[cfg(test)]
mod determinism_tests {
    //! The in-crate half of the determinism contract: chase output is
    //! bitwise identical at any thread count. (The application-level half
    //! lives in the finkg crate's determinism suite.)
    use super::*;
    use crate::parser::parse_program;

    /// A full structural fingerprint of an outcome: every fact in id
    /// order, every derivation in recording order, rounds and violations.
    pub(super) fn fingerprint(out: &ChaseOutcome) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (id, fact) in out.database.iter() {
            let _ = writeln!(s, "{id} {fact} active={}", out.database.is_active(id));
        }
        for der in out.graph.derivations() {
            let _ = writeln!(
                s,
                "r{} {:?} -> {} round={} contrib={}",
                der.rule.0, der.premises, der.conclusion, der.round, der.contributors
            );
        }
        let _ = writeln!(s, "rounds={} violations={:?}", out.rounds, out.violations);
        s
    }

    pub(super) fn ladder_db(n: usize) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.add("company", &[format!("c{i}").as_str().into()]);
        }
        for i in 0..n {
            for j in 0..n {
                if i != j && (i + j) % 3 != 0 {
                    let share = 0.2 + 0.6 * ((i * 7 + j * 13) % 10) as f64 / 10.0;
                    db.add(
                        "own",
                        &[
                            format!("c{i}").as_str().into(),
                            format!("c{j}").as_str().into(),
                            share.into(),
                        ],
                    );
                }
            }
        }
        db
    }

    #[test]
    fn control_chase_is_identical_across_thread_counts() {
        let program = parse_program(
            "o1: own(x, y, s), s > 0.5 -> control(x, y).
             o2: company(x) -> control(x, x).
             o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).",
        )
        .unwrap()
        .program;
        let reference = ChaseSession::new(&program)
            .with_threads(1)
            .run(ladder_db(12))
            .unwrap();
        let reference_fp = fingerprint(&reference);
        assert!(reference.derived_facts > 0);
        for threads in [2, 4, 8] {
            let out = ChaseSession::new(&program)
                .with_threads(threads)
                .run(ladder_db(12))
                .unwrap();
            assert_eq!(fingerprint(&out), reference_fp, "threads={threads}");
        }
    }

    #[test]
    fn stratified_chase_is_identical_across_thread_counts() {
        let program = parse_program(
            "r1: edge(x, y) -> reach(y).
             r2: reach(x), edge(x, y) -> reach(y).
             r3: node(x), not reach(x) -> unreachable(x).
             r4: unreachable(x), n = count(x) -> dead_count(n).",
        )
        .unwrap()
        .program;
        let build = || {
            let mut db = Database::new();
            for i in 0..30 {
                db.add("node", &[format!("n{i}").as_str().into()]);
            }
            for i in 0..30usize {
                if i % 4 != 0 {
                    db.add(
                        "edge",
                        &[
                            format!("n{}", i).as_str().into(),
                            format!("n{}", (i * 3 + 1) % 30).as_str().into(),
                        ],
                    );
                }
            }
            db
        };
        let reference = ChaseSession::new(&program)
            .with_threads(1)
            .run(build())
            .unwrap();
        let reference_fp = fingerprint(&reference);
        for threads in [2, 8] {
            let out = ChaseSession::new(&program)
                .with_threads(threads)
                .run(build())
                .unwrap();
            assert_eq!(fingerprint(&out), reference_fp, "threads={threads}");
        }
    }

    #[test]
    fn resume_is_identical_across_thread_counts() {
        let program = parse_program(
            "o1: own(x, y, s), s > 0.5 -> control(x, y).
             o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).",
        )
        .unwrap()
        .program;
        let extension: Vec<Fact> = (0..6)
            .map(|i| {
                Fact::new(
                    "own",
                    vec![
                        format!("c{i}").as_str().into(),
                        format!("c{}", (i + 1) % 6).as_str().into(),
                        0.9.into(),
                    ],
                )
            })
            .collect();
        let run_at = |threads: usize| {
            let session = ChaseSession::new(&program).with_threads(threads);
            let base = session.run(ladder_db(6)).unwrap();
            session.resume(base, extension.clone()).unwrap()
        };
        let reference = fingerprint(&run_at(1));
        for threads in [2, 8] {
            assert_eq!(
                fingerprint(&run_at(threads)),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn naive_mode_is_identical_across_thread_counts() {
        let program = parse_program(
            "o1: own(x, y, s), s > 0.5 -> control(x, y).
             o2: company(x) -> control(x, x).
             o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).",
        )
        .unwrap()
        .program;
        let cfg = ChaseConfig::default().with_semi_naive(false);
        let reference = ChaseSession::new(&program)
            .with_config(cfg.clone().with_threads(1))
            .run(ladder_db(8))
            .unwrap();
        let reference_fp = fingerprint(&reference);
        for threads in [2, 8] {
            let out = ChaseSession::new(&program)
                .with_config(cfg.clone().with_threads(threads))
                .run(ladder_db(8))
                .unwrap();
            assert_eq!(fingerprint(&out), reference_fp, "threads={threads}");
        }
    }

    #[test]
    fn scan_ablation_agrees_with_indexed_chase_on_fact_sets() {
        let program = parse_program(
            "o1: own(x, y, s), s > 0.5 -> control(x, y).
             o2: company(x) -> control(x, x).
             o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).",
        )
        .unwrap()
        .program;
        let indexed = ChaseSession::new(&program)
            .with_threads(4)
            .run(ladder_db(8))
            .unwrap();
        let scanned = ChaseSession::new(&program)
            .with_config(ChaseConfig::default().with_positional_index(false))
            .run(ladder_db(8))
            .unwrap();
        assert_eq!(indexed.database.len(), scanned.database.len());
        for (_, fact) in indexed.database.iter() {
            assert!(scanned.database.contains(fact), "missing {fact}");
        }
    }
}

#[cfg(test)]
mod stratified_tests {
    use super::*;
    use crate::parser::parse_program;

    fn chase(program: &Program, db: Database) -> Result<ChaseOutcome, ChaseError> {
        ChaseSession::new(program).run(db)
    }

    #[test]
    fn stratified_negation_computes_complement() {
        let parsed = parse_program(
            r#"
            r1: edge(x, y) -> reach(y).
            r2: reach(x), edge(x, y) -> reach(y).
            r3: node(x), not reach(x) -> unreachable(x).

            node("a"). node("b"). node("c"). node("d").
            edge("a", "b"). edge("b", "c").
        "#,
        )
        .unwrap();
        let db: Database = parsed.facts.into_iter().collect();
        let out = chase(&parsed.program, db).unwrap();
        // b, c are reachable; a and d are not.
        assert!(out
            .database
            .contains(&Fact::new("unreachable", vec!["a".into()])));
        assert!(out
            .database
            .contains(&Fact::new("unreachable", vec!["d".into()])));
        assert!(!out
            .database
            .contains(&Fact::new("unreachable", vec!["b".into()])));
        assert!(!out
            .database
            .contains(&Fact::new("unreachable", vec!["c".into()])));
    }

    #[test]
    fn three_strata_evaluate_bottom_up() {
        let parsed = parse_program(
            r#"
            r1: edge(x, y) -> reach(y).
            r2: reach(x), edge(x, y) -> reach(y).
            r3: node(x), not reach(x) -> unreachable(x).
            r4: node(x), not unreachable(x) -> ok(x).

            node("a"). node("b").
            edge("a", "b").
        "#,
        )
        .unwrap();
        assert_eq!(parsed.program.stratification().strata, 3);
        let db: Database = parsed.facts.into_iter().collect();
        let out = chase(&parsed.program, db).unwrap();
        assert!(out.database.contains(&Fact::new("ok", vec!["b".into()])));
        assert!(!out.database.contains(&Fact::new("ok", vec!["a".into()])));
    }

    #[test]
    fn negation_with_aggregation_across_strata() {
        // Entities with no declared debts are "clean"; the count of clean
        // entities is aggregated in the top stratum.
        let parsed = parse_program(
            r#"
            r1: debt(d, c, v) -> indebted(d).
            r2: entity(x), not indebted(x) -> clean(x).
            r3: clean(x), n = count(x) -> clean_count(n).

            entity("a"). entity("b"). entity("c").
            debt("a", "b", 5).
        "#,
        )
        .unwrap();
        let db: Database = parsed.facts.into_iter().collect();
        let out = chase(&parsed.program, db).unwrap();
        assert!(out
            .database
            .contains(&Fact::new("clean_count", vec![2i64.into()])));
    }

    #[test]
    fn provenance_spans_strata() {
        let parsed = parse_program(
            r#"
            r1: edge(x, y) -> reach(y).
            r3: node(x), not reach(x) -> isolated(x).

            node("z").
            edge("a", "b").
        "#,
        )
        .unwrap();
        let db: Database = parsed.facts.into_iter().collect();
        let out = chase(&parsed.program, db).unwrap();
        let id = out
            .lookup(&Fact::new("isolated", vec!["z".into()]))
            .unwrap();
        let proof = out
            .graph
            .proof(id, crate::provenance::DerivationPolicy::Richest);
        // The proof of isolated("z") rests on node("z") (negation leaves
        // no positive premise for reach).
        assert_eq!(proof.steps(), 1);
    }
}

#[cfg(test)]
mod extend_tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::provenance::DerivationPolicy;

    fn chase(program: &Program, db: Database) -> Result<ChaseOutcome, ChaseError> {
        ChaseSession::new(program).run(db)
    }

    fn control_text() -> &'static str {
        r#"
        o1: own(x, y, s), s > 0.5 -> control(x, y).
        o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).
        "#
    }

    #[test]
    fn extension_derives_the_new_consequences() {
        let program = parse_program(control_text()).unwrap().program;
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.9.into()]);
        let first = chase(&program, db).unwrap();
        assert_eq!(first.derived_facts, 1);

        let extended = ChaseSession::new(&program)
            .resume(
                first,
                [Fact::new("own", vec!["B".into(), "C".into(), 0.9.into()])],
            )
            .unwrap();
        // New knowledge: control(B,C) and control(A,C).
        assert_eq!(extended.derived_facts, 2);
        assert!(extended
            .database
            .contains(&Fact::new("control", vec!["A".into(), "C".into()])));
    }

    #[test]
    fn extension_equals_from_scratch_closure() {
        let program = parse_program(control_text()).unwrap().program;
        let all: Vec<Fact> = vec![
            Fact::new("own", vec!["A".into(), "B".into(), 0.8.into()]),
            Fact::new("own", vec!["B".into(), "C".into(), 0.3.into()]),
            Fact::new("own", vec!["A".into(), "C".into(), 0.4.into()]),
            Fact::new("own", vec!["C".into(), "D".into(), 0.9.into()]),
        ];
        for split in 0..=all.len() {
            let scratch = chase(&program, all.clone().into_iter().collect()).unwrap();
            let base = chase(&program, all[..split].iter().cloned().collect()).unwrap();
            let ext = ChaseSession::new(&program)
                .resume(base, all[split..].to_vec())
                .unwrap();
            assert_eq!(scratch.database.len(), ext.database.len(), "split {split}");
            for (_, fact) in scratch.database.iter() {
                assert!(ext.database.contains(fact), "split {split}: missing {fact}");
            }
        }
    }

    #[test]
    fn extension_keeps_and_grows_provenance() {
        let program = parse_program(control_text()).unwrap().program;
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.9.into()]);
        let first = chase(&program, db).unwrap();
        let derivations_before = first.graph.derivations().len();

        let ext = ChaseSession::new(&program)
            .resume(
                first,
                [Fact::new("own", vec!["B".into(), "C".into(), 0.9.into()])],
            )
            .unwrap();
        assert!(ext.graph.derivations().len() > derivations_before);
        // Proofs over the extended graph still linearize.
        let id = ext
            .lookup(&Fact::new("control", vec!["A".into(), "C".into()]))
            .unwrap();
        let tau = ext
            .graph
            .proof(id, DerivationPolicy::Richest)
            .linearize(&ext.graph);
        assert_eq!(tau.len(), 2);
    }

    #[test]
    fn non_monotone_programs_are_rejected() {
        let program = parse_program(
            "r1: a(x) -> b(x).
             r2: e(x), not b(x) -> c(x).",
        )
        .unwrap()
        .program;
        let first = chase(&program, Database::new()).unwrap();
        let err = ChaseSession::new(&program).resume(first, [Fact::new("a", vec!["x".into()])]);
        assert!(matches!(err, Err(ChaseError::NonMonotoneExtension)));
    }

    #[test]
    fn empty_extension_changes_nothing() {
        let program = parse_program(control_text()).unwrap().program;
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.9.into()]);
        let first = chase(&program, db).unwrap();
        let before = first.database.len();
        let ext = ChaseSession::new(&program).resume(first, []).unwrap();
        assert_eq!(ext.database.len(), before);
        assert_eq!(ext.derived_facts, 0);
    }
}

#[cfg(test)]
mod aggregate_supersession_tests {
    use super::*;
    use crate::parser::parse_program;

    fn chase(program: &Program, db: Database) -> Result<ChaseOutcome, ChaseError> {
        ChaseSession::new(program).run(db)
    }

    /// Regression: a partial aggregate (computed before all contributors
    /// defaulted) must not be double-counted with the fuller aggregate of
    /// the same group by a downstream sum.
    #[test]
    fn partial_aggregates_are_superseded_not_double_counted() {
        let parsed = parse_program(
            r#"
            o4: shock(f, s), has_capital(f, p1), s > p1 -> default(f).
            o5: default(d), long_term_debts(d, c, v), el = sum(v) -> risk(c, el, "long").
            o7: risk(c, e, t), has_capital(c, p2), l = sum(e), l > p2 -> default(c).

            shock("A", 10). has_capital("A", 1).
            has_capital("B", 4). has_capital("C", 7).
            long_term_debts("A", "B", 5).
            long_term_debts("A", "C", 3).
            long_term_debts("B", "C", 3).
        "#,
        )
        .unwrap();
        let db: Database = parsed.facts.into_iter().collect();
        let out = chase(&parsed.program, db).unwrap();
        // A and B default; C's true exposure is 3 + 3 = 6 < 7.
        assert!(out
            .database
            .contains(&Fact::new("default", vec!["A".into()])));
        assert!(out
            .database
            .contains(&Fact::new("default", vec!["B".into()])));
        assert!(
            !out.database
                .contains(&Fact::new("default", vec!["C".into()])),
            "partial aggregate was double-counted"
        );
        // Both risk facts remain in the store (provenance), but the
        // partial one is inactive.
        let partial = out
            .lookup(&Fact::new(
                "risk",
                vec!["C".into(), 3i64.into(), "long".into()],
            ))
            .expect("partial kept for provenance");
        let full = out
            .lookup(&Fact::new(
                "risk",
                vec!["C".into(), 6i64.into(), "long".into()],
            ))
            .expect("full aggregate derived");
        assert!(!out.database.is_active(partial));
        assert!(out.database.is_active(full));
        assert_eq!(out.database.inactive_count(), 1);
    }

    /// Facts derived from a later-superseded partial aggregate remain (the
    /// conditions are monotone, so they stay sound).
    #[test]
    fn conclusions_from_partials_survive_supersession() {
        let parsed = parse_program(
            r#"
            o4: shock(f, s), has_capital(f, p1), s > p1 -> default(f).
            o5: default(d), long_term_debts(d, c, v), el = sum(v) -> risk(c, el, "long").
            o7: risk(c, e, t), has_capital(c, p2), l = sum(e), l > p2 -> default(c).

            shock("A", 10). has_capital("A", 1).
            has_capital("B", 4). has_capital("C", 2).
            long_term_debts("A", "B", 5).
            long_term_debts("A", "C", 3).
            long_term_debts("B", "C", 3).
        "#,
        )
        .unwrap();
        // C's capital (2) is already exceeded by the partial exposure (3):
        // C defaults early and must stay defaulted after the aggregate is
        // superseded by 6.
        let db: Database = parsed.facts.into_iter().collect();
        let out = chase(&parsed.program, db).unwrap();
        assert!(out
            .database
            .contains(&Fact::new("default", vec!["C".into()])));
    }
}

#[cfg(test)]
mod governance_tests {
    //! Resource governance: budget trips surface as `ResourceExhausted`
    //! with a deterministic partial outcome, and resuming an interrupted
    //! run reaches a state bitwise identical to an uninterrupted one.
    use super::determinism_tests::{fingerprint, ladder_db};
    use super::*;
    use crate::parser::parse_program;
    use crate::telemetry::{CancelToken, RunGuard};
    use std::time::Duration;

    fn control_program() -> Program {
        parse_program(
            "o1: own(x, y, s), s > 0.5 -> control(x, y).
             o2: company(x) -> control(x, x).
             o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).",
        )
        .unwrap()
        .program
    }

    /// An unbounded existential chain: person -> parent(·, ∃z) -> person,
    /// genuinely non-terminating under the restricted chase.
    fn unbounded_program() -> Program {
        parse_program(
            "p1: person(x) -> parent(x, z).
             p2: parent(x, z) -> person(z).",
        )
        .unwrap()
        .program
    }

    fn seed_person() -> Database {
        let mut db = Database::new();
        db.add("person", &["alice".into()]);
        db
    }

    #[test]
    fn deadline_trips_with_partial_report() {
        // Acceptance scenario: a 50 ms deadline on an unbounded recursive
        // program must come back as ResourceExhausted carrying a partial
        // RunReport, not hang.
        let program = unbounded_program();
        let cfg = ChaseConfig::default()
            .with_max_rounds(usize::MAX >> 1)
            .with_max_facts(usize::MAX >> 1)
            .with_guard(RunGuard::default().with_timeout(Duration::from_millis(50)));
        let err = ChaseSession::new(&program)
            .with_config(cfg)
            .run(seed_person())
            .expect_err("the deadline must trip");
        match err {
            ChaseError::ResourceExhausted {
                budget: Budget::Deadline(t),
                observed,
                partial,
            } => {
                assert_eq!(t, Duration::from_millis(50));
                assert!(observed >= 50, "observed elapsed ms: {observed}");
                assert!(partial.is_partial());
                assert!(partial.report.is_partial());
                assert!(partial.report.rounds > 0, "some rounds completed");
                assert!(partial.database.len() > 1, "partial state retained");
                assert_eq!(
                    partial.report.total_commits(),
                    (partial.database.len() - 1) as u64
                );
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn cancelled_token_preempts_the_run() {
        let program = control_program();
        let token = CancelToken::new();
        token.cancel();
        let cfg = ChaseConfig::default().with_guard(RunGuard::default().with_cancel_token(token));
        let err = ChaseSession::new(&program)
            .with_config(cfg)
            .run(ladder_db(6))
            .expect_err("a pre-cancelled token must trip at the first round");
        match err {
            ChaseError::ResourceExhausted {
                budget: Budget::Cancelled,
                partial,
                ..
            } => {
                assert_eq!(partial.rounds, 0);
                assert_eq!(partial.derived_facts, 0);
                assert!(partial.is_partial());
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn memory_budget_trips() {
        let program = control_program();
        let cfg = ChaseConfig::default().with_guard(RunGuard::default().with_max_bytes(1));
        let err = ChaseSession::new(&program)
            .with_config(cfg)
            .run(ladder_db(6))
            .expect_err("a 1-byte memory budget must trip immediately");
        assert!(matches!(
            err,
            ChaseError::ResourceExhausted {
                budget: Budget::MemoryBytes(1),
                ..
            }
        ));
    }

    #[test]
    fn guard_round_budget_matches_legacy_limit() {
        let program = unbounded_program();
        let via_guard = ChaseSession::new(&program)
            .with_config(ChaseConfig::default().with_guard(RunGuard::default().with_max_rounds(3)))
            .run(seed_person());
        let via_legacy = ChaseSession::new(&program)
            .with_config(ChaseConfig::default().with_max_rounds(3))
            .run(seed_person());
        let (
            Err(ChaseError::ResourceExhausted { partial: a, .. }),
            Err(ChaseError::ResourceExhausted { partial: b, .. }),
        ) = (via_guard, via_legacy)
        else {
            panic!("both round limits must trip");
        };
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(a.rounds, 3);
    }

    #[test]
    fn interrupted_runs_resume_to_the_uninterrupted_state() {
        // The core cancel/budget-then-resume contract, across thread
        // counts: for any fact budget, trip -> resume == one shot, bit
        // for bit (facts, activity, provenance, round stamps).
        let program = control_program();
        let reference = fingerprint(
            &ChaseSession::new(&program)
                .with_threads(1)
                .run(ladder_db(10))
                .unwrap(),
        );
        let mut tripped = 0;
        for threads in [1, 2, 8] {
            for budget in [12u64, 15, 20, 25, 40, 60] {
                let session = ChaseSession::new(&program).with_threads(threads);
                let governed = session
                    .clone()
                    .with_guard(RunGuard::default().with_max_facts(budget))
                    .run(ladder_db(10));
                let resumed = match governed {
                    Err(ChaseError::ResourceExhausted {
                        partial, budget: b, ..
                    }) => {
                        tripped += 1;
                        assert!(partial.is_partial());
                        assert_eq!(b, Budget::Facts(budget));
                        session.resume(*partial, []).unwrap()
                    }
                    Ok(done) => done, // budget above the fixpoint size
                    Err(other) => panic!("unexpected error: {other}"),
                };
                assert_eq!(
                    fingerprint(&resumed),
                    reference,
                    "threads={threads} budget={budget}"
                );
            }
        }
        assert!(tripped > 0, "the sweep must exercise real trips");
    }

    #[test]
    fn stratified_interrupted_runs_resume_without_new_facts() {
        // Continuation of a partial outcome is sound for *any* program;
        // only extension with new facts is restricted to one stratum.
        let program = parse_program(
            "r1: edge(x, y) -> reach(y).
             r2: reach(x), edge(x, y) -> reach(y).
             r3: node(x), not reach(x) -> unreachable(x).",
        )
        .unwrap()
        .program;
        let build = || {
            let mut db = Database::new();
            for i in 0..20 {
                db.add("node", &[format!("n{i}").as_str().into()]);
            }
            for i in 0..19usize {
                db.add(
                    "edge",
                    &[
                        format!("n{i}").as_str().into(),
                        format!("n{}", i + 1).as_str().into(),
                    ],
                );
            }
            db
        };
        let reference = fingerprint(&ChaseSession::new(&program).run(build()).unwrap());
        let mut tripped = 0;
        for budget in [42u64, 45, 50, 55] {
            let session = ChaseSession::new(&program);
            let governed = session
                .clone()
                .with_guard(RunGuard::default().with_max_facts(budget))
                .run(build());
            let resumed = match governed {
                Err(ChaseError::ResourceExhausted { partial, .. }) => {
                    tripped += 1;
                    session.resume(*partial, []).unwrap()
                }
                Ok(done) => done,
                Err(other) => panic!("unexpected error: {other}"),
            };
            assert_eq!(fingerprint(&resumed), reference, "budget={budget}");
        }
        assert!(tripped > 0);
        // Extending a *stratified* partial outcome with new facts is still
        // rejected.
        let partial = match ChaseSession::new(&program)
            .with_guard(RunGuard::default().with_max_facts(42))
            .run(build())
        {
            Err(ChaseError::ResourceExhausted { partial, .. }) => *partial,
            other => panic!("expected a trip, got {other:?}"),
        };
        let err =
            ChaseSession::new(&program).resume(partial, [Fact::new("node", vec!["extra".into()])]);
        assert!(matches!(err, Err(ChaseError::NonMonotoneExtension)));
    }

    #[test]
    fn report_counts_are_exact_on_a_hand_computed_program() {
        // r1: a(x) -> b(x).        fires twice in round 1.
        // r2: b(x) -> c(x).        fires twice via the round-1 top-up.
        // r3: c(x), n = count(x) -> total(n).
        //   round 1: aggregates both c facts (top-up) -> total(2);
        //   round 2: full re-match (aggregate rule) re-derives total(2),
        //   pre-empted as a duplicate.
        let program = parse_program(
            "r1: a(x) -> b(x).
             r2: b(x) -> c(x).
             r3: c(x), n = count(x) -> total(n).",
        )
        .unwrap()
        .program;
        let build = || {
            let mut db = Database::new();
            db.add("a", &["x".into()]);
            db.add("a", &["y".into()]);
            db
        };
        // The hand-computed counts assume the indexed snapshot/top-up
        // path, so pin it against VADALOG_NO_INDEX.
        let out = ChaseSession::new(&program)
            .with_config(ChaseConfig::default().with_positional_index(true))
            .with_threads(1)
            .run(build())
            .unwrap();
        let report = &out.report;
        assert_eq!(out.database.len(), 7);
        assert_eq!(report.rounds, 2);
        assert_eq!(report.strata, 1);
        assert_eq!(report.termination, Termination::Completed);

        let [r1, r2, r3] = &report.rules[..] else {
            panic!("three rules expected");
        };
        assert_eq!((r1.matches_enumerated, r1.firings), (2, 2));
        assert_eq!((r1.facts_committed, r1.duplicates_preempted), (2, 0));
        assert_eq!((r2.matches_enumerated, r2.firings), (2, 2));
        assert_eq!((r2.facts_committed, r2.duplicates_preempted), (2, 0));
        // r3: 2 top-up matches in round 1, 2 full-rematch matches in
        // round 2; one firing per round; the round-2 aggregate is a
        // duplicate.
        assert_eq!((r3.matches_enumerated, r3.firings), (4, 2));
        assert_eq!((r3.facts_committed, r3.duplicates_preempted), (1, 1));
        assert_eq!(r3.isomorphism_checks, 0);

        assert_eq!(report.rounds_log.len(), 2);
        assert_eq!(report.rounds_log[0].facts_committed, 5);
        assert_eq!(report.rounds_log[0].facts_end, 7);
        assert_eq!(report.rounds_log[0].matches, 6);
        assert_eq!(report.rounds_log[1].facts_committed, 0);
        assert_eq!(report.rounds_log[1].matches, 2);
        assert_eq!(report.peak.facts, 7);
        assert_eq!(report.peak.derivations, 5);
        assert!(report.peak.approx_bytes > 0);

        // The count fingerprint is thread-invariant.
        for threads in [2, 8] {
            let other = ChaseSession::new(&program)
                .with_config(ChaseConfig::default().with_positional_index(true))
                .with_threads(threads)
                .run(build())
                .unwrap();
            assert_eq!(
                other.report.count_fingerprint(),
                report.count_fingerprint(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn existential_counters_track_preemption() {
        // employee(x) -> works_for(x, ∃z) with one employee already
        // covered: one isomorphism check, one pre-emption, no commit.
        let program = parse_program("w: employee(x) -> works_for(x, z).")
            .unwrap()
            .program;
        let mut db = Database::new();
        db.add("employee", &["alice".into()]);
        db.add("works_for", &["alice".into(), "acme".into()]);
        let out = ChaseSession::new(&program).run(db).unwrap();
        let w = &out.report.rules[0];
        assert_eq!(w.isomorphism_checks, 1);
        assert_eq!(w.satisfaction_preempted, 1);
        assert_eq!(w.facts_committed, 0);
    }

    #[test]
    fn reduced_telemetry_keeps_counters_and_skips_timings() {
        let program = control_program();
        let full = ChaseSession::new(&program).run(ladder_db(8)).unwrap();
        let reduced = ChaseSession::new(&program)
            .with_config(ChaseConfig::default().with_full_telemetry(false))
            .run(ladder_db(8))
            .unwrap();
        assert_eq!(reduced.report.rules, full.report.rules);
        assert_eq!(reduced.report.rounds, full.report.rounds);
        assert_eq!(reduced.report.peak.facts, full.report.peak.facts);
        assert!(reduced.report.rounds_log.is_empty());
        assert_eq!(reduced.report.timings.total_ns, 0);
        assert_eq!(reduced.report.timings.match_ns, 0);
        assert!(full.report.timings.total_ns > 0);
    }

    #[test]
    fn reports_serialize_to_json() {
        let program = control_program();
        let out = ChaseSession::new(&program).run(ladder_db(6)).unwrap();
        let json = out.report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"termination\":\"completed\""));
        assert!(json.contains("\"rules\""));
        assert!(json.contains("\"rounds_log\""));
    }

    #[test]
    fn completed_runs_cannot_double_resume_state() {
        let program = control_program();
        let out = ChaseSession::new(&program).run(ladder_db(4)).unwrap();
        assert!(!out.is_partial());
        assert!(!out.report.is_partial());
    }
}

#[cfg(test)]
mod goal_cone_tests {
    //! Goal-directed pruning: a cone-restricted run derives exactly the
    //! full model restricted to cone predicates, keeps negated support,
    //! stays thread-count invariant, and reports the cone metrics.
    use super::*;

    fn chase(program: &Program, db: Database) -> Result<ChaseOutcome, ChaseError> {
        ChaseSession::new(program).run(db)
    }

    fn control_program() -> Program {
        crate::parse_program(
            "o1: own(x, y, s), s > 0.5 -> control(x, y).
             o2: company(x) -> control(x, x).
             o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).",
        )
        .unwrap()
        .program
    }

    use super::determinism_tests::ladder_db;

    /// The sanctions shape: recursion, stratified negation, and a
    /// clean_link branch a `flagged` cone prunes away.
    fn sanctions_program() -> Program {
        crate::parse_program(
            r#"
            s1: own(x, y, w), w >= 0.2 -> exposure(x, y).
            s2: exposure(x, z), own(z, y, w), w >= 0.2, x != y -> exposure(x, y).
            s3: exposure(x, y), sanctioned(y) -> flagged(x, y).
            s4: exposure(x, y), not sanctioned(x), not sanctioned(y) -> clean_link(x, y).
            "#,
        )
        .unwrap()
        .program
    }

    fn sanctions_db() -> Database {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.5.into()]);
        db.add("own", &["B".into(), "C".into(), 0.3.into()]);
        db.add("own", &["C".into(), "D".into(), 0.4.into()]);
        db.add("sanctioned", &["D".into()]);
        db
    }

    #[test]
    fn pruned_chase_derives_the_goal_facts_and_skips_the_rest() {
        if prune_ablation_default() {
            return; // VADALOG_NO_PRUNE: pruning is a no-op by design.
        }
        let program = sanctions_program();
        let full = chase(&program, sanctions_db()).unwrap();
        let pruned = ChaseSession::new(&program)
            .with_config(ChaseConfig::default().with_goal_cone("flagged"))
            .run(sanctions_db())
            .unwrap();
        // Cone facts (exposure, flagged) agree with the full run.
        for pred in ["exposure", "flagged"] {
            let facts = |out: &ChaseOutcome| -> Vec<Fact> {
                out.facts_of(pred)
                    .into_iter()
                    .map(|(_, f)| f.clone())
                    .collect()
            };
            assert_eq!(facts(&full), facts(&pruned), "{pred} facts diverge");
        }
        // The clean_link branch was never evaluated.
        assert_eq!(pruned.facts_of("clean_link").len(), 0);
        assert!(!full.facts_of("clean_link").is_empty());
        assert!(pruned.derived_facts < full.derived_facts);
    }

    #[test]
    fn pruned_chase_preserves_negated_support() {
        if prune_ablation_default() {
            return;
        }
        let program = sanctions_program();
        // Goal clean_link: `sanctioned` is consumed only under negation,
        // so a negation-blind cone would silently flip the negation
        // checks. The correct cone keeps it, and the clean links agree
        // with the full run.
        let full = chase(&program, sanctions_db()).unwrap();
        let pruned = ChaseSession::new(&program)
            .with_config(ChaseConfig::default().with_goal_cone("clean_link"))
            .run(sanctions_db())
            .unwrap();
        let links = |out: &ChaseOutcome| -> Vec<Fact> {
            out.facts_of("clean_link")
                .into_iter()
                .map(|(_, f)| f.clone())
                .collect()
        };
        assert_eq!(links(&full), links(&pruned));
        // The flagged branch was pruned.
        assert_eq!(pruned.facts_of("flagged").len(), 0);
    }

    #[test]
    fn pruned_chase_emits_cone_metrics() {
        if prune_ablation_default() {
            return;
        }
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        let program = sanctions_program();
        ChaseSession::new(&program)
            .with_config(
                ChaseConfig::default()
                    .with_goal_cone("flagged")
                    .with_metrics(registry.clone()),
            )
            .run(sanctions_db())
            .unwrap();
        let text = registry.to_prometheus();
        assert!(text.contains("vadalog_cone_size 4"), "{text}");
        assert!(text.contains("vadalog_cone_pruned_rules_total 1"), "{text}");
        // All four EDB facts are in the cone: nothing exempted.
        assert!(text.contains("vadalog_cone_pruned_facts_total 0"), "{text}");
    }

    #[test]
    fn pruned_chase_is_thread_count_invariant() {
        if prune_ablation_default() {
            return;
        }
        let program = sanctions_program();
        let config = |threads| {
            ChaseConfig::default()
                .with_goal_cone("flagged")
                .with_threads(threads)
        };
        let base = ChaseSession::new(&program)
            .with_config(config(1))
            .run(sanctions_db())
            .unwrap();
        for threads in [2, 8] {
            let out = ChaseSession::new(&program)
                .with_config(config(threads))
                .run(sanctions_db())
                .unwrap();
            let dump = |o: &ChaseOutcome| -> Vec<(FactId, Fact)> {
                o.database.iter().map(|(id, f)| (id, f.clone())).collect()
            };
            assert_eq!(dump(&base), dump(&out), "threads={threads}");
        }
    }

    #[test]
    fn total_cone_leaves_the_run_unchanged() {
        // `control` reaches every predicate of the control program: the
        // cone retains all rules and the pruned run equals the full one.
        let program = control_program();
        let full = chase(&program, ladder_db(6)).unwrap();
        let pruned = ChaseSession::new(&program)
            .with_config(ChaseConfig::default().with_goal_cone("control"))
            .run(ladder_db(6))
            .unwrap();
        assert_eq!(full.derived_facts, pruned.derived_facts);
        assert_eq!(full.rounds, pruned.rounds);
    }
}
