//! Parser robustness on untrusted input: arbitrary byte soup, mutated
//! valid programs, and pathological nesting must all come back as
//! `Ok`/`Err` — never a panic, never a stack overflow.

use proptest::prelude::*;
use vadalog::parser::parse_program;

const VALID_PROGRAM: &str = r#"
    o1: own(x, y, s), s > 0.5 -> control(x, y).
    o2: company(x) -> control(x, x).
    o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).
    c1: own(x, x, s) -> !.
    company("A").
    own("A", "B", 0.6).
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes, lossily decoded, never panic the parser.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(0u8..=255u8, 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_program(&text);
    }

    /// Token-shaped garbage (the characters the lexer actually cares
    /// about) never panics the parser.
    #[test]
    fn token_soup_never_panics(src in "[a-z0-9_@:,.()<>=!'\" \n*-]{0,200}") {
        let _ = parse_program(&src);
    }

    /// A valid program with one byte overwritten still parses or fails
    /// cleanly.
    #[test]
    fn mutated_program_never_panics(pos in 0usize..1000, byte in 0u8..=255u8) {
        let mut bytes = VALID_PROGRAM.as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_program(&text);
    }

    /// A valid program truncated at any byte still fails cleanly.
    #[test]
    fn truncated_program_never_panics(cut in 0usize..1000) {
        let cut = cut % (VALID_PROGRAM.len() + 1);
        let text = String::from_utf8_lossy(&VALID_PROGRAM.as_bytes()[..cut]);
        let _ = parse_program(&text);
    }
}

/// Deeply nested parentheses must hit the depth guard, not the stack.
#[test]
fn deep_expression_nesting_is_rejected_not_a_stack_overflow() {
    let open = "(".repeat(5000);
    let close = ")".repeat(5000);
    let src = format!("r: p(x), y = {open}x{close} -> q(y).");
    assert!(parse_program(&src).is_err());
}

/// Nesting just under the guard still parses.
#[test]
fn shallow_expression_nesting_still_parses() {
    let open = "(".repeat(20);
    let close = ")".repeat(20);
    let src = format!("r: p(x), y = {open}x{close} + 1 -> q(y).");
    assert!(parse_program(&src).is_ok());
}

/// Unary-minus chains recurse through the same guard.
#[test]
fn long_unary_minus_chain_is_rejected_not_a_stack_overflow() {
    let minuses = "-".repeat(5000);
    let src = format!("r: p(x), y = {minuses}x -> q(y).");
    assert!(parse_program(&src).is_err());
}
