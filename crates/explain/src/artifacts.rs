//! Cached program artifacts: the immutable build product of the
//! explanation pipeline, separated from per-query state so it can be
//! shared — across goals in one process, across worker threads in a
//! server, across pipelines over the same deployed program.
//!
//! The split mirrors the paper's deployment model (Sec. 5): template
//! generation happens *once per application*, while explanation queries
//! arrive continuously. [`ProgramArtifacts`] owns everything the
//! once-per-application stage produces (structural analysis, template
//! catalogs, per-rule fallbacks, construction telemetry);
//! [`ArtifactsBuilder`] runs that stage; the process-wide
//! [`ArtifactCache`] memoizes it by program fingerprint so repeated
//! builds of the same deployment are free; and [`Explainer`] binds the
//! shared artifacts to one chase snapshot to answer queries.
//!
//! Everything here is immutable after construction and `Sync`, which is
//! what makes the serving layer (`serve` crate) possible: N workers
//! answer explanation queries against one `Arc<ProgramArtifacts>` and
//! one `Arc<ChaseOutcome>` with zero copying and zero locking.

use crate::enhance::{checked_enhance, Enhancer};
use crate::error::ExplainError;
use crate::glossary::DomainGlossary;
use crate::mapping::{cover_from, instantiate, step_infos, PathCover};
use crate::pipeline::{Explanation, PipelineReport, PipelineStats, TemplateFlavor};
use crate::structural::{analyze_with, AnalysisConfig, StructuralAnalysis};
use crate::template::{generate, single_rule_path, Template, TemplateStyle};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use vadalog::telemetry::{Budget, RunGuard};
use vadalog::{
    ChaseConfig, ChaseOutcome, DerivationId, DerivationPolicy, Fact, FactId, GoalCone, Program,
    RuleId, Symbol,
};

/// The immutable once-per-application build product of the explanation
/// pipeline: structural analysis, template catalogs and per-rule
/// fallbacks for one `(program, goal)` deployment.
///
/// Construction goes through [`ArtifactsBuilder`] (usually via the
/// process-wide [`ArtifactCache`]); afterwards the artifacts are
/// read-only and freely shareable across threads behind an `Arc`.
#[derive(Clone, Debug)]
pub struct ProgramArtifacts {
    program: Program,
    analysis: StructuralAnalysis,
    deterministic: Vec<Template>,
    enhanced: Vec<Template>,
    /// Per-rule fallback templates (solid, dashed), used for side
    /// derivations no reasoning path absorbs.
    fallbacks: Vec<(Template, Template)>,
    /// The goal's relevance cone over D(Σ), shared with pruned chase
    /// configurations handed out by [`pruned_chase_config`](Self::pruned_chase_config).
    cone: Arc<GoalCone>,
    stats: PipelineStats,
    report: PipelineReport,
}

impl ProgramArtifacts {
    /// Starts an [`ArtifactsBuilder`] for `program` and the goal
    /// predicate.
    pub fn builder<'a>(program: Program, goal: &str) -> ArtifactsBuilder<'a> {
        ArtifactsBuilder {
            program,
            goal: goal.to_owned(),
            glossary: None,
            enhancer: None,
            guard: RunGuard::default(),
            analysis: AnalysisConfig::default(),
        }
    }

    /// The program the artifacts were built for.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The goal (leaf) predicate.
    pub fn goal(&self) -> Symbol {
        self.analysis.goal
    }

    /// The structural analysis (reasoning paths).
    pub fn analysis(&self) -> &StructuralAnalysis {
        &self.analysis
    }

    /// The goal's relevance cone over the dependency graph D(Σ): the
    /// predicates and rules that can contribute (positively or through
    /// `not`) to deriving the goal, closed over SCCs. Computed once at
    /// build time from the same fingerprinted inputs as the rest of the
    /// artifacts, so cached editions share it.
    pub fn goal_cone(&self) -> &Arc<GoalCone> {
        &self.cone
    }

    /// A [`ChaseConfig`] restricted to the goal's relevance cone:
    /// running the chase with it derives exactly the goal facts (and
    /// their full provenance) of an unrestricted run, skipping every
    /// rule outside the cone. Explanations over the pruned outcome are
    /// byte-identical to the full run's for any goal-predicate fact.
    ///
    /// Note that constraints never enter a cone, so a pruned run checks
    /// no constraints — use it for explanation serving, not validation.
    pub fn pruned_chase_config(&self) -> ChaseConfig {
        ChaseConfig::default().with_goal_cone(self.goal())
    }

    /// The generated templates of the given flavour, one per path.
    pub fn templates(&self, flavor: TemplateFlavor) -> &[Template] {
        match flavor {
            TemplateFlavor::Deterministic => &self.deterministic,
            TemplateFlavor::Enhanced => &self.enhanced,
        }
    }

    /// Construction statistics.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// Construction telemetry: stage timings plus template counters.
    pub fn telemetry(&self) -> &PipelineReport {
        &self.report
    }

    /// Replaces the enhanced template at `index` with `text`, enforcing
    /// the token-completeness check. On failure returns the missing token
    /// display names and keeps the previous template (used by the
    /// human-in-the-loop review of [`crate::review`]).
    ///
    /// Requires exclusive ownership; callers holding an
    /// `Arc<ProgramArtifacts>` go through `Arc::make_mut`, which
    /// copy-on-writes a private edition and leaves cached/shared
    /// artifacts untouched.
    pub fn replace_enhanced_template(
        &mut self,
        index: usize,
        text: &str,
    ) -> Result<(), Vec<String>> {
        let Some(current) = self.enhanced.get(index) else {
            return Err(vec![format!("no template with index {index}")]);
        };
        let segments = current.reparse(text)?;
        let replaced = current.with_segments(segments);
        self.enhanced[index] = replaced;
        Ok(())
    }

    /// Answers the explanation query Q_e for a fact id (see
    /// [`ExplanationPipeline::explain_id`](crate::pipeline::ExplanationPipeline::explain_id)
    /// for the covering semantics).
    pub fn explain_id(
        &self,
        outcome: &ChaseOutcome,
        id: FactId,
        flavor: TemplateFlavor,
        policy: DerivationPolicy,
    ) -> Result<Explanation, ExplainError> {
        self.explain_id_governed(outcome, id, flavor, policy, &RunGuard::default())
    }

    /// [`explain_id`](Self::explain_id) under a per-query [`RunGuard`]:
    /// the guard's deadline and cancellation token are checked at every
    /// recursion step, so a slow or stuck query returns
    /// [`ExplainError::ResourceExhausted`] instead of running away. The
    /// serving layer uses this to enforce per-request deadlines — a
    /// goal whose remaining budget is already spent trips on entry.
    pub fn explain_id_governed(
        &self,
        outcome: &ChaseOutcome,
        id: FactId,
        flavor: TemplateFlavor,
        policy: DerivationPolicy,
        guard: &RunGuard,
    ) -> Result<Explanation, ExplainError> {
        if outcome.database.len() <= id.0 as usize {
            return Err(ExplainError::UnknownFact(id));
        }
        let _span = vadalog::span!(
            "explain.query",
            fact = outcome.database.fact(id).to_string()
        );
        if !outcome.graph.is_derived(id) {
            return Err(ExplainError::ExtensionalFact(id));
        }
        let governor = (!guard.is_unlimited()).then(|| (guard, Instant::now()));
        if let Some((guard, start)) = governor {
            artifacts_trip(guard, start)?;
        }

        let mut visited = std::collections::HashSet::new();
        let mut texts: Vec<String> = Vec::new();
        let mut paths: Vec<String> = Vec::new();
        let chase_steps = self.explain_rec(
            outcome,
            id,
            flavor,
            policy,
            governor,
            &mut visited,
            &mut texts,
            &mut paths,
            0,
        )?;

        let support = outcome
            .graph
            .proof(id, policy)
            .facts()
            .into_iter()
            .map(|f| outcome.database.fact(f).clone())
            .collect();

        Ok(Explanation {
            fact: outcome.database.fact(id).clone(),
            text: texts.join(" "),
            paths,
            chase_steps,
            support,
        })
    }

    /// Answers the explanation query for a fact literal.
    pub fn explain_fact(
        &self,
        outcome: &ChaseOutcome,
        fact: &Fact,
        flavor: TemplateFlavor,
        policy: DerivationPolicy,
    ) -> Result<Explanation, ExplainError> {
        self.explain_fact_governed(outcome, fact, flavor, policy, &RunGuard::default())
    }

    /// [`explain_fact`](Self::explain_fact) under a per-query
    /// [`RunGuard`] (see
    /// [`explain_id_governed`](Self::explain_id_governed)).
    pub fn explain_fact_governed(
        &self,
        outcome: &ChaseOutcome,
        fact: &Fact,
        flavor: TemplateFlavor,
        policy: DerivationPolicy,
        guard: &RunGuard,
    ) -> Result<Explanation, ExplainError> {
        let id = outcome
            .lookup(fact)
            .ok_or(ExplainError::UnknownFact(FactId(u32::MAX)))?;
        self.explain_id_governed(outcome, id, flavor, policy, guard)
    }

    /// Produces the *business report* of a chase run: one explanation per
    /// derived fact of the goal predicate, in derivation order.
    pub fn report(
        &self,
        outcome: &ChaseOutcome,
        flavor: TemplateFlavor,
        policy: DerivationPolicy,
    ) -> Result<Vec<Explanation>, ExplainError> {
        let goal = self.analysis.goal;
        outcome
            .database
            .facts_of(goal)
            .iter()
            .filter(|&&id| outcome.graph.is_derived(id))
            .map(|&id| self.explain_id(outcome, id, flavor, policy))
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn explain_rec(
        &self,
        outcome: &ChaseOutcome,
        id: FactId,
        flavor: TemplateFlavor,
        policy: DerivationPolicy,
        governor: Option<(&RunGuard, Instant)>,
        visited: &mut std::collections::HashSet<DerivationId>,
        texts: &mut Vec<String>,
        paths: &mut Vec<String>,
        depth: u32,
    ) -> Result<usize, ExplainError> {
        if depth > 64 {
            return Ok(0);
        }
        if let Some((guard, start)) = governor {
            artifacts_trip(guard, start)?;
        }
        let proof = outcome.graph.proof(id, policy);
        let tau = proof.linearize(&outcome.graph);
        let steps = step_infos(&outcome.graph, &tau, policy);
        // A recursive call may find that a prefix of its spine was already
        // told by the caller's cover; the story resumes mid-proof with
        // reasoning cycles only.
        let start = steps
            .iter()
            .position(|s| !visited.contains(&s.derivation))
            .unwrap_or(steps.len());
        let covering = cover_from(&self.program, &self.analysis, &outcome.graph, &steps, start)?;

        // Everything verbalized by the selected pieces.
        for s in &steps {
            visited.insert(s.derivation);
        }
        for piece in &covering.pieces {
            visited.extend(piece.assignments.values().copied());
        }

        // Side branches not absorbed by any piece: preconditions of this
        // story, explained first. When a side fact's own sub-proof cannot
        // be covered by the enumerated paths (its predicate is not the
        // goal of any path), it is verbalized rule by rule — completeness
        // never depends on path coverage.
        for s in &steps {
            for &side in &s.sides {
                if visited.contains(&side) {
                    continue;
                }
                // The recursion marks the side derivation itself (it is
                // the last spine step of the side fact's proof); the
                // single-rule fallback marks it explicitly.
                let conclusion = outcome.graph.derivation(side).conclusion;
                match self.explain_rec(
                    outcome,
                    conclusion,
                    flavor,
                    policy,
                    governor,
                    visited,
                    texts,
                    paths,
                    depth + 1,
                ) {
                    Ok(_) => {}
                    Err(ExplainError::NoCoveringPath { .. }) => {
                        if visited.insert(side) {
                            self.explain_single(
                                outcome,
                                side,
                                policy,
                                visited,
                                texts,
                                paths,
                                depth + 1,
                            );
                        }
                    }
                    Err(other) => return Err(other),
                }
            }
        }

        let templates = self.templates(flavor);
        for piece in &covering.pieces {
            texts.push(instantiate(
                &templates[piece.path_index],
                piece,
                &outcome.graph,
            ));
            paths.push(self.analysis.paths[piece.path_index].label(&self.program));
        }
        Ok(tau.len())
    }

    /// Verbalizes one derivation with its rule's fallback template,
    /// explaining unvisited derived premises first (depth-first).
    #[allow(clippy::too_many_arguments)]
    fn explain_single(
        &self,
        outcome: &ChaseOutcome,
        did: DerivationId,
        policy: DerivationPolicy,
        visited: &mut std::collections::HashSet<DerivationId>,
        texts: &mut Vec<String>,
        paths: &mut Vec<String>,
        depth: u32,
    ) {
        if depth > 128 {
            return;
        }
        let der = outcome.graph.derivation(did);
        let (rule, contributors, premises) = (der.rule, der.contributors, der.premises.clone());
        for p in premises {
            if !outcome.graph.is_derived(p) {
                continue;
            }
            if let Some(pd) = outcome.graph.choose_derivation(p, policy) {
                if visited.insert(pd) {
                    self.explain_single(outcome, pd, policy, visited, texts, paths, depth + 1);
                }
            }
        }
        let (solid, dashed) = &self.fallbacks[rule.0];
        let template = if contributors > 1 { dashed } else { solid };
        let piece = PathCover {
            path_index: usize::MAX,
            assignments: std::iter::once((0usize, did)).collect(),
            consumed: 0,
            side_used: 0,
        };
        texts.push(instantiate(template, &piece, &outcome.graph));
        paths.push(format!("[{}]", self.program.rule(rule).label));
    }
}

/// Fluent construction of [`ProgramArtifacts`]: the once-per-application
/// stage of the pipeline (structural analysis, template generation,
/// optional enhancement, per-rule fallbacks).
pub struct ArtifactsBuilder<'a> {
    program: Program,
    goal: String,
    glossary: Option<&'a DomainGlossary>,
    enhancer: Option<(&'a dyn Enhancer, u32)>,
    guard: RunGuard,
    analysis: AnalysisConfig,
}

impl std::fmt::Debug for ArtifactsBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactsBuilder")
            .field("goal", &self.goal)
            .field("enhancer", &self.enhancer.map(|(_, retries)| retries))
            .field("guard", &self.guard)
            .finish_non_exhaustive()
    }
}

impl<'a> ArtifactsBuilder<'a> {
    /// Attaches the domain glossary used for verbalization (default:
    /// empty, yielding raw-atom renderings).
    pub fn with_glossary(mut self, glossary: &'a DomainGlossary) -> ArtifactsBuilder<'a> {
        self.glossary = Some(glossary);
        self
    }

    /// Passes each fluent template through `enhancer` under the
    /// token-completeness check, with at most `max_retries` attempts per
    /// template before falling back to the fluent deterministic
    /// generation.
    ///
    /// An enhancer makes the build non-cacheable: it is an opaque
    /// callback, so no fingerprint can prove two builds equivalent.
    pub fn with_enhancer(
        mut self,
        enhancer: &'a dyn Enhancer,
        max_retries: u32,
    ) -> ArtifactsBuilder<'a> {
        self.enhancer = Some((enhancer, max_retries));
        self
    }

    /// Governs the construction with a deadline and/or cancellation token
    /// (round/fact budgets do not apply here). A trip surfaces as
    /// [`ExplainError::ResourceExhausted`]. A non-default guard makes the
    /// build non-cacheable, so trip semantics stay exact.
    pub fn with_guard(mut self, guard: RunGuard) -> ArtifactsBuilder<'a> {
        self.guard = guard;
        self
    }

    /// Overrides the structural-analysis configuration (path caps).
    pub fn with_analysis_config(mut self, config: AnalysisConfig) -> ArtifactsBuilder<'a> {
        self.analysis = config;
        self
    }

    /// The build's cache fingerprint: FNV-1a over the program text, the
    /// goal, the analysis caps and the glossary text. `None` when the
    /// build cannot be keyed — an opaque enhancer is attached, or a
    /// deadline/cancellation guard demands exact trip semantics.
    pub fn fingerprint(&self) -> Option<u64> {
        if self.enhancer.is_some() || self.guard.timeout.is_some() || self.guard.cancel.is_some() {
            return None;
        }
        let mut h = Fnv1a::new();
        h.write(self.program.to_string().as_bytes());
        h.write(self.goal.as_bytes());
        h.write(&self.analysis.max_path_rules.to_le_bytes());
        h.write(&self.analysis.max_paths.to_le_bytes());
        if let Some(g) = self.glossary {
            h.write(g.to_text().as_bytes());
        }
        Some(h.finish())
    }

    /// Builds the artifacts unconditionally (no cache interaction).
    pub fn build(self) -> Result<ProgramArtifacts, ExplainError> {
        let start = Instant::now();
        let _span = vadalog::span!("explain.build", goal = self.goal.to_string());
        let default_glossary;
        let glossary = match self.glossary {
            Some(g) => g,
            None => {
                default_glossary = DomainGlossary::new();
                &default_glossary
            }
        };
        let mut report = PipelineReport::default();

        artifacts_trip(&self.guard, start)?;
        let t = Instant::now();
        let analysis = {
            let _span = vadalog::span!("explain.analysis");
            vadalog::obs::metrics::global()
                .counter(
                    "vadalog_explain_analysis_runs_total",
                    "Structural analyses actually executed (cache misses and uncached builds).",
                )
                .inc();
            analyze_with(&self.program, &self.goal, &self.analysis)?
        };
        report.analysis_ns = t.elapsed().as_nanos() as u64;
        report.paths = analysis.paths.len() as u64;

        let program = self.program;
        let mut deterministic = Vec::with_capacity(analysis.paths.len());
        let mut enhanced = Vec::with_capacity(analysis.paths.len());
        let mut stats = PipelineStats {
            paths: analysis.paths.len(),
            ..PipelineStats::default()
        };
        for (i, path) in analysis.paths.iter().enumerate() {
            artifacts_trip(&self.guard, start)?;
            let t = Instant::now();
            let _span = vadalog::span!("explain.template", path = i);
            let det = generate(&program, glossary, path, i, TemplateStyle::Deterministic);
            let fluent = generate(&program, glossary, path, i, TemplateStyle::Fluent);
            report.template_ns += t.elapsed().as_nanos() as u64;
            let enh = match self.enhancer {
                None => fluent,
                Some((e, retries)) => {
                    let t = Instant::now();
                    let out = checked_enhance(&fluent, e, retries);
                    report.enhance_ns += t.elapsed().as_nanos() as u64;
                    stats.enhancement_retries += out.retries;
                    if out.fell_back {
                        stats.enhancement_fallbacks += 1;
                    }
                    out.template
                }
            };
            deterministic.push(det);
            enhanced.push(enh);
        }
        artifacts_trip(&self.guard, start)?;
        let t = Instant::now();
        let fallbacks = {
            let _span = vadalog::span!("explain.fallbacks");
            (0..program.len())
                .map(|i| {
                    let rule = RuleId(i);
                    let has_agg = program.rule(rule).has_aggregate();
                    let solid = single_rule_path(&program, rule, false);
                    let dashed = single_rule_path(&program, rule, has_agg);
                    (
                        generate(
                            &program,
                            glossary,
                            &solid,
                            usize::MAX,
                            TemplateStyle::Fluent,
                        ),
                        generate(
                            &program,
                            glossary,
                            &dashed,
                            usize::MAX,
                            TemplateStyle::Fluent,
                        ),
                    )
                })
                .collect()
        };
        report.fallback_ns = t.elapsed().as_nanos() as u64;
        report.templates = deterministic.len() as u64;
        report.enhancement_retries = u64::from(stats.enhancement_retries);
        report.enhancement_fallbacks = stats.enhancement_fallbacks as u64;
        report.total_ns = start.elapsed().as_nanos() as u64;
        let registry = vadalog::obs::metrics::global();
        registry
            .counter(
                "vadalog_explain_builds_total",
                "Explanation pipelines built to completion.",
            )
            .inc();
        registry
            .counter(
                "vadalog_explain_paths_total",
                "Reasoning paths surfaced by structural analysis.",
            )
            .add(report.paths);
        registry
            .counter(
                "vadalog_explain_templates_total",
                "Explanation templates generated (deterministic style).",
            )
            .add(report.templates);
        registry
            .counter(
                "vadalog_explain_enhancement_fallbacks_total",
                "Enhancements that fell back to the deterministic template.",
            )
            .add(report.enhancement_fallbacks);
        let cone = Arc::new(GoalCone::compute(&program, analysis.goal));
        Ok(ProgramArtifacts {
            program,
            analysis,
            deterministic,
            enhanced,
            fallbacks,
            cone,
            stats,
            report,
        })
    }

    /// Builds through the process-wide [`ArtifactCache`] when the build
    /// is fingerprintable, sharing the result with every other cached
    /// build of the same deployment; falls back to a private build
    /// otherwise.
    pub fn build_cached(self) -> Result<Arc<ProgramArtifacts>, ExplainError> {
        match self.fingerprint() {
            Some(key) => ArtifactCache::global().get_or_build(key, self),
            None => Ok(Arc::new(self.build()?)),
        }
    }
}

/// Checks the build guard (deadline + cancellation only).
fn artifacts_trip(guard: &RunGuard, start: Instant) -> Result<(), ExplainError> {
    if let Some(token) = &guard.cancel {
        if token.is_cancelled() {
            return Err(ExplainError::ResourceExhausted {
                budget: Budget::Cancelled,
                observed: 0,
            });
        }
    }
    if let Some(timeout) = guard.timeout {
        let elapsed = start.elapsed();
        if elapsed >= timeout {
            return Err(ExplainError::ResourceExhausted {
                budget: Budget::Deadline(timeout),
                observed: elapsed.as_millis() as u64,
            });
        }
    }
    Ok(())
}

/// The process-wide memo of built artifacts, keyed by
/// [`ArtifactsBuilder::fingerprint`]. Hits return the shared `Arc`
/// without re-running analysis or template generation; the
/// `vadalog_explain_artifact_cache_{hits,misses}_total` counters record
/// the traffic.
#[derive(Default)]
pub struct ArtifactCache {
    inner: Mutex<HashMap<u64, Arc<ProgramArtifacts>>>,
}

impl ArtifactCache {
    /// The process-wide cache instance.
    pub fn global() -> &'static ArtifactCache {
        static GLOBAL: OnceLock<ArtifactCache> = OnceLock::new();
        GLOBAL.get_or_init(ArtifactCache::default)
    }

    /// Number of cached artifact sets.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached artifact set (outstanding `Arc`s stay valid).
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }

    /// Returns the cached artifacts under `key`, building and inserting
    /// them via `builder` on a miss.
    ///
    /// The build runs outside the map lock: concurrent misses on the same
    /// key may build twice, but the first insertion wins and later ones
    /// adopt it — callers always converge on one shared edition.
    pub fn get_or_build(
        &self,
        key: u64,
        builder: ArtifactsBuilder<'_>,
    ) -> Result<Arc<ProgramArtifacts>, ExplainError> {
        let registry = vadalog::obs::metrics::global();
        if let Some(hit) = self.inner.lock().unwrap().get(&key) {
            registry
                .counter(
                    "vadalog_explain_artifact_cache_hits_total",
                    "Artifact-cache lookups answered without rebuilding.",
                )
                .inc();
            return Ok(Arc::clone(hit));
        }
        registry
            .counter(
                "vadalog_explain_artifact_cache_misses_total",
                "Artifact-cache lookups that had to build.",
            )
            .inc();
        let built = Arc::new(builder.build()?);
        let mut map = self.inner.lock().unwrap();
        Ok(Arc::clone(map.entry(key).or_insert(built)))
    }
}

/// One explanation endpoint: shared artifacts bound to one chase
/// snapshot, with the query-time knobs (flavour, policy) carried by
/// value. `Clone` is two `Arc` bumps, so every serving worker holds its
/// own `Explainer` over the same underlying data.
///
/// ```no_run
/// # use std::sync::Arc;
/// # use explain::artifacts::{Explainer, ProgramArtifacts};
/// # let artifacts: Arc<ProgramArtifacts> = todo!();
/// # let outcome: Arc<vadalog::ChaseOutcome> = todo!();
/// # let fact: vadalog::Fact = todo!();
/// let explainer = Explainer::for_snapshot(artifacts, outcome);
/// let explanation = explainer.explain(&fact)?;
/// # Ok::<(), explain::ExplainError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Explainer {
    artifacts: Arc<ProgramArtifacts>,
    outcome: Arc<ChaseOutcome>,
    policy: DerivationPolicy,
    flavor: TemplateFlavor,
}

impl Explainer {
    /// Binds `artifacts` to one immutable chase snapshot.
    pub fn for_snapshot(artifacts: Arc<ProgramArtifacts>, outcome: Arc<ChaseOutcome>) -> Explainer {
        Explainer {
            artifacts,
            outcome,
            policy: DerivationPolicy::Richest,
            flavor: TemplateFlavor::Enhanced,
        }
    }

    /// Overrides the derivation-selection policy (default: richest).
    pub fn with_policy(mut self, policy: DerivationPolicy) -> Explainer {
        self.policy = policy;
        self
    }

    /// Overrides the template flavour (default: enhanced).
    pub fn with_flavor(mut self, flavor: TemplateFlavor) -> Explainer {
        self.flavor = flavor;
        self
    }

    /// The bound artifacts.
    pub fn artifacts(&self) -> &Arc<ProgramArtifacts> {
        &self.artifacts
    }

    /// The bound snapshot.
    pub fn outcome(&self) -> &Arc<ChaseOutcome> {
        &self.outcome
    }

    /// Answers the explanation query Q_e = {fact}.
    pub fn explain(&self, fact: &Fact) -> Result<Explanation, ExplainError> {
        self.artifacts
            .explain_fact(&self.outcome, fact, self.flavor, self.policy)
    }

    /// Answers the explanation query for a fact id.
    pub fn explain_id(&self, id: FactId) -> Result<Explanation, ExplainError> {
        self.artifacts
            .explain_id(&self.outcome, id, self.flavor, self.policy)
    }

    /// One explanation per derived goal fact, in derivation order.
    pub fn report(&self) -> Result<Vec<Explanation>, ExplainError> {
        self.artifacts
            .report(&self.outcome, self.flavor, self.policy)
    }
}

/// FNV-1a, the same construction the engine's checkpoint fingerprints
/// use — stable across runs, no dependency.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog::{parse_program, ChaseSession, Database};

    fn reach_program() -> vadalog::ParsedProgram {
        parse_program(
            r#"
            alpha: edge(x, y) -> reach(x, y).
            beta: reach(x, y), edge(y, z) -> reach(x, z).
            edge("a", "b").
            edge("b", "c").
        "#,
        )
        .unwrap()
    }

    #[test]
    fn cached_builds_share_one_edition_and_run_analysis_once() {
        let parsed = reach_program();
        let runs = vadalog::obs::metrics::global().counter(
            "vadalog_explain_analysis_runs_total",
            "Structural analyses actually executed (cache misses and uncached builds).",
        );
        let before = runs.get();
        let a = ProgramArtifacts::builder(parsed.program.clone(), "reach")
            .build_cached()
            .unwrap();
        let b = ProgramArtifacts::builder(parsed.program.clone(), "reach")
            .build_cached()
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache hit must share the edition");
        assert_eq!(runs.get() - before, 1, "analysis must run exactly once");
        // A different analysis configuration is a different deployment.
        let c = ProgramArtifacts::builder(parsed.program, "reach")
            .with_analysis_config(AnalysisConfig {
                max_path_rules: 8,
                max_paths: 2048,
            })
            .build_cached()
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn fingerprint_separates_programs_goals_and_configs() {
        let parsed = reach_program();
        let base = ProgramArtifacts::builder(parsed.program.clone(), "reach")
            .fingerprint()
            .unwrap();
        let other_goal = ProgramArtifacts::builder(parsed.program.clone(), "edge")
            .fingerprint()
            .unwrap();
        assert_ne!(base, other_goal);
        let other_config = ProgramArtifacts::builder(parsed.program.clone(), "reach")
            .with_analysis_config(AnalysisConfig {
                max_path_rules: 4,
                max_paths: 7,
            })
            .fingerprint()
            .unwrap();
        assert_ne!(base, other_config);
        // A guard with a deadline is not fingerprintable.
        let guarded = ProgramArtifacts::builder(parsed.program, "reach")
            .with_guard(RunGuard::default().with_timeout(std::time::Duration::from_secs(1)));
        assert!(guarded.fingerprint().is_none());
    }

    #[test]
    fn artifacts_carry_the_goal_cone_and_hand_out_pruned_configs() {
        let parsed = parse_program(
            r#"
            alpha: edge(x, y) -> reach(x, y).
            beta: reach(x, y), edge(y, z) -> reach(x, z).
            gamma: node(x) -> isolated(x).
        "#,
        )
        .unwrap();
        let artifacts = ProgramArtifacts::builder(parsed.program, "reach")
            .build()
            .unwrap();
        let cone = artifacts.goal_cone();
        assert_eq!(cone.goal(), Symbol::new("reach"));
        assert!(cone.contains(Symbol::new("edge")));
        assert!(!cone.contains(Symbol::new("isolated")));
        assert_eq!(cone.pruned_rule_count(), 1);
        let config = artifacts.pruned_chase_config();
        assert_eq!(config.goal_cone, Some(Symbol::new("reach")));
    }

    #[test]
    fn explainer_answers_queries_over_a_shared_snapshot() {
        let parsed = reach_program();
        let artifacts = ProgramArtifacts::builder(parsed.program.clone(), "reach")
            .build_cached()
            .unwrap();
        let db: Database = parsed.facts.into_iter().collect();
        let outcome = Arc::new(ChaseSession::new(&parsed.program).run(db).unwrap());
        let explainer = Explainer::for_snapshot(artifacts, outcome);
        let e = explainer
            .explain(&Fact::new("reach", vec!["a".into(), "c".into()]))
            .unwrap();
        assert!(!e.text.is_empty());
        assert_eq!(explainer.report().unwrap().len(), 3);
        // Clones answer identically (shared artifacts + snapshot).
        let clone = explainer.clone();
        let e2 = clone
            .explain(&Fact::new("reach", vec!["a".into(), "c".into()]))
            .unwrap();
        assert_eq!(e.text, e2.text);
    }
}
