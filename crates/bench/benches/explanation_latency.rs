//! Criterion benchmarks of explanation generation (the Fig. 18 quantity):
//! per-query latency of `ExplanationPipeline::explain_id` at several proof
//! lengths, for both applications, plus pipeline construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use explain::{ExplanationPipeline, TemplateFlavor};
use finkg::apps::{control, stress};
use vadalog::ChaseSession;

fn bench_control(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18a_company_control");
    for steps in [1usize, 5, 9, 15, 21] {
        let bundle = finkg::control_bundle(steps, 1, 18 + steps as u64);
        let pipeline = ExplanationPipeline::builder(control::program(), control::GOAL)
            .with_glossary(&control::glossary())
            .build()
            .expect("pipeline");
        let outcome = ChaseSession::new(&control::program())
            .run(bundle.database.clone())
            .expect("chase");
        let id = outcome.lookup(&bundle.targets[0]).expect("derived");
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, _| {
            b.iter(|| {
                pipeline
                    .explain_id(&outcome, id, TemplateFlavor::Enhanced)
                    .expect("explainable")
            })
        });
    }
    group.finish();
}

fn bench_stress(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18b_stress_test");
    for steps in [1usize, 7, 13, 21] {
        let bundle = finkg::stress_bundle(steps, 1, 18 + steps as u64);
        let goal = bundle.targets[0].predicate.as_str();
        let pipeline = ExplanationPipeline::builder(stress::program(), goal)
            .with_glossary(&stress::glossary())
            .build()
            .expect("pipeline");
        let outcome = ChaseSession::new(&stress::program())
            .run(bundle.database.clone())
            .expect("chase");
        let id = outcome.lookup(&bundle.targets[0]).expect("derived");
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, _| {
            b.iter(|| {
                pipeline
                    .explain_id(&outcome, id, TemplateFlavor::Enhanced)
                    .expect("explainable")
            })
        });
    }
    group.finish();
}

fn bench_pipeline_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_construction");
    group.bench_function("company_control", |b| {
        b.iter(|| {
            ExplanationPipeline::builder(control::program(), control::GOAL)
                .with_glossary(&control::glossary())
                .build()
                .expect("pipeline")
        })
    });
    group.bench_function("stress_test", |b| {
        b.iter(|| {
            ExplanationPipeline::builder(stress::program(), stress::GOAL)
                .with_glossary(&stress::glossary())
                .build()
                .expect("pipeline")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_control,
    bench_stress,
    bench_pipeline_construction
);
criterion_main!(benches);
