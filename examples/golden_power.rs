//! Golden-power screening: detecting foreign entities that reach a
//! notification-relevant stake in strategic assets through layered
//! shareholdings — the takeover-reasoning use case the paper's group runs
//! on the same Enterprise Knowledge Graph.
//!
//! This application has a second critical node besides the goal: the
//! `control` predicate feeds two different consumer rules, so simple
//! reasoning paths may also end there (Def. 4.2's "leaf or critical
//! node").
//!
//! Run with: `cargo run --example golden_power`

use ekg_explain::finkg::apps::golden_power;
use ekg_explain::prelude::*;

fn main() {
    let program = golden_power::program();
    let pipeline = ExplanationPipeline::builder(program.clone(), golden_power::GOAL)
        .with_glossary(&golden_power::glossary())
        .build()
        .expect("pipeline builds");

    println!("Critical nodes: {:?}", pipeline.analysis().critical);
    println!("Reasoning paths:");
    for p in &pipeline.analysis().paths {
        println!("  {:?} {}", p.kind, p.label(&program));
    }

    // A foreign holding splits a strategic stake below any single-entity
    // threshold across two controlled subsidiaries.
    let mut db = Database::new();
    for c in ["OffshoreCo", "HoldCo", "SubA", "SubB", "GridCo"] {
        db.add("company", &[c.into()]);
    }
    db.add("foreign", &["OffshoreCo".into()]);
    db.add("strategic", &["GridCo".into()]);
    db.add("own", &["OffshoreCo".into(), "HoldCo".into(), 0.7.into()]);
    db.add("own", &["HoldCo".into(), "SubA".into(), 0.9.into()]);
    db.add("own", &["HoldCo".into(), "SubB".into(), 0.6.into()]);
    db.add("own", &["SubA".into(), "GridCo".into(), 0.06.into()]);
    db.add("own", &["SubB".into(), "GridCo".into(), 0.06.into()]);

    let outcome = ChaseSession::new(&program)
        .run(db)
        .expect("chase terminates");
    println!("\nGolden-power alerts:");
    for (_, fact) in outcome.facts_of(golden_power::GOAL) {
        println!("  {fact}");
    }

    for (id, fact) in outcome.facts_of(golden_power::GOAL) {
        if fact.values[0] != Value::str("OffshoreCo") {
            continue;
        }
        let e = pipeline
            .explain_id(&outcome, id, TemplateFlavor::Enhanced)
            .expect("explainable");
        println!("\nQ_e = {{{fact}}} via {:?}:\n{}", e.paths, e.text);
    }
}
