//! Runs every experiment of the evaluation in sequence and writes the
//! outputs under `results/` — the one-command regeneration of the paper's
//! Section 6 (see EXPERIMENTS.md for the paper-vs-measured comparison).

use std::fmt::Write as _;

fn main() -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;

    // Fig. 10.
    let mut fig10 = String::new();
    for app in bench::fig10::run() {
        let _ = writeln!(fig10, "== {} ==", app.name);
        let _ = writeln!(fig10, "simple: {}", app.simple.join("  "));
        let _ = writeln!(fig10, "cycles: {}", app.cycles.join("  "));
    }
    std::fs::write("results/fig10_reasoning_paths.txt", &fig10)?;

    // Templates catalog.
    let mut cat = String::new();
    for app in bench::catalog::run() {
        let _ = writeln!(cat, "==== {} ====", app.name);
        for (label, det, enh) in &app.templates {
            let _ = writeln!(
                cat,
                "[{label}]\n  deterministic: {det}\n  enhanced:      {enh}"
            );
        }
    }
    std::fs::write("results/templates_catalog.txt", &cat)?;

    // Fig. 14.
    let outcome = bench::fig14::run(2025);
    let mut f14 = bench::render_table(&bench::fig14::HEADERS, &bench::fig14::rows(&outcome));
    let _ = writeln!(f14, "overall accuracy: {:.3}", outcome.overall_accuracy());
    std::fs::write("results/fig14_comprehension.txt", &f14)?;

    // Fig. 16.
    let outcome = bench::fig16::run(42);
    let mut f16 = bench::render_table(&bench::fig16::HEADERS, &bench::fig16::rows(&outcome));
    for (a, b, p) in bench::fig16::p_values(&outcome) {
        let _ = writeln!(f16, "{} vs {}: p = {:.4}", a.label(), b.label(), p);
    }
    std::fs::write("results/fig16_expert_study.txt", &f16)?;

    // Fig. 17.
    let mut f17 = String::new();
    for app in [
        bench::fig17::App::CompanyControl,
        bench::fig17::App::StressTest,
    ] {
        let points = bench::fig17::run(app, &app.paper_steps(), 10, 17);
        for prompt in [llm_sim::Prompt::Paraphrase, llm_sim::Prompt::Summarize] {
            let _ = writeln!(f17, "== {app:?} {prompt:?} ==");
            f17.push_str(&bench::render_table(
                &bench::fig17::HEADERS,
                &bench::fig17::rows(&points, prompt),
            ));
        }
    }
    std::fs::write("results/fig17_omissions.txt", &f17)?;

    // Fig. 18.
    let mut f18 = String::new();
    for app in [
        bench::fig17::App::CompanyControl,
        bench::fig17::App::StressTest,
    ] {
        let points = bench::fig18::run(app, &bench::fig18::paper_steps(app), 15, 18);
        let _ = writeln!(f18, "== {app:?} ==");
        f18.push_str(&bench::render_table(
            &bench::fig18::HEADERS,
            &bench::fig18::rows(&points),
        ));
    }
    std::fs::write("results/fig18_performance.txt", &f18)?;

    println!("wrote results/fig10_reasoning_paths.txt");
    println!("wrote results/templates_catalog.txt");
    println!("wrote results/fig14_comprehension.txt");
    println!("wrote results/fig16_expert_study.txt");
    println!("wrote results/fig17_omissions.txt");
    println!("wrote results/fig18_performance.txt");
    Ok(())
}
