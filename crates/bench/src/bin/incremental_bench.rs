//! Regenerates `results/BENCH_incremental.json`: incremental fixpoint
//! maintenance (`ChaseSession::apply_delta`) against a full re-chase on
//! live-update finkg workloads.
//!
//! Three aggregate-free applications exercise the maintenance
//! algorithm:
//!
//! * *joint_exposure* — the closing-edge triangle join: a from-scratch
//!   chase enumerates every two-hop path to probe for the closing
//!   stake, while maintenance only re-matches around the delta's pivots
//!   and replays the (small) surviving model — the workload where the
//!   incremental path pays off;
//! * *sanctions* — exposure chains with stratified negation: additions
//!   propagate semi-naively from the delta pivots, retractions of
//!   `sanctioned` designations both tear down flagged cones (DRed) and
//!   unblock negated `clean_link` matches;
//! * *close_links* — multiplicative ownership chains: a deep recursive
//!   IDB where most chase work is committing facts the replay must
//!   also commit, so maintenance only wins modestly.
//!
//! Each workload applies a ~1% mixed add/retract delta to a chased
//! outcome and times `apply_delta` against a from-scratch chase on the
//! updated EDB, best of several repetitions, single-threaded. Before
//! any timing is written, the maintained outcome is asserted bitwise
//! identical to the from-scratch one (facts, ids, activity, extensional
//! marks, every derivation field).
//!
//! Usage: `cargo run --release -p bench --bin incremental_bench [-- DATE]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;
use vadalog::telemetry::JsonWriter;
use vadalog::{ChaseOutcome, ChaseSession, Delta, DeltaStrategy, Fact, Program, Symbol};

const REPS: usize = 5;
/// The acceptance bar from the issue: maintenance must beat the full
/// re-chase by at least this factor on one workload at a ~1% delta.
const REQUIRED_SPEEDUP: f64 = 5.0;

struct Workload {
    name: &'static str,
    note: &'static str,
    program: Program,
    /// The base EDB in insertion order.
    edb: Vec<Fact>,
    /// Entity count, for drawing fresh delta facts.
    n: usize,
    /// Whether delta additions may be `sanctioned` designations (only
    /// meaningful for programs that mention them).
    add_designations: bool,
}

fn joint_exposure() -> Workload {
    Workload {
        name: "joint_exposure",
        note: "closing-edge triangle join: the chase enumerates every \
               two-hop path to probe the closing stake; maintenance \
               re-matches only around the delta",
        program: finkg::apps::joint_exposure::program(),
        edb: facts_of(finkg::random_ownership(6000, 40, 7)),
        n: 6000,
        add_designations: false,
    }
}

fn sanctions() -> Workload {
    Workload {
        name: "sanctions",
        note: "exposure chains with stratified negation: retracting a \
               sanctioned designation tears down flagged cones and \
               unblocks negated clean_link matches",
        program: finkg::apps::sanctions::program(),
        edb: facts_of(finkg::random_sanctions(4000, 3, 3, 7)),
        n: 4000,
        add_designations: true,
    }
}

fn close_links() -> Workload {
    Workload {
        name: "close_links",
        note: "multiplicative ownership chains: a deep recursive IDB \
               where the delta touches a small derivation cone",
        program: finkg::apps::close_links::program(),
        edb: facts_of(finkg::random_ownership(4000, 3, 7)),
        n: 4000,
        add_designations: false,
    }
}

fn facts_of(db: vadalog::Database) -> Vec<Fact> {
    db.iter().map(|(_, f)| f.clone()).collect()
}

/// A ~1% mixed delta: half retractions of existing EDB facts, half
/// additions of fresh `own` edges (and, where the program screens them,
/// `sanctioned` designations). Mirrors the engine's canonical EDB order
/// into `edb` (survivors keep their relative order, additions append).
fn one_percent_delta(rng: &mut StdRng, w: &Workload, edb: &mut Vec<Fact>) -> Delta {
    let ops = (edb.len() / 100).max(2);
    let mut delta = Delta::new();
    for k in 0..ops {
        if k % 2 == 0 {
            let victim = edb.remove(rng.random_range(0..edb.len()));
            delta = delta.retract(victim);
        } else {
            let fact = loop {
                let (i, j) = (rng.random_range(0..w.n), rng.random_range(0..w.n));
                let candidate = if !w.add_designations || k % 4 == 1 {
                    Fact::new(
                        "own",
                        vec![
                            format!("C{i}").as_str().into(),
                            format!("C{j}").as_str().into(),
                            (rng.random_range(20..95) as f64 / 100.0).into(),
                        ],
                    )
                } else {
                    Fact::new("sanctioned", vec![format!("C{i}").as_str().into()])
                };
                if !edb.contains(&candidate) {
                    break candidate;
                }
            };
            edb.push(fact.clone());
            delta = delta.add(fact);
        }
    }
    delta
}

/// The full structural fingerprint: equality means the maintained and
/// re-chased outcomes are interchangeable downstream.
fn structural(out: &ChaseOutcome) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for (id, fact) in out.database.iter() {
        let _ = writeln!(
            s,
            "{id} {fact} active={} edb={}",
            out.database.is_active(id),
            out.graph.is_extensional(id)
        );
    }
    for d in out.graph.derivations() {
        let _ = writeln!(
            s,
            "r{} {:?} -> {} round={} contrib={}",
            d.rule.0, d.premises, d.conclusion, d.round, d.contributors
        );
    }
    let _ = write!(s, "rounds={}", out.rounds);
    s
}

struct BenchRow {
    name: &'static str,
    note: &'static str,
    edb_facts: usize,
    delta_ops: usize,
    total_facts: usize,
    maintain_ms: f64,
    rechase_ms: f64,
    speedup: f64,
    facts_added: usize,
    facts_removed: usize,
    facts_rederived: usize,
}

fn run(w: &Workload) -> BenchRow {
    let mut rng = StdRng::seed_from_u64(0xBEEF ^ w.edb.len() as u64);
    let mut updated = w.edb.clone();
    let delta = one_percent_delta(&mut rng, w, &mut updated);
    let delta_ops = delta.len();

    let session = ChaseSession::new(&w.program).with_threads(1);
    let initial: Arc<ChaseOutcome> =
        Arc::new(session.run(w.edb.iter().cloned().collect()).unwrap());

    // Correctness gate first: the maintained outcome must be bitwise
    // identical to the from-scratch chase on the updated EDB.
    let mut check = ChaseSession::new(&w.program).with_threads(1);
    check.load(Arc::clone(&initial));
    let applied = check.apply_delta(delta.clone()).unwrap();
    assert_eq!(
        applied.strategy,
        DeltaStrategy::Incremental,
        "{}: workload must take the incremental path",
        w.name
    );
    let scratch = ChaseSession::new(&w.program)
        .with_threads(1)
        .run(updated.iter().cloned().collect())
        .unwrap();
    assert_eq!(
        structural(&scratch),
        structural(&applied.outcome),
        "{}: maintained outcome diverged from the full re-chase",
        w.name
    );

    let mut maintain_ms = f64::INFINITY;
    let mut rechase_ms = f64::INFINITY;
    for _ in 0..REPS {
        let mut session = ChaseSession::new(&w.program).with_threads(1);
        session.load(Arc::clone(&initial));
        let t = Instant::now();
        let out = session.apply_delta(delta.clone()).unwrap();
        maintain_ms = maintain_ms.min(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(&out);

        let db: vadalog::Database = updated.iter().cloned().collect();
        let t = Instant::now();
        let out = ChaseSession::new(&w.program)
            .with_threads(1)
            .run(db)
            .unwrap();
        rechase_ms = rechase_ms.min(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(&out);
    }

    BenchRow {
        name: w.name,
        note: w.note,
        edb_facts: w.edb.len(),
        delta_ops,
        total_facts: applied.outcome.database.len(),
        maintain_ms,
        rechase_ms,
        speedup: rechase_ms / maintain_ms.max(1e-9),
        facts_added: applied.facts_added,
        facts_removed: applied.facts_removed,
        facts_rederived: applied.facts_rederived,
    }
}

fn main() {
    let date = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unreported".into());
    // joint_exposure is the workload the acceptance bar is expected to
    // clear; the other two document where maintenance wins less.
    let workloads = [joint_exposure(), sanctions(), close_links()];
    let _ = Symbol::new("own"); // warm the symbol table outside timing

    let rows: Vec<BenchRow> = workloads.iter().map(run).collect();
    for row in &rows {
        println!(
            "{}: maintain {:.1} ms, re-chase {:.1} ms -> x{:.2} ({} delta ops on {} EDB facts)",
            row.name, row.maintain_ms, row.rechase_ms, row.speedup, row.delta_ops, row.edb_facts
        );
    }
    let max_speedup = rows.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
    assert!(
        max_speedup >= REQUIRED_SPEEDUP,
        "no workload reached the x{REQUIRED_SPEEDUP} acceptance bar (best x{max_speedup:.2})"
    );

    let mut jw = JsonWriter::new();
    jw.open_object();
    jw.field_str("name", "incremental_maintenance");
    jw.field_str("date", &date);
    jw.field_str(
        "description",
        "Incremental fixpoint maintenance (ChaseSession::apply_delta: \
         semi-naive propagation for additions, DRed over-delete/ \
         re-derive for retractions) against a full re-chase on the \
         updated EDB, for a ~1% mixed add/retract delta on live-update \
         finkg workloads. Before timing, the maintained outcome is \
         asserted bitwise identical to the from-scratch chase (facts, \
         ids, activity, extensional marks, every derivation field). \
         Times are best-of-5, single-threaded. Acceptance: speedup >= 5 \
         on at least one workload. Regenerate with `cargo run --release \
         -p bench --bin incremental_bench -- $(date +%F)`.",
    );
    jw.field_f64("required_speedup", REQUIRED_SPEEDUP);
    jw.field_f64("max_speedup", max_speedup);
    jw.key("workloads");
    jw.open_array();
    for row in &rows {
        jw.open_object();
        jw.field_str("workload", row.name);
        jw.field_str("note", row.note);
        jw.field_u64("edb_facts", row.edb_facts as u64);
        jw.field_u64("delta_ops", row.delta_ops as u64);
        jw.field_u64("total_facts", row.total_facts as u64);
        jw.field_f64("maintain_ms", row.maintain_ms);
        jw.field_f64("full_rechase_ms", row.rechase_ms);
        jw.field_f64("speedup_rechase_over_maintain", row.speedup);
        jw.field_u64("facts_added", row.facts_added as u64);
        jw.field_u64("facts_removed", row.facts_removed as u64);
        jw.field_u64("facts_rederived", row.facts_rederived as u64);
        jw.close_object();
    }
    jw.close_array();
    jw.close_object();

    let json = jw.finish();
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_incremental.json", pretty(&json)).expect("write results");
    println!("wrote results/BENCH_incremental.json (max speedup x{max_speedup:.2})");
}

/// Minimal JSON pretty-printer (2-space indent) so the checked-in result
/// diffs cleanly; input is the trusted output of [`JsonWriter`].
fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out.push('\n');
    out
}
