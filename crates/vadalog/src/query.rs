//! Ad-hoc queries: conjunctive pattern matching over a database, without
//! defining rules. Useful for application front ends and tests.

use crate::atom::Atom;
use crate::database::Database;
use crate::engine::match_body;
use crate::error::EvalError;
use crate::expr::{Bindings, Condition};
use crate::program::Program;
use crate::rule::{Head, Literal, Rule};

/// Evaluates a conjunctive query (positive atoms + conditions) against the
/// database, returning one binding set per match.
///
/// ```
/// use vadalog::prelude::*;
/// use vadalog::query::select;
///
/// let mut db = Database::new();
/// db.add("own", &["A".into(), "B".into(), 0.6.into()]);
/// db.add("own", &["B".into(), "C".into(), 0.7.into()]);
///
/// // own(x, z, _), own(z, y, _): two-hop chains.
/// let q = vec![
///     Atom::new("own", vec![Term::var("x"), Term::var("z"), Term::var("s1")]),
///     Atom::new("own", vec![Term::var("z"), Term::var("y"), Term::var("s2")]),
/// ];
/// let rows = select(&mut db, &q, &[]).unwrap();
/// assert_eq!(rows.len(), 1);
/// assert_eq!(rows[0][&Symbol::new("y")], Value::str("C"));
/// ```
pub fn select(
    db: &mut Database,
    atoms: &[Atom],
    conditions: &[Condition],
) -> Result<Vec<Bindings>, EvalError> {
    let rule = Rule {
        label: "__query".to_owned(),
        body: atoms.iter().cloned().map(Literal::pos).collect(),
        conditions: conditions.to_vec(),
        assignments: Vec::new(),
        aggregate: None,
        head: Head::Falsum,
    };
    Ok(match_body(db, &rule)?
        .into_iter()
        .map(|m| m.bindings)
        .collect())
}

/// Checks an extensional database against a program: facts over unknown
/// predicates, facts over intensional predicates (pre-seeded IDB), and
/// arity mismatches are reported as human-readable warnings.
pub fn check_database(program: &Program, db: &Database) -> Vec<String> {
    let mut warnings = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (_, fact) in db.iter() {
        if !seen.insert((fact.predicate, fact.arity())) {
            continue;
        }
        match program.arity(fact.predicate) {
            None => warnings.push(format!(
                "predicate `{}` does not occur in the program (facts will be ignored)",
                fact.predicate
            )),
            Some(a) if a != fact.arity() => warnings.push(format!(
                "predicate `{}` has arity {} in the program but facts of arity {}",
                fact.predicate,
                a,
                fact.arity()
            )),
            Some(_) => {
                if program.is_intensional(fact.predicate) {
                    warnings.push(format!(
                        "predicate `{}` is derived by the program but also present as input",
                        fact.predicate
                    ));
                }
            }
        }
    }
    warnings.sort();
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::parser::parse_program;
    use crate::symbol::Symbol;
    use crate::term::Term;
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["B".into(), "C".into(), 0.3.into()]);
        db.add("own", &["A".into(), "C".into(), 0.8.into()]);
        db
    }

    #[test]
    fn single_atom_select() {
        let mut db = db();
        let rows = select(
            &mut db,
            &[Atom::new(
                "own",
                vec![Term::constant("A"), Term::var("y"), Term::var("s")],
            )],
            &[],
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn conditions_filter_rows() {
        let mut db = db();
        let rows = select(
            &mut db,
            &[Atom::new(
                "own",
                vec![Term::var("x"), Term::var("y"), Term::var("s")],
            )],
            &[Condition::new(
                Expr::var("s"),
                CmpOp::Gt,
                Expr::constant(0.5f64),
            )],
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .all(|r| r[&Symbol::new("s")].as_f64().unwrap() > 0.5));
    }

    #[test]
    fn join_select_binds_shared_variables() {
        let mut db = db();
        let rows = select(
            &mut db,
            &[
                Atom::new("own", vec![Term::var("x"), Term::var("z"), Term::var("s1")]),
                Atom::new("own", vec![Term::var("z"), Term::var("y"), Term::var("s2")]),
            ],
            &[],
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][&Symbol::new("z")], Value::str("B"));
    }

    #[test]
    fn empty_query_yields_one_empty_row() {
        let mut db = db();
        let rows = select(&mut db, &[], &[]).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].is_empty());
    }

    #[test]
    fn check_database_reports_mismatches() {
        let program = parse_program("o1: own(x, y, s), s > 0.5 -> control(x, y).")
            .unwrap()
            .program;
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["A".into(), "B".into()]); // wrong arity
        db.add("unknown", &["X".into()]);
        db.add("control", &["P".into(), "Q".into()]); // pre-seeded IDB
        let warnings = check_database(&program, &db);
        assert_eq!(warnings.len(), 3, "{warnings:?}");
        assert!(warnings.iter().any(|w| w.contains("unknown")));
        assert!(warnings.iter().any(|w| w.contains("arity")));
        assert!(warnings.iter().any(|w| w.contains("also present as input")));
    }

    #[test]
    fn clean_database_has_no_warnings() {
        let program = parse_program("o1: own(x, y, s), s > 0.5 -> control(x, y).")
            .unwrap()
            .program;
        assert!(check_database(&program, &db()).is_empty());
    }
}
