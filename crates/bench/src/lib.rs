//! # bench
//!
//! The experiment harness: one runner per table and figure of the paper's
//! evaluation (Sec. 6), shared between the `fig*` binaries, the Criterion
//! benches and the integration tests.
//!
//! | Paper artefact | Runner | Binary |
//! |---|---|---|
//! | Fig. 10 (reasoning paths)        | [`fig10`]   | `fig10_reasoning_paths` |
//! | Fig. 6/7/11 (templates/glossary) | [`catalog`] | `templates_catalog` |
//! | Fig. 14 (comprehension study)    | [`fig14`]   | `fig14_comprehension` |
//! | Fig. 15/16 (expert study)        | [`fig16`]   | `fig16_expert_study` |
//! | Fig. 17 (LLM omissions)          | [`fig17`]   | `fig17_omissions` |
//! | Fig. 18 (running times)          | [`fig18`]   | `fig18_performance` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod fig10;
pub mod fig14;
pub mod fig16;
pub mod fig17;
pub mod fig18;

/// Renders a markdown-ish table: header row plus aligned data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{:<width$}", c, width = w))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["long".into(), "z".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }
}
