//! End-to-end tests of the request-tracing and debug introspection
//! surface: trace-id echo, `/debug/flight` and `/debug/slow`
//! parse-backs over a live socket, and trace propagation across
//! handler, worker and pipeline spans.

use explain::ProgramArtifacts;
use serve::{ExplainService, HttpServer, ServeConfig, SnapshotHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use vadalog::obs::json::{self, JsonValue};
use vadalog::obs::span::{self, RingCollector};
use vadalog::obs::to_chrome_trace_for;
use vadalog::ChaseSession;

/// The span collector is process-global; tests that install a ring
/// serialize on this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn boot(config: ServeConfig) -> HttpServer {
    let program = finkg::apps::control::program();
    let outcome = ChaseSession::new(&program)
        .run(finkg::scenario::database())
        .unwrap();
    let artifacts = ProgramArtifacts::builder(program, finkg::apps::control::GOAL)
        .with_glossary(&finkg::apps::control::glossary())
        .build_cached()
        .unwrap();
    let service = Arc::new(ExplainService::new(
        artifacts,
        SnapshotHandle::new(outcome),
        config,
    ));
    HttpServer::bind("127.0.0.1:0", service).unwrap()
}

/// One-shot request; returns (status line, head, body).
fn http(addr: std::net::SocketAddr, request: &str) -> (String, String, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(request.as_bytes()).unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    let status = text.lines().next().unwrap_or_default().to_owned();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_owned(), b.to_owned()))
        .unwrap_or((text.clone(), String::new()));
    (status, head, body)
}

fn explain_request(goal: &str, trace_id: Option<&str>) -> String {
    let trace = trace_id
        .map(|t| format!("x-vadalog-trace-id: {t}\r\n"))
        .unwrap_or_default();
    format!(
        "POST /explain HTTP/1.1\r\nHost: x\r\n{trace}Content-Length: {}\r\n\r\n{goal}",
        goal.len()
    )
}

#[test]
fn inbound_trace_id_is_echoed_and_minted_when_absent() {
    let mut server = boot(ServeConfig::default().with_workers(1));
    let addr = server.addr();

    let (status, head, _) = http(
        addr,
        "GET /health HTTP/1.1\r\nHost: x\r\nx-vadalog-trace-id: audit-7\r\n\r\n",
    );
    assert!(status.contains("200"), "{status}");
    assert!(head.contains("x-vadalog-trace-id: audit-7"), "{head}");

    // Without an inbound header the server mints one.
    let (_, head, _) = http(addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(head.contains("x-vadalog-trace-id: vt-"), "{head}");
    server.stop();
}

#[test]
fn health_reports_build_info() {
    let mut server = boot(ServeConfig::default().with_workers(1));
    let (status, _, body) = http(server.addr(), "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(status.contains("200"), "{status}");
    let doc = json::parse(&body).expect("health is valid JSON");
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(
        doc.get("version").and_then(JsonValue::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(doc.get("features").and_then(JsonValue::as_arr).is_some());
    server.stop();
}

#[test]
fn debug_flight_and_slow_parse_back_over_http() {
    // A zero threshold marks every goal slow, so one answered request
    // is guaranteed to populate /debug/slow.
    let mut server = boot(
        ServeConfig::default()
            .with_workers(1)
            .with_slow_query_threshold(Some(Duration::ZERO)),
    );
    let addr = server.addr();
    let goal = "control(\"B\", \"D\").";
    let (status, _, _) = http(addr, &explain_request(goal, Some("debug-parse-test")));
    assert!(status.contains("200"), "{status}");

    let (status, _, body) = http(addr, "GET /debug/flight HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(status.contains("200"), "{status}");
    let doc = json::parse(&body).expect("/debug/flight is valid JSON");
    assert!(doc.get("snapshots_taken").is_some(), "{body}");
    let tail = doc.get("tail").expect("tail object");
    let events = tail
        .get("events")
        .and_then(JsonValue::as_arr)
        .expect("events array");
    // The /explain request above landed an access-log event.
    assert!(
        events.iter().any(|e| {
            e.get("kind").and_then(JsonValue::as_str) == Some("request")
                && e.get("trace_id").and_then(JsonValue::as_str) == Some("debug-parse-test")
        }),
        "{body}"
    );

    let (status, _, body) = http(addr, "GET /debug/slow HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(status.contains("200"), "{status}");
    let doc = json::parse(&body).expect("/debug/slow is valid JSON");
    let slow = doc
        .get("slow")
        .and_then(JsonValue::as_arr)
        .expect("slow array");
    let entry = slow
        .iter()
        .find(|e| e.get("trace_id").and_then(JsonValue::as_str) == Some("debug-parse-test"))
        .unwrap_or_else(|| panic!("no slow entry for the test trace in {body}"));
    assert!(
        entry
            .get("goal")
            .and_then(JsonValue::as_str)
            .is_some_and(|g| g.contains("control")),
        "{body}"
    );
    // The captured span tree includes the worker-side goal span.
    let spans = entry
        .get("spans")
        .and_then(JsonValue::as_arr)
        .expect("spans array");
    assert!(
        spans
            .iter()
            .any(|s| s.get("name").and_then(JsonValue::as_str) == Some("serve.goal")),
        "{body}"
    );
    server.stop();
}

#[test]
fn one_trace_spans_handler_worker_and_pipeline() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let ring = Arc::new(RingCollector::new(1 << 16));
    span::install(ring.clone());
    let mut server = boot(ServeConfig::default().with_workers(2));
    let (status, _, _) = http(
        server.addr(),
        &explain_request("control(\"B\", \"D\").", Some("prop-test-1")),
    );
    server.stop();
    span::uninstall();
    assert!(status.contains("200"), "{status}");

    let spans = ring.drain();
    let trace = to_chrome_trace_for(&spans, "prop-test-1");
    let doc = json::parse(&trace).expect("filtered export is valid JSON");
    let events = doc.as_arr().expect("event array");
    assert!(!events.is_empty(), "no spans carried the request's trace");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    // Handler, worker pool and explanation pipeline all stamped the
    // same trace id.
    for expected in ["serve.request", "serve.goal", "explain.query"] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    // Everything else in the ring (other tests' requests, untraced
    // spans) is excluded by the filter.
    for e in events {
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(JsonValue::as_str),
            Some("prop-test-1")
        );
    }
}
