//! Rule-body expressions: comparisons and algebraic operators.
//!
//! Vadalog rule bodies may contain *conditions* (comparisons such as
//! `s > p1`) and *assignments* (`l = e1 + e2`). Both are modelled here as
//! trees over variables and constants, evaluated under a substitution.

use crate::error::EvalError;
use crate::symbol::Symbol;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A comparison operator usable in rule conditions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Surface-syntax spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    /// Applies the comparison to two values. Incomparable operands make
    /// every operator except `!=` false.
    pub fn apply(self, left: &Value, right: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => left.eq_values(right),
            CmpOp::Ne => !left.eq_values(right),
            _ => match left.partial_cmp_values(right) {
                Some(ord) => matches!(
                    (self, ord),
                    (CmpOp::Gt, Greater)
                        | (CmpOp::Lt, Less)
                        | (CmpOp::Ge, Greater)
                        | (CmpOp::Ge, Equal)
                        | (CmpOp::Le, Less)
                        | (CmpOp::Le, Equal)
                ),
                None => false,
            },
        }
    }
}

/// An arithmetic operator usable in rule expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// Surface-syntax spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// An algebraic expression over variables and constants.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A constant leaf.
    Const(Value),
    /// A variable leaf, resolved from the current substitution.
    Var(Symbol),
    /// A binary arithmetic node.
    Binary {
        /// The operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
}

/// A substitution from variables to ground values, shared by matching and
/// expression evaluation.
pub type Bindings = HashMap<Symbol, Value>;

impl Expr {
    /// A variable leaf.
    pub fn var(name: &str) -> Expr {
        Expr::Var(Symbol::new(name))
    }

    /// A constant leaf.
    pub fn constant(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// A binary node.
    pub fn binary(op: ArithOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Evaluates the expression under `bindings`.
    ///
    /// Arithmetic requires numeric operands; `Int op Int` stays integral
    /// except for division, which always produces a float (the behaviour
    /// business users expect from share arithmetic).
    pub fn eval(&self, bindings: &Bindings) -> Result<Value, EvalError> {
        match self {
            Expr::Const(v) => Ok(*v),
            Expr::Var(name) => bindings
                .get(name)
                .copied()
                .ok_or(EvalError::UnboundVariable(*name)),
            Expr::Binary { op, left, right } => {
                let l = left.eval(bindings)?;
                let r = right.eval(bindings)?;
                apply_arith(*op, l, r)
            }
        }
    }

    /// Collects the variables mentioned by the expression into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::Binary { left, right, .. } => {
                left.collect_vars(out);
                right.collect_vars(out);
            }
        }
    }
}

fn apply_arith(op: ArithOp, l: Value, r: Value) -> Result<Value, EvalError> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            ArithOp::Add => Ok(Value::Int(a.wrapping_add(b))),
            ArithOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
            ArithOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
            ArithOp::Div => {
                if b == 0 {
                    Err(EvalError::DivisionByZero)
                } else {
                    Ok(Value::Float(a as f64 / b as f64))
                }
            }
        },
        _ => {
            let a = l.as_f64().ok_or(EvalError::NonNumericOperand(l))?;
            let b = r.as_f64().ok_or(EvalError::NonNumericOperand(r))?;
            let out = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => {
                    if b == 0.0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    a / b
                }
            };
            if out.is_nan() {
                Err(EvalError::NanResult)
            } else {
                Ok(Value::Float(out))
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{}", v),
            Expr::Var(v) => write!(f, "{}", v),
            Expr::Binary { op, left, right } => {
                write!(f, "{} {} {}", left, op.as_str(), right)
            }
        }
    }
}

/// A comparison condition `left op right` in a rule body.
#[derive(Clone, PartialEq, Debug)]
pub struct Condition {
    /// The left expression.
    pub left: Expr,
    /// The comparison operator.
    pub op: CmpOp,
    /// The right expression.
    pub right: Expr,
}

impl Condition {
    /// Builds a condition.
    pub fn new(left: Expr, op: CmpOp, right: Expr) -> Condition {
        Condition { left, op, right }
    }

    /// Evaluates the condition under `bindings`.
    pub fn holds(&self, bindings: &Bindings) -> Result<bool, EvalError> {
        let l = self.left.eval(bindings)?;
        let r = self.right.eval(bindings)?;
        Ok(self.op.apply(&l, &r))
    }

    /// Collects the variables mentioned by the condition into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        self.left.collect_vars(out);
        self.right.collect_vars(out);
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op.as_str(), self.right)
    }
}

/// An assignment `var = expr` in a rule body (non-aggregate).
#[derive(Clone, PartialEq, Debug)]
pub struct Assignment {
    /// The assigned variable.
    pub var: Symbol,
    /// The defining expression.
    pub expr: Expr,
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.var, self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pairs: &[(&str, Value)]) -> Bindings {
        pairs.iter().map(|(n, v)| (Symbol::new(n), *v)).collect()
    }

    #[test]
    fn comparison_operators_match_semantics() {
        assert!(CmpOp::Gt.apply(&Value::Int(6), &Value::Int(5)));
        assert!(!CmpOp::Gt.apply(&Value::Int(5), &Value::Int(5)));
        assert!(CmpOp::Ge.apply(&Value::Int(5), &Value::Int(5)));
        assert!(CmpOp::Le.apply(&Value::Float(0.5), &Value::Float(0.5)));
        assert!(CmpOp::Ne.apply(&Value::str("a"), &Value::str("b")));
        assert!(CmpOp::Eq.apply(&Value::Int(2), &Value::Float(2.0)));
    }

    #[test]
    fn incomparable_operands_fail_ordering_comparisons() {
        assert!(!CmpOp::Gt.apply(&Value::str("a"), &Value::Int(1)));
        assert!(!CmpOp::Le.apply(&Value::Bool(true), &Value::Int(1)));
        // != is true for incomparable but unequal values.
        assert!(CmpOp::Ne.apply(&Value::str("a"), &Value::Int(1)));
    }

    #[test]
    fn expression_evaluation_promotes_to_float() {
        let e = Expr::binary(ArithOp::Add, Expr::var("x"), Expr::constant(1.5f64));
        let v = e.eval(&b(&[("x", Value::Int(2))])).unwrap();
        assert_eq!(v, Value::Float(3.5));
    }

    #[test]
    fn integer_arithmetic_stays_integral_except_division() {
        let mul = Expr::binary(ArithOp::Mul, Expr::constant(3i64), Expr::constant(4i64));
        assert_eq!(mul.eval(&Bindings::new()).unwrap(), Value::Int(12));
        let div = Expr::binary(ArithOp::Div, Expr::constant(3i64), Expr::constant(4i64));
        assert_eq!(div.eval(&Bindings::new()).unwrap(), Value::Float(0.75));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let div = Expr::binary(ArithOp::Div, Expr::constant(1i64), Expr::constant(0i64));
        assert!(matches!(
            div.eval(&Bindings::new()),
            Err(EvalError::DivisionByZero)
        ));
        let divf = Expr::binary(ArithOp::Div, Expr::constant(1.0f64), Expr::constant(0.0f64));
        assert!(matches!(
            divf.eval(&Bindings::new()),
            Err(EvalError::DivisionByZero)
        ));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let e = Expr::var("zz");
        assert!(matches!(
            e.eval(&Bindings::new()),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn condition_holds_under_bindings() {
        // s > p1 with s=6M, p1=5M  (rule alpha of Ex. 4.3)
        let c = Condition::new(Expr::var("s"), CmpOp::Gt, Expr::var("p1"));
        assert!(c
            .holds(&b(&[("s", Value::Int(6)), ("p1", Value::Int(5))]))
            .unwrap());
        assert!(!c
            .holds(&b(&[("s", Value::Int(4)), ("p1", Value::Int(5))]))
            .unwrap());
    }

    #[test]
    fn collect_vars_walks_the_tree() {
        let e = Expr::binary(
            ArithOp::Add,
            Expr::var("a"),
            Expr::binary(ArithOp::Mul, Expr::var("b"), Expr::constant(2i64)),
        );
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        let names: Vec<_> = vars.iter().map(|v| v.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn display_round_trip_is_readable() {
        let c = Condition::new(Expr::var("ts"), CmpOp::Gt, Expr::constant(0.5f64));
        assert_eq!(c.to_string(), "ts > 0.5");
    }

    #[test]
    fn non_numeric_arithmetic_is_an_error() {
        let e = Expr::binary(ArithOp::Add, Expr::constant("a"), Expr::constant(1i64));
        assert!(matches!(
            e.eval(&Bindings::new()),
            Err(EvalError::NonNumericOperand(_))
        ));
    }
}
