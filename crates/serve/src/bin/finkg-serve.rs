//! `finkg-serve`: a long-lived explanation server over one finkg
//! application.
//!
//! Boots by chasing the selected application's knowledge graph, building
//! (or fetching from the process cache) its explanation artifacts, and
//! then serving explanation queries over HTTP until killed:
//!
//! ```text
//! finkg-serve [--app control|stress|simple-stress|close-links|sanctions|joint-exposure|golden-power]
//!             [--addr 127.0.0.1:7878] [--scale N] [--seed S] [--workers W]
//!             [--max-connections C] [--deadline-ms MS]
//!             [--flight-capacity N] [--slow-query-ms MS] [--pruned]
//! ```
//!
//! `--pruned` runs the boot chase goal-directed: only rules inside the
//! goal's relevance cone fire, which keeps every goal fact (and its
//! provenance) byte-identical to the full chase while skipping work
//! for predicates the goal can never reach. Constraints are skipped
//! too, so a pruned server explains but does not validate.
//!
//! `--max-connections` bounds the concurrent connection-handler pool
//! (excess connections get an immediate `503` + `Retry-After`);
//! `--deadline-ms` sets the per-request deadline (0 disables it);
//! `--flight-capacity` sizes the flight recorder's span ring; and
//! `--slow-query-ms` sets the slow-query capture threshold (default
//! 1000; 0 captures every goal — handy for smoke tests). The flight
//! recorder is installed as the process span sink,
//! so `/debug/flight` always holds the most recent spans and every
//! failure event freezes a snapshot.
//!
//! With `--scale N` the server generates a random graph of `N` entities
//! (seeded, reproducible); without it, the representative Sec. 5
//! scenario is used. Try:
//!
//! ```text
//! curl -s localhost:7878/health
//! curl -s -X POST localhost:7878/explain --data 'control("B", "D").'
//! curl -s localhost:7878/metrics | grep vadalog_serve
//! ```

use explain::{DomainGlossary, ProgramArtifacts};
use serve::{ExplainService, HttpServer, ServeConfig, SnapshotHandle};
use std::sync::Arc;
use vadalog::{ChaseSession, Database, Program};

/// One servable finkg application.
struct App {
    name: &'static str,
    program: Program,
    goal: &'static str,
    glossary: DomainGlossary,
    /// The Sec. 5 scenario EDB, or a seeded random graph at `--scale`.
    database: Box<dyn Fn(Option<usize>, u64) -> Database>,
}

fn apps() -> Vec<App> {
    use finkg::apps::{
        close_links, control, golden_power, joint_exposure, sanctions, simple_stress, stress,
    };
    vec![
        App {
            name: "control",
            program: control::program(),
            goal: control::GOAL,
            glossary: control::glossary(),
            database: Box::new(|scale, seed| match scale {
                Some(n) => finkg::generator::random_ownership(n, 3, seed),
                None => finkg::scenario::database(),
            }),
        },
        App {
            name: "stress",
            program: stress::program(),
            goal: stress::GOAL,
            glossary: stress::glossary(),
            database: Box::new(|scale, seed| match scale {
                Some(n) => finkg::generator::random_debt_network(n, 3, n / 10 + 1, seed),
                None => finkg::scenario::database(),
            }),
        },
        App {
            name: "simple-stress",
            program: simple_stress::program(),
            goal: simple_stress::GOAL,
            glossary: simple_stress::glossary(),
            database: Box::new(|scale, seed| match scale {
                Some(n) => finkg::generator::random_debt_network(n, 3, n / 10 + 1, seed),
                None => finkg::scenario::database(),
            }),
        },
        App {
            name: "close-links",
            program: close_links::program(),
            goal: close_links::GOAL,
            glossary: close_links::glossary(),
            database: Box::new(|scale, seed| match scale {
                Some(n) => finkg::generator::random_ownership(n, 3, seed),
                None => finkg::scenario::database(),
            }),
        },
        App {
            name: "sanctions",
            program: sanctions::program(),
            goal: sanctions::GOAL,
            glossary: sanctions::glossary(),
            database: Box::new(|scale, seed| {
                let n = scale.unwrap_or(40);
                finkg::generator::random_sanctions(n, 3, 7, seed)
            }),
        },
        App {
            name: "joint-exposure",
            program: joint_exposure::program(),
            goal: joint_exposure::GOAL,
            glossary: joint_exposure::glossary(),
            database: Box::new(|scale, seed| {
                let n = scale.unwrap_or(40);
                finkg::generator::random_ownership(n, 6, seed)
            }),
        },
        App {
            name: "golden-power",
            program: golden_power::program(),
            goal: golden_power::GOAL,
            glossary: golden_power::glossary(),
            database: Box::new(|scale, seed| match scale {
                Some(n) => finkg::generator::random_ownership(n, 3, seed),
                None => finkg::scenario::database(),
            }),
        },
    ]
}

struct Args {
    app: String,
    addr: String,
    scale: Option<usize>,
    seed: u64,
    workers: usize,
    max_connections: Option<usize>,
    deadline_ms: Option<u64>,
    flight_capacity: Option<usize>,
    slow_query_ms: Option<u64>,
    pruned: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        app: "control".to_owned(),
        addr: "127.0.0.1:7878".to_owned(),
        scale: None,
        seed: 7,
        workers: 0,
        max_connections: None,
        deadline_ms: None,
        flight_capacity: None,
        slow_query_ms: None,
        pruned: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--app" => args.app = value("--app")?,
            "--addr" => args.addr = value("--addr")?,
            "--scale" => {
                args.scale = Some(
                    value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-connections" => {
                args.max_connections = Some(
                    value("--max-connections")?
                        .parse()
                        .map_err(|e| format!("--max-connections: {e}"))?,
                )
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--flight-capacity" => {
                args.flight_capacity = Some(
                    value("--flight-capacity")?
                        .parse()
                        .map_err(|e| format!("--flight-capacity: {e}"))?,
                )
            }
            "--slow-query-ms" => {
                args.slow_query_ms = Some(
                    value("--slow-query-ms")?
                        .parse()
                        .map_err(|e| format!("--slow-query-ms: {e}"))?,
                )
            }
            "--pruned" => args.pruned = true,
            "--help" | "-h" => {
                println!(
                    "finkg-serve [--app control|stress|simple-stress|close-links|sanctions|joint-exposure|golden-power]\n            [--addr HOST:PORT] [--scale N] [--seed S] [--workers W]\n            [--max-connections C] [--deadline-ms MS]\n            [--flight-capacity N] [--slow-query-ms MS] [--pruned]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("finkg-serve: {e}");
            std::process::exit(2);
        }
    };
    let Some(app) = apps().into_iter().find(|a| a.name == args.app) else {
        eprintln!(
            "finkg-serve: unknown app {:?}; known: {}",
            args.app,
            apps().iter().map(|a| a.name).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    };

    // Artifacts first: with `--pruned` the boot chase needs the goal's
    // relevance cone they carry.
    let artifacts = match ProgramArtifacts::builder(app.program.clone(), app.goal)
        .with_glossary(&app.glossary)
        .build_cached()
    {
        Ok(artifacts) => artifacts,
        Err(e) => {
            eprintln!("finkg-serve: artifact build failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "finkg-serve: artifacts ready ({} reasoning paths, {} templates)",
        artifacts.stats().paths,
        artifacts.templates(explain::TemplateFlavor::Enhanced).len()
    );

    let db = (app.database)(args.scale, args.seed);
    let chase_config = if args.pruned {
        let cone = artifacts.goal_cone();
        eprintln!(
            "finkg-serve: goal-directed chase for {:?} ({} cone predicates, {} of {} rules pruned)",
            app.goal,
            cone.predicate_count(),
            cone.pruned_rule_count(),
            app.program.len()
        );
        let constraints = app
            .program
            .rules()
            .iter()
            .filter(|r| r.is_constraint())
            .count();
        if constraints > 0 {
            eprintln!(
                "finkg-serve: note: --pruned skips the program's {constraints} constraint(s); \
                 this server explains, it does not validate"
            );
        }
        artifacts.pruned_chase_config()
    } else {
        vadalog::ChaseConfig::default()
    };
    eprintln!(
        "finkg-serve: chasing app {:?} over {} facts ...",
        app.name,
        db.len()
    );
    let outcome = match ChaseSession::new(&app.program)
        .with_config(chase_config)
        .run(db)
    {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("finkg-serve: chase failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "finkg-serve: chase done ({} derived facts, {} rounds)",
        outcome.derived_facts, outcome.rounds
    );

    // The flight recorder doubles as the process span sink: spans from
    // every request land in its bounded ring, and each failure event
    // freezes a snapshot served on /debug/flight.
    let flight = vadalog::obs::flight::global();
    if let Some(capacity) = args.flight_capacity {
        flight.set_span_capacity(capacity);
    }
    vadalog::obs::span::install(flight.clone());

    let handle = SnapshotHandle::new(outcome);
    let mut config = ServeConfig::default()
        .with_workers(args.workers)
        .with_app_label(app.name);
    if let Some(max_connections) = args.max_connections {
        config = config.with_max_connections(max_connections);
    }
    if let Some(ms) = args.deadline_ms {
        let deadline = (ms > 0).then(|| std::time::Duration::from_millis(ms));
        config = config.with_request_deadline(deadline);
    }
    if let Some(ms) = args.slow_query_ms {
        // Zero is a threshold, not a disable: every goal gets captured.
        config = config.with_slow_query_threshold(Some(std::time::Duration::from_millis(ms)));
    }
    let service = Arc::new(ExplainService::new(artifacts, handle, config));
    let server = match HttpServer::bind(&args.addr, service) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("finkg-serve: bind {} failed: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!("finkg-serve: listening on http://{}", server.addr());
    println!("  GET  /health    liveness + snapshot version");
    println!("  GET  /ready     readiness (503 while snapshot publishing is degraded)");
    println!("  GET  /metrics   Prometheus metrics");
    println!("  GET  /snapshot  current snapshot summary");
    println!("  GET  /debug/flight  flight recorder (last failure snapshot + live tail)");
    println!("  GET  /debug/slow    slow-query log (span tree per slow goal)");
    println!(
        "  POST /explain   goal fact literals, e.g. {}(...).",
        app.goal
    );

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
