//! The human-in-the-loop template workflow of Sec. 4.4: templates for a
//! deployed KG application are exported once, reviewed/edited by the
//! Vadalog experts who defined the application, and imported back under
//! the same anti-omission check that guards automated enhancement.
//!
//! Run with: `cargo run --example template_review`

use ekg_explain::explain::{
    export_templates, import_templates, ExplanationPipeline, TemplateFlavor,
};
use ekg_explain::finkg::apps::simple_stress;
use ekg_explain::prelude::*;

fn main() {
    let mut pipeline = ExplanationPipeline::builder(simple_stress::program(), simple_stress::GOAL)
        .with_glossary(&simple_stress::glossary())
        .build()
        .expect("pipeline builds");

    // 1. Export the generated templates for expert review.
    let review_file = export_templates(&pipeline);
    println!("--- exported review file (excerpt) ---");
    for line in review_file.lines().take(6) {
        println!("{line}");
    }

    // 2. The expert rewrites template 0 (keeping every token) ...
    let t0 = pipeline.templates(TemplateFlavor::Enhanced)[0].clone();
    let tokens: Vec<String> = t0
        .classes
        .iter()
        .map(|c| format!("<{}>", c.display))
        .collect();
    let edited = format!(
        "[template 0 reviewed]\nHit by a shock of {}, {} cannot cover it with its capital of {} and defaults.\n",
        tokens[1], tokens[0], tokens[2],
    );
    // ... and also tries a sloppy edit that loses a token.
    let sloppy = "[template 1 broken]\nThe institution defaults because of its exposures.\n";

    // 3. Import: the good edit is applied, the sloppy one rejected.
    let report = import_templates(&mut pipeline, &format!("{edited}{sloppy}"));
    println!(
        "\napplied: {}, rejected: {:?}",
        report.applied, report.rejected
    );

    // 4. Explanations now use the reviewed wording — still complete.
    let outcome = ChaseSession::new(&simple_stress::program())
        .run(simple_stress::figure_8_database())
        .expect("chase terminates");
    let e = pipeline
        .explain(&outcome, &Fact::new("default", vec!["A".into()]))
        .expect("explainable");
    println!("\nreviewed explanation of Default(\"A\"):\n{}", e.text);
    assert!(e.text.contains("cannot cover it"));
}
