//! Rules: tuple-generating dependencies with conditions, assignments,
//! monotonic aggregations and (optional) negated atoms.

use crate::atom::Atom;
use crate::expr::{Assignment, Condition, Expr};
use crate::symbol::Symbol;
use std::fmt;

/// Identifier of a rule inside its [`crate::program::Program`] (positional).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RuleId(pub usize);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The aggregation functions supported by the engine (monotonic
/// aggregations in the Vadalog sense).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggFunc {
    /// Sum of the contributions.
    Sum,
    /// Product of the contributions.
    Prod,
    /// Minimum contribution.
    Min,
    /// Maximum contribution.
    Max,
    /// Number of contributions.
    Count,
}

impl AggFunc {
    /// Surface-syntax spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Prod => "prod",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
        }
    }
}

/// An aggregation `result = func(input)` appearing in a rule body.
///
/// The grouping key is implicit, as in Vadalog: all body variables that
/// also occur in the head (other than `result`). Each distinct body match
/// contributes one `input` value to its group.
#[derive(Clone, PartialEq, Debug)]
pub struct Aggregate {
    /// The aggregation function.
    pub func: AggFunc,
    /// The variable receiving the aggregate value.
    pub result: Symbol,
    /// The aggregated expression (usually a plain variable).
    pub input: Expr,
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {}({})",
            self.result,
            self.func.as_str(),
            self.input
        )
    }
}

/// A body literal: a positive or negated atom.
#[derive(Clone, PartialEq, Debug)]
pub struct Literal {
    /// The atom.
    pub atom: Atom,
    /// True for `not R(...)`. Negated atoms must be over extensional
    /// predicates (semipositive fragment).
    pub negated: bool,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Literal {
        Literal {
            atom,
            negated: false,
        }
    }

    /// A negated literal.
    pub fn neg(atom: Atom) -> Literal {
        Literal {
            atom,
            negated: true,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "not {}", self.atom)
        } else {
            write!(f, "{}", self.atom)
        }
    }
}

/// The head of a rule: either a regular atom or falsum (negative
/// constraint, written `-> !` in the surface syntax).
#[derive(Clone, PartialEq, Debug)]
pub enum Head {
    /// A regular TGD head atom. Head variables not bound by the body, an
    /// assignment, or the aggregate are existentially quantified.
    Atom(Atom),
    /// Falsum: the body must never match.
    Falsum,
}

impl Head {
    /// The head atom, if any.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Head::Atom(a) => Some(a),
            Head::Falsum => None,
        }
    }
}

/// A rule (TGD or negative constraint).
///
/// Construct rules with [`RuleBuilder`] or by parsing surface syntax via
/// [`crate::parser::parse_program`].
#[derive(Clone, PartialEq, Debug)]
pub struct Rule {
    /// Human-readable label (e.g. `"o1"`, `"alpha"`); unique in a program.
    pub label: String,
    /// The body literals (at least one positive literal).
    pub body: Vec<Literal>,
    /// Comparison conditions.
    pub conditions: Vec<Condition>,
    /// Non-aggregate assignments, evaluated in order.
    pub assignments: Vec<Assignment>,
    /// At most one aggregation.
    pub aggregate: Option<Aggregate>,
    /// The head.
    pub head: Head,
}

impl Rule {
    /// Positive body atoms, in order.
    pub fn positive_body(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter(|l| !l.negated).map(|l| &l.atom)
    }

    /// Negated body atoms, in order.
    pub fn negated_body(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter(|l| l.negated).map(|l| &l.atom)
    }

    /// True iff this rule carries an aggregation.
    pub fn has_aggregate(&self) -> bool {
        self.aggregate.is_some()
    }

    /// True iff this rule is a negative constraint.
    pub fn is_constraint(&self) -> bool {
        matches!(self.head, Head::Falsum)
    }

    /// All variables bound by the positive body atoms.
    pub fn body_variables(&self) -> Vec<Symbol> {
        let mut vars = Vec::new();
        for atom in self.positive_body() {
            for v in atom.variables() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        vars
    }

    /// Head variables that are existentially quantified: present in the
    /// head but not bound by body, assignments or aggregate result.
    pub fn existential_variables(&self) -> Vec<Symbol> {
        let Head::Atom(head) = &self.head else {
            return Vec::new();
        };
        let bound = self.bound_variables();
        let mut out = Vec::new();
        for v in head.variables() {
            if !bound.contains(&v) && !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// The grouping key of this rule's aggregation: the variables that
    /// stay fixed within one aggregate group. These are the head variables
    /// other than the aggregate result, plus any body variable referenced
    /// by a post-aggregate condition (a condition mentioning the result) —
    /// e.g. in `risk(c,e,t), has_capital(c,p2), l = sum(e), l > p2 ->
    /// default(c)` the key is `{c, p2}`.
    ///
    /// Empty for rules without aggregation.
    pub fn aggregate_group_vars(&self) -> Vec<Symbol> {
        let Some(agg) = &self.aggregate else {
            return Vec::new();
        };
        let mut key = Vec::new();
        if let Head::Atom(h) = &self.head {
            for v in h.variables() {
                if v != agg.result && !key.contains(&v) {
                    key.push(v);
                }
            }
        }
        for c in &self.conditions {
            let mut vars = Vec::new();
            c.collect_vars(&mut vars);
            if vars.contains(&agg.result) {
                for v in vars {
                    if v != agg.result && !key.contains(&v) {
                        key.push(v);
                    }
                }
            }
        }
        key
    }

    /// Variables bound by the body, assignments, or aggregate result.
    pub fn bound_variables(&self) -> Vec<Symbol> {
        let mut bound = self.body_variables();
        for a in &self.assignments {
            if !bound.contains(&a.var) {
                bound.push(a.var);
            }
        }
        if let Some(agg) = &self.aggregate {
            if !bound.contains(&agg.result) {
                bound.push(agg.result);
            }
        }
        bound
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        for lit in &self.body {
            parts.push(lit.to_string());
        }
        for a in &self.assignments {
            parts.push(a.to_string());
        }
        if let Some(agg) = &self.aggregate {
            parts.push(agg.to_string());
        }
        for c in &self.conditions {
            parts.push(c.to_string());
        }
        write!(f, "{}: {} -> ", self.label, parts.join(", "))?;
        match &self.head {
            Head::Atom(a) => write!(f, "{}.", a),
            Head::Falsum => write!(f, "!."),
        }
    }
}

/// Fluent builder for [`Rule`], for programmatic construction in tests,
/// examples and applications.
#[derive(Debug)]
pub struct RuleBuilder {
    label: String,
    body: Vec<Literal>,
    conditions: Vec<Condition>,
    assignments: Vec<Assignment>,
    aggregate: Option<Aggregate>,
}

impl RuleBuilder {
    /// Starts a rule with the given label.
    pub fn new(label: &str) -> RuleBuilder {
        RuleBuilder {
            label: label.to_owned(),
            body: Vec::new(),
            conditions: Vec::new(),
            assignments: Vec::new(),
            aggregate: None,
        }
    }

    /// Adds a positive body atom.
    pub fn body(mut self, atom: Atom) -> Self {
        self.body.push(Literal::pos(atom));
        self
    }

    /// Adds a negated body atom.
    pub fn body_not(mut self, atom: Atom) -> Self {
        self.body.push(Literal::neg(atom));
        self
    }

    /// Adds a comparison condition.
    pub fn condition(mut self, c: Condition) -> Self {
        self.conditions.push(c);
        self
    }

    /// Adds an assignment `var = expr`.
    pub fn assign(mut self, var: &str, expr: Expr) -> Self {
        self.assignments.push(Assignment {
            var: Symbol::new(var),
            expr,
        });
        self
    }

    /// Sets the aggregation `result = func(input)`.
    pub fn aggregate(mut self, func: AggFunc, result: &str, input: Expr) -> Self {
        self.aggregate = Some(Aggregate {
            func,
            result: Symbol::new(result),
            input,
        });
        self
    }

    /// Finishes the rule with a head atom.
    pub fn head(self, atom: Atom) -> Rule {
        Rule {
            label: self.label,
            body: self.body,
            conditions: self.conditions,
            assignments: self.assignments,
            aggregate: self.aggregate,
            head: Head::Atom(atom),
        }
    }

    /// Finishes the rule as a negative constraint.
    pub fn falsum(self) -> Rule {
        Rule {
            label: self.label,
            body: self.body,
            conditions: self.conditions,
            assignments: self.assignments,
            aggregate: self.aggregate,
            head: Head::Falsum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::term::Term;

    fn alpha() -> Rule {
        // Shock(f,s), HasCapital(f,p1), s > p1 -> Default(f)
        RuleBuilder::new("alpha")
            .body(Atom::new("shock", vec![Term::var("f"), Term::var("s")]))
            .body(Atom::new(
                "has_capital",
                vec![Term::var("f"), Term::var("p1")],
            ))
            .condition(Condition::new(Expr::var("s"), CmpOp::Gt, Expr::var("p1")))
            .head(Atom::new("default", vec![Term::var("f")]))
    }

    #[test]
    fn builder_produces_expected_shape() {
        let r = alpha();
        assert_eq!(r.positive_body().count(), 2);
        assert_eq!(r.conditions.len(), 1);
        assert!(!r.has_aggregate());
        assert!(!r.is_constraint());
        assert!(r.existential_variables().is_empty());
    }

    #[test]
    fn aggregate_rule_binds_result() {
        // Default(d), Debts(d,c,v), e = sum(v) -> Risk(c,e)
        let r = RuleBuilder::new("beta")
            .body(Atom::new("default", vec![Term::var("d")]))
            .body(Atom::new(
                "debts",
                vec![Term::var("d"), Term::var("c"), Term::var("v")],
            ))
            .aggregate(AggFunc::Sum, "e", Expr::var("v"))
            .head(Atom::new("risk", vec![Term::var("c"), Term::var("e")]));
        assert!(r.has_aggregate());
        assert!(r.existential_variables().is_empty());
        let bound: Vec<_> = r.bound_variables().iter().map(|v| v.as_str()).collect();
        assert!(bound.contains(&"e"));
    }

    #[test]
    fn existential_variables_are_detected() {
        // Person(x) -> Parent(x, z)   with z existential
        let r = RuleBuilder::new("e1")
            .body(Atom::new("person", vec![Term::var("x")]))
            .head(Atom::new("parent", vec![Term::var("x"), Term::var("z")]));
        let ex: Vec<_> = r
            .existential_variables()
            .iter()
            .map(|v| v.as_str())
            .collect();
        assert_eq!(ex, vec!["z"]);
    }

    #[test]
    fn display_is_readable_surface_syntax() {
        let r = alpha();
        let s = r.to_string();
        assert!(s.starts_with("alpha: shock(f,s), has_capital(f,p1), s > p1 -> default(f)."));
    }

    #[test]
    fn constraint_head_is_falsum() {
        let r = RuleBuilder::new("c1")
            .body(Atom::new("own", vec![Term::var("x"), Term::var("x")]))
            .falsum();
        assert!(r.is_constraint());
        assert!(r.head.atom().is_none());
        assert!(r.to_string().ends_with("!."));
    }

    #[test]
    fn body_variables_deduplicate_preserving_order() {
        let r = alpha();
        let vars: Vec<_> = r.body_variables().iter().map(|v| v.as_str()).collect();
        assert_eq!(vars, vec!["f", "s", "p1"]);
    }
}
