//! The privacy argument of the paper, demonstrated: the template-based
//! pipeline touches an LLM only with *templates* (rules + glossary, never
//! data), while the baseline ships the full materialized explanation to
//! the LLM — and loses constants on long proofs.
//!
//! This example builds a long control chain, explains it three ways
//! (template-based; LLM paraphrase; LLM summary) and reports which
//! constants of the proof survived in each output (Sec. 6.3).
//!
//! Run with: `cargo run --example privacy_pipeline`

use ekg_explain::finkg::apps::control;
use ekg_explain::prelude::*;
use ekg_explain::studies::proof_constants;

fn main() {
    // A 12-step control chain: long enough for the LLM to lose detail.
    let bundle = ekg_explain::finkg::control_bundle(12, 1, 99);
    let program = control::program();
    let glossary = control::glossary();

    // The paper's pipeline may use an LLM to enhance the *templates*
    // (pre-computed, data-free); the anti-omission check retries or falls
    // back when the LLM drops a token.
    let llm_for_templates = SimulatedLlm::new(Prompt::Paraphrase, 7);
    let pipeline = ExplanationPipeline::builder(program.clone(), control::GOAL)
        .with_glossary(&glossary)
        .with_enhancer(&llm_for_templates, 3)
        .build()
        .expect("pipeline builds");
    println!(
        "Template enhancement: {} paths, {} retries, {} fallbacks (tokens always preserved)",
        pipeline.stats().paths,
        pipeline.stats().enhancement_retries,
        pipeline.stats().enhancement_fallbacks
    );

    let outcome = ChaseSession::new(&program)
        .run(bundle.database.clone())
        .expect("chase terminates");
    let id = outcome.lookup(&bundle.targets[0]).expect("derived");
    let constants = proof_constants(&outcome, id, &glossary);
    println!("\nThe proof uses {} distinct constants.", constants.len());

    // Method 1: template-based (no data leaves the process).
    let template_text = pipeline
        .explain_id(&outcome, id, TemplateFlavor::Enhanced)
        .expect("explainable")
        .text;

    // Baseline: the deterministic explanation is shipped to the LLM.
    let deterministic = pipeline
        .explain_id(&outcome, id, TemplateFlavor::Deterministic)
        .expect("explainable")
        .text;
    let paraphrase = SimulatedLlm::new(Prompt::Paraphrase, 7).rewrite(&deterministic, 0);
    let summary = SimulatedLlm::new(Prompt::Summarize, 7).rewrite(&deterministic, 0);

    for (name, text, shares_data) in [
        ("template-based", &template_text, false),
        ("LLM paraphrase", &paraphrase, true),
        ("LLM summary", &summary, true),
    ] {
        let retained = ekg_explain::llm_sim::retained_ratio(text, &constants);
        println!(
            "  {name:15} retained {:>5.1}% of constants | data sent to LLM: {}",
            retained * 100.0,
            if shares_data {
                "YES (full instance)"
            } else {
                "no (templates only)"
            }
        );
    }

    println!("\n--- template-based explanation ---\n{template_text}");
}
