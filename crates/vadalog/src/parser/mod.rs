//! Parser for the Vadalog surface syntax.
//!
//! Grammar (statements end with `.`):
//!
//! ```text
//! statement := [label ":"] body "->" head "."     rule
//!            | atom "."                            ground fact
//! body      := item ("," item)*
//! item      := "not" atom | atom | var "=" agg "(" expr ")"
//!            | var "=" expr | expr cmp expr
//! head      := atom | "!"
//! atom      := pred "(" term ("," term)* ")"
//! term      := var | number | string | "true" | "false"
//! agg       := "sum" | "prod" | "min" | "max" | "count"
//! cmp       := ">" | "<" | ">=" | "<=" | "==" | "!="
//! ```
//!
//! Identifiers inside atom argument lists are variables; string constants
//! must be quoted. Comments run from `%` or `//` to end of line.

mod lexer;

pub use lexer::{tokenize, Token, TokenKind};

use crate::atom::{Atom, Fact};
use crate::error::{ParseError, ProgramError};
use crate::expr::{ArithOp, CmpOp, Condition, Expr};
use crate::program::Program;
use crate::rule::{AggFunc, Head, Literal, Rule};
use crate::symbol::Symbol;
use crate::term::Term;
use crate::value::Value;

/// The result of parsing a program text: validated rules plus any ground
/// facts declared inline.
#[derive(Clone, Debug)]
pub struct ParsedProgram {
    /// The validated rule set.
    pub program: Program,
    /// Ground facts declared in the text.
    pub facts: Vec<Fact>,
}

/// Errors from parsing or subsequent validation.
#[derive(Debug)]
pub enum ParseOrValidateError {
    /// Syntax error.
    Parse(ParseError),
    /// The parsed rules failed validation.
    Validate(ProgramError),
}

impl std::fmt::Display for ParseOrValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseOrValidateError::Parse(e) => write!(f, "{}", e),
            ParseOrValidateError::Validate(e) => write!(f, "{}", e),
        }
    }
}

impl std::error::Error for ParseOrValidateError {}

impl From<ParseError> for ParseOrValidateError {
    fn from(e: ParseError) -> Self {
        ParseOrValidateError::Parse(e)
    }
}

impl From<ProgramError> for ParseOrValidateError {
    fn from(e: ProgramError) -> Self {
        ParseOrValidateError::Validate(e)
    }
}

/// Parses and validates a program text.
pub fn parse_program(input: &str) -> Result<ParsedProgram, ParseOrValidateError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let (rules, facts) = p.statements()?;
    let program = Program::new(rules)?;
    Ok(ParsedProgram { program, facts })
}

/// Maximum nesting depth of expressions (`(((...)))`, `----x`). The
/// recursive-descent expression grammar recurses once per nesting level;
/// without a cap, a few thousand bytes of `(` from an untrusted program
/// would overflow the stack — an abort no caller can catch. 128 levels is
/// far beyond any legitimate arithmetic expression.
const MAX_EXPR_DEPTH: u32 = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current expression-nesting depth, guarded against
    /// [`MAX_EXPR_DEPTH`] in the one funnel both recursion paths share
    /// ([`Parser::atom_expr`]).
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let t = &self.tokens[self.pos];
        ParseError {
            line: t.line,
            column: t.column,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == &kind {
            self.next();
            Ok(())
        } else {
            Err(self.error(format!("expected {}", what)))
        }
    }

    fn statements(&mut self) -> Result<(Vec<Rule>, Vec<Fact>), ParseError> {
        let mut rules = Vec::new();
        let mut facts = Vec::new();
        while self.peek() != &TokenKind::Eof {
            self.statement(&mut rules, &mut facts)?;
        }
        Ok((rules, facts))
    }

    fn statement(
        &mut self,
        rules: &mut Vec<Rule>,
        facts: &mut Vec<Fact>,
    ) -> Result<(), ParseError> {
        // Optional label: ident ':' not followed by '('.
        let mut label: Option<String> = None;
        if let (TokenKind::Ident(name), TokenKind::Colon) = (self.peek(), self.peek2()) {
            label = Some(name.clone());
            self.next();
            self.next();
        }

        // A statement that is a single all-ground atom followed by '.' is
        // a fact (only without a label).
        if label.is_none() {
            if let Some(fact) = self.try_fact()? {
                facts.push(fact);
                return Ok(());
            }
        }

        let mut body: Vec<Literal> = Vec::new();
        let mut conditions = Vec::new();
        let mut assignments = Vec::new();
        let mut aggregate = None;

        loop {
            self.body_item(&mut body, &mut conditions, &mut assignments, &mut aggregate)?;
            match self.peek() {
                TokenKind::Comma => {
                    self.next();
                }
                TokenKind::Arrow => break,
                _ => return Err(self.error("expected `,` or `->`")),
            }
        }
        self.expect(TokenKind::Arrow, "`->`")?;

        let head = if self.peek() == &TokenKind::Bang {
            self.next();
            Head::Falsum
        } else {
            Head::Atom(self.atom()?)
        };
        self.expect(TokenKind::Dot, "`.`")?;

        let label = label.unwrap_or_else(|| format!("r{}", rules.len() + 1));
        rules.push(Rule {
            label,
            body,
            conditions,
            assignments,
            aggregate,
            head,
        });
        Ok(())
    }

    /// Tries to parse a ground fact `pred(c1,...,cn).`; backtracks and
    /// returns `None` if the statement is not a fact.
    fn try_fact(&mut self) -> Result<Option<Fact>, ParseError> {
        let start = self.pos;
        let TokenKind::Ident(pred) = self.peek().clone() else {
            return Ok(None);
        };
        if self.peek2() != &TokenKind::LParen {
            return Ok(None);
        }
        self.next();
        self.next();
        let mut values = Vec::new();
        if self.peek() == &TokenKind::RParen {
            self.next();
            if self.peek() == &TokenKind::Dot {
                self.next();
                return Ok(Some(Fact::new(&pred, values)));
            }
            self.pos = start;
            return Ok(None);
        }
        loop {
            match self.peek().clone() {
                TokenKind::Str(s) => {
                    values.push(Value::str(&s));
                    self.next();
                }
                TokenKind::Int(i) => {
                    values.push(Value::Int(i));
                    self.next();
                }
                TokenKind::Float(f) => {
                    values.push(Value::Float(f));
                    self.next();
                }
                TokenKind::Minus => {
                    self.next();
                    match self.peek().clone() {
                        TokenKind::Int(i) => {
                            values.push(Value::Int(-i));
                            self.next();
                        }
                        TokenKind::Float(f) => {
                            values.push(Value::Float(-f));
                            self.next();
                        }
                        _ => {
                            self.pos = start;
                            return Ok(None);
                        }
                    }
                }
                TokenKind::Ident(w) if w == "true" || w == "false" => {
                    values.push(Value::Bool(w == "true"));
                    self.next();
                }
                _ => {
                    // Not ground: backtrack, let rule parsing handle it.
                    self.pos = start;
                    return Ok(None);
                }
            }
            match self.peek() {
                TokenKind::Comma => {
                    self.next();
                }
                TokenKind::RParen => {
                    self.next();
                    break;
                }
                _ => {
                    self.pos = start;
                    return Ok(None);
                }
            }
        }
        if self.peek() == &TokenKind::Dot {
            self.next();
            Ok(Some(Fact::new(&pred, values)))
        } else {
            self.pos = start;
            Ok(None)
        }
    }

    fn body_item(
        &mut self,
        body: &mut Vec<Literal>,
        conditions: &mut Vec<Condition>,
        assignments: &mut Vec<crate::expr::Assignment>,
        aggregate: &mut Option<crate::rule::Aggregate>,
    ) -> Result<(), ParseError> {
        // `not atom`
        if let TokenKind::Ident(w) = self.peek() {
            if w == "not" && matches!(self.peek2(), TokenKind::Ident(_)) {
                self.next();
                let atom = self.atom()?;
                body.push(Literal::neg(atom));
                return Ok(());
            }
        }
        // atom
        if matches!(self.peek(), TokenKind::Ident(_)) && self.peek2() == &TokenKind::LParen {
            let atom = self.atom()?;
            body.push(Literal::pos(atom));
            return Ok(());
        }
        // var '=' (aggregate | expr)
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.peek2() == &TokenKind::Assign {
                self.next();
                self.next();
                if let TokenKind::Ident(func) = self.peek().clone() {
                    if let Some(agg_func) = agg_func(&func) {
                        if self.peek2() == &TokenKind::LParen {
                            if aggregate.is_some() {
                                return Err(self.error("at most one aggregation per rule"));
                            }
                            self.next(); // func
                            self.next(); // (
                            let input = self.expr()?;
                            self.expect(TokenKind::RParen, "`)`")?;
                            *aggregate = Some(crate::rule::Aggregate {
                                func: agg_func,
                                result: Symbol::new(&name),
                                input,
                            });
                            return Ok(());
                        }
                    }
                }
                let expr = self.expr()?;
                assignments.push(crate::expr::Assignment {
                    var: Symbol::new(&name),
                    expr,
                });
                return Ok(());
            }
        }
        // condition: expr cmp expr
        let left = self.expr()?;
        let op = match self.peek() {
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Le => CmpOp::Le,
            TokenKind::EqEq => CmpOp::Eq,
            TokenKind::NotEq => CmpOp::Ne,
            _ => return Err(self.error("expected a comparison operator")),
        };
        self.next();
        let right = self.expr()?;
        conditions.push(Condition::new(left, op, right));
        Ok(())
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let TokenKind::Ident(pred) = self.peek().clone() else {
            return Err(self.error("expected a predicate name"));
        };
        self.next();
        self.expect(TokenKind::LParen, "`(`")?;
        let mut terms = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                terms.push(self.term()?);
                match self.peek() {
                    TokenKind::Comma => {
                        self.next();
                    }
                    TokenKind::RParen => break,
                    _ => return Err(self.error("expected `,` or `)` in atom")),
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        Ok(Atom {
            predicate: Symbol::new(&pred),
            terms,
        })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(w) if w == "true" => {
                self.next();
                Ok(Term::constant(true))
            }
            TokenKind::Ident(w) if w == "false" => {
                self.next();
                Ok(Term::constant(false))
            }
            TokenKind::Ident(name) => {
                self.next();
                Ok(Term::var(&name))
            }
            TokenKind::Int(i) => {
                self.next();
                Ok(Term::constant(i))
            }
            TokenKind::Float(f) => {
                self.next();
                Ok(Term::constant(f))
            }
            TokenKind::Str(s) => {
                self.next();
                Ok(Term::Const(Value::str(&s)))
            }
            TokenKind::Minus => {
                self.next();
                match self.peek().clone() {
                    TokenKind::Int(i) => {
                        self.next();
                        Ok(Term::constant(-i))
                    }
                    TokenKind::Float(f) => {
                        self.next();
                        Ok(Term::constant(-f))
                    }
                    _ => Err(self.error("expected a number after `-`")),
                }
            }
            _ => Err(self.error("expected a term")),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.next();
            let right = self.mul_expr()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.atom_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.next();
            let right = self.atom_expr()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn atom_expr(&mut self) -> Result<Expr, ParseError> {
        // Both recursion paths of the expression grammar (`(`→expr and
        // unary minus) pass through here, so this single guard bounds the
        // parser's stack use on any input.
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(self.error("expression nesting too deep"));
        }
        self.depth += 1;
        let result = self.atom_expr_inner();
        self.depth -= 1;
        result
    }

    fn atom_expr_inner(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.next();
                Ok(Expr::constant(i))
            }
            TokenKind::Float(f) => {
                self.next();
                Ok(Expr::constant(f))
            }
            TokenKind::Str(s) => {
                self.next();
                Ok(Expr::Const(Value::str(&s)))
            }
            TokenKind::Ident(name) => {
                self.next();
                Ok(Expr::var(&name))
            }
            TokenKind::Minus => {
                self.next();
                let inner = self.atom_expr()?;
                Ok(Expr::binary(ArithOp::Sub, Expr::constant(0i64), inner))
            }
            TokenKind::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            _ => Err(self.error("expected an expression")),
        }
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name {
        "sum" => Some(AggFunc::Sum),
        "prod" => Some(AggFunc::Prod),
        "min" => Some(AggFunc::Min),
        "max" => Some(AggFunc::Max),
        "count" => Some(AggFunc::Count),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_company_control_program() {
        let text = r#"
            % Sec. 5 company control
            o1: own(x, y, s), s > 0.5 -> control(x, y).
            o2: company(x) -> control(x, x).
            o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).
        "#;
        let parsed = parse_program(text).unwrap();
        assert_eq!(parsed.program.len(), 3);
        let (_, o3) = parsed.program.rule_by_label("o3").unwrap();
        assert!(o3.has_aggregate());
        assert_eq!(o3.conditions.len(), 1);
        assert_eq!(o3.positive_body().count(), 2);
    }

    #[test]
    fn parses_inline_facts() {
        let text = r#"
            own("A", "B", 0.6).
            company("A").
            shock("A", 15).
            temp("X", -3).
            o1: own(x, y, s), s > 0.5 -> control(x, y).
        "#;
        let parsed = parse_program(text).unwrap();
        assert_eq!(parsed.facts.len(), 4);
        assert_eq!(parsed.facts[0].predicate, Symbol::new("own"));
        assert_eq!(parsed.facts[3].values[1], Value::Int(-3));
    }

    #[test]
    fn parses_head_constants_and_strings() {
        let text = r#"
            o5: default(d), long_term_debts(d, c, v), el = sum(v) -> risk(c, el, "long").
        "#;
        let parsed = parse_program(text).unwrap();
        let rule = &parsed.program.rules()[0];
        let head = rule.head.atom().unwrap();
        assert_eq!(head.terms[2], Term::Const(Value::str("long")));
    }

    #[test]
    fn parses_negation_and_constraints() {
        let text = r#"
            r1: own(x, y, s), not excluded(x) -> candidate(x, y).
            c1: own(x, x, s) -> !.
        "#;
        let parsed = parse_program(text).unwrap();
        assert_eq!(parsed.program.rules()[0].negated_body().count(), 1);
        assert!(parsed.program.rules()[1].is_constraint());
    }

    #[test]
    fn parses_arithmetic_assignments_with_precedence() {
        let text = "r: p(x, y), z = x + y * 2 -> q(z).";
        let parsed = parse_program(text).unwrap();
        let rule = &parsed.program.rules()[0];
        assert_eq!(rule.assignments.len(), 1);
        // x + (y * 2). The panic below is a test assertion, not a parser
        // code path: production parsing never panics on malformed input
        // (see the parser_fuzz integration tests), and this module's only
        // panic lives inside #[cfg(test)].
        let Expr::Binary { op, right, .. } = &rule.assignments[0].expr else {
            panic!("expected binary expression");
        };
        assert_eq!(*op, ArithOp::Add);
        assert!(matches!(
            **right,
            Expr::Binary {
                op: ArithOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn auto_labels_are_assigned() {
        let text = "p(x) -> q(x). q(x) -> r(x).";
        let parsed = parse_program(text).unwrap();
        assert_eq!(parsed.program.rules()[0].label, "r1");
        assert_eq!(parsed.program.rules()[1].label, "r2");
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let err = parse_program("o1: own(x, y -> control(x).").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("parse error"), "got: {msg}");
    }

    #[test]
    fn validation_errors_surface() {
        // Condition over an unbound variable.
        let err = parse_program("r: p(x), zz > 1 -> q(x).").unwrap_err();
        assert!(matches!(err, ParseOrValidateError::Validate(_)));
    }

    #[test]
    fn equality_condition_uses_double_equals() {
        let text = r#"r: risk(c, e, t), t == "long" -> long_risk(c, e)."#;
        let parsed = parse_program(text).unwrap();
        assert_eq!(parsed.program.rules()[0].conditions.len(), 1);
    }

    #[test]
    fn stress_test_program_round_trips() {
        let text = r#"
            o4: shock(f, s), has_capital(f, p1), s > p1 -> default(f).
            o5: default(d), long_term_debts(d, c, v), el = sum(v) -> risk(c, el, "long").
            o6: default(d), short_term_debts(d, c, v), es = sum(v) -> risk(c, es, "short").
            o7: risk(c, e, t), has_capital(c, p2), l = sum(e), l > p2 -> default(c).
        "#;
        let parsed = parse_program(text).unwrap();
        assert_eq!(parsed.program.len(), 4);
        for label in ["o4", "o5", "o6", "o7"] {
            assert!(parsed.program.rule_by_label(label).is_some());
        }
    }
}
