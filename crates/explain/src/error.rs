//! Error types of the explanation pipeline.
//!
//! The error surface mirrors the engine's governed design: resource trips
//! (a pipeline deadline or cancellation, see
//! [`PipelineBuilder::with_guard`](crate::pipeline::PipelineBuilder::with_guard))
//! surface as [`ExplainError::ResourceExhausted`] with the same
//! [`Budget`] vocabulary as
//! [`ChaseError::ResourceExhausted`](vadalog::ChaseError).

use std::fmt;
use vadalog::telemetry::Budget;
use vadalog::{FactId, Symbol};

/// Errors raised while building or applying explanations.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm, so future variants are non-breaking.
#[non_exhaustive]
#[derive(Clone, PartialEq, Debug)]
pub enum ExplainError {
    /// The requested goal predicate does not occur in the program.
    UnknownGoal {
        /// The requested predicate.
        goal: Symbol,
    },
    /// The fact to explain is not present in the chase outcome.
    UnknownFact(FactId),
    /// The fact to explain is extensional; there is nothing to explain.
    ExtensionalFact(FactId),
    /// No combination of reasoning paths covers the proof's chase steps
    /// (should not happen for paths produced by the structural analysis of
    /// the same program; indicates a foreign chase graph).
    NoCoveringPath {
        /// Index of the first uncovered chase step.
        at_step: usize,
    },
    /// Path enumeration hit the configured cap before completing.
    PathExplosion {
        /// The configured cap.
        cap: usize,
    },
    /// An enhanced template lost tokens and no fallback was allowed.
    IncompleteTemplate {
        /// The missing token display names.
        missing: Vec<String>,
    },
    /// A pipeline resource budget tripped (deadline or cancellation, see
    /// [`RunGuard`](vadalog::telemetry::RunGuard)); same family as
    /// [`ChaseError::ResourceExhausted`](vadalog::ChaseError).
    ResourceExhausted {
        /// The budget that tripped.
        budget: Budget,
        /// The observed value at the trip point (elapsed milliseconds for
        /// a deadline; 0 for cancellation).
        observed: u64,
    },
    /// Restoring a chase outcome from a checkpoint snapshot failed (see
    /// [`ExplanationPipeline::restore_outcome`](crate::pipeline::ExplanationPipeline::restore_outcome)).
    ///
    /// Carries the rendered underlying error rather than the error value:
    /// `ExplainError` is `Clone + PartialEq` and the engine's load errors
    /// (wrapping `std::io::Error`) are neither.
    Restore {
        /// The rendered load or resume failure.
        detail: String,
    },
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::UnknownGoal { goal } => {
                write!(f, "goal predicate `{}` not in program", goal)
            }
            ExplainError::UnknownFact(id) => write!(f, "fact {} not in the chase outcome", id),
            ExplainError::ExtensionalFact(id) => {
                write!(f, "fact {} is extensional input, not derived knowledge", id)
            }
            ExplainError::NoCoveringPath { at_step } => {
                write!(f, "no reasoning path covers chase step {}", at_step)
            }
            ExplainError::PathExplosion { cap } => {
                write!(f, "reasoning-path enumeration exceeded the cap of {}", cap)
            }
            ExplainError::IncompleteTemplate { missing } => {
                write!(f, "enhanced template lost tokens: {}", missing.join(", "))
            }
            ExplainError::Restore { detail } => {
                write!(f, "restoring the chase outcome failed: {}", detail)
            }
            ExplainError::ResourceExhausted { budget, observed } => match budget {
                Budget::Cancelled => write!(f, "explanation pipeline cancelled"),
                _ => write!(
                    f,
                    "explanation pipeline exceeded its {} (observed {})",
                    budget, observed
                ),
            },
        }
    }
}

impl std::error::Error for ExplainError {}
