//! Phrase tables of the simulated LLM: paraphrase variants of the
//! verbalizer's stock phrases.

/// Alternatives for sentence-initial connectives. The first entry of each
/// group is the verbalizer's own phrasing (kept as one of the choices).
pub const OPENERS: &[&[&str]] = &[
    &["Since ", "Given that ", "Because ", "As "],
    &[
        "As a result, since ",
        "Consequently, as ",
        "It follows that, since ",
        "Hence, as ",
    ],
    &[
        "In turn, since ",
        "Subsequently, given that ",
        "Further, because ",
    ],
    &["Then, since ", "Next, as ", "Afterwards, because "],
];

/// Mid-sentence phrase substitutions `(from, to)` applied probabilistically.
pub const REWRITES: &[(&str, &[&str])] = &[
    (
        ", then ",
        &[", then ", ", it follows that ", ", therefore ", ", so "],
    ),
    (
        " is higher than ",
        &[" is higher than ", " exceeds ", " is greater than "],
    ),
    (
        " is lower than ",
        &[" is lower than ", " is below ", " falls short of "],
    ),
    (" is at least ", &[" is at least ", " is no less than "]),
    (" is at most ", &[" is at most ", " does not exceed "]),
    (
        " is in default",
        &[" is in default", " defaults", " fails the stress test"],
    ),
    (", and ", &[", and ", ", while ", ", and moreover "]),
    (
        " given by the sum of ",
        &[" given by the sum of ", " totalling ", " adding up from "],
    ),
    (" owns ", &[" owns ", " holds ", " possesses "]),
    (
        " exercises control over ",
        &[
            " exercises control over ",
            " controls ",
            " has decision power over ",
        ],
    ),
    (
        " is at risk of defaulting ",
        &[
            " is at risk of defaulting ",
            " faces default risk ",
            " risks failure ",
        ],
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rewrite_group_contains_identity() {
        for (from, tos) in REWRITES {
            assert!(tos.contains(from), "group for {from:?} lacks identity");
        }
    }

    #[test]
    fn opener_groups_are_non_empty() {
        for group in OPENERS {
            assert!(!group.is_empty());
        }
    }
}
