//! Regenerates `results/BENCH_run_telemetry.json`: the thread-sweep
//! chase benchmark, rebuilt on top of the engine's run telemetry.
//!
//! For every workload the harness chases at 1/2/4/8 worker threads,
//! keeping the [`vadalog::RunReport`] of each run. The emitted JSON
//! combines:
//!
//! * wall-clock best/mean per thread count (as before), now taken from
//!   `RunReport.timings` rather than an external stopwatch, with the
//!   match/merge/commit/aggregate phase split of the best run;
//! * the thread-invariant counter block (matches, commits, duplicates,
//!   index probes vs. scans, peaks) — asserted identical across the
//!   sweep before anything is written;
//! * a telemetry-overhead measurement: the same chase with
//!   `full_telemetry` disabled (counters only, no per-round log, no
//!   clock reads), reported as a ratio to the instrumented run.
//!
//! Usage: `cargo run --release -p bench --bin run_telemetry [-- DATE]`.

use vadalog::telemetry::JsonWriter;
use vadalog::{ChaseConfig, ChaseSession, Database, Program, RunReport};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;
const OVERHEAD_REPS: usize = 11;

struct Cell {
    threads: usize,
    best_ms: f64,
    mean_ms: f64,
    /// Phase timings of the best repetition, milliseconds.
    phases_ms: [(&'static str, f64); 5],
}

struct WorkloadRun {
    name: &'static str,
    report: RunReport,
    cells: Vec<Cell>,
    /// Mean total wall-time with `full_telemetry` off / on, at 1 thread.
    overhead_ratio: f64,
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn sweep(name: &'static str, program: &Program, db: &Database) -> WorkloadRun {
    let reference = ChaseSession::new(program)
        .with_threads(1)
        .run(db.clone())
        .expect("chase");
    let fingerprint = reference.report.count_fingerprint();

    let mut cells = Vec::new();
    for threads in THREADS {
        let mut best: Option<RunReport> = None;
        let mut total_ns = 0u64;
        for _ in 0..REPS {
            let out = ChaseSession::new(program)
                .with_threads(threads)
                .run(db.clone())
                .expect("chase");
            assert_eq!(
                out.report.count_fingerprint(),
                fingerprint,
                "{name}: telemetry diverged at {threads} threads"
            );
            total_ns += out.report.timings.total_ns;
            if best
                .as_ref()
                .is_none_or(|b| out.report.timings.total_ns < b.timings.total_ns)
            {
                best = Some(out.report);
            }
        }
        let best = best.expect("at least one repetition");
        cells.push(Cell {
            threads,
            best_ms: ns_to_ms(best.timings.total_ns),
            mean_ms: ns_to_ms(total_ns / REPS as u64),
            phases_ms: [
                ("index_build", ns_to_ms(best.timings.index_build_ns)),
                ("match", ns_to_ms(best.timings.match_ns)),
                ("merge", ns_to_ms(best.timings.merge_ns)),
                ("commit", ns_to_ms(best.timings.commit_ns)),
                ("aggregate", ns_to_ms(best.timings.aggregate_ns)),
            ],
        });
    }

    // Overhead: full telemetry vs. counters-only, single-threaded, by an
    // external stopwatch (the reduced mode deliberately skips the
    // engine's own clock reads). Best-of-N: the minimum is the run least
    // disturbed by the container's timesharing, which is what an
    // overhead ratio should compare.
    let timed_run = |full: bool| -> f64 {
        let t0 = std::time::Instant::now();
        let out = ChaseSession::new(program)
            .with_config(ChaseConfig::default().with_full_telemetry(full))
            .with_threads(1)
            .run(db.clone())
            .expect("chase");
        let dt = t0.elapsed().as_secs_f64();
        // Counters survive the reduced mode; only the per-round log and
        // phase clocks are dropped, so compare totals.
        assert_eq!(out.report.total_commits(), reference.report.total_commits());
        assert_eq!(out.report.total_matches(), reference.report.total_matches());
        dt
    };
    // Interleave on/off repetitions so slow load drift in the container
    // hits both modes equally, then compare the bests.
    let mut with_telemetry = f64::INFINITY;
    let mut without = f64::INFINITY;
    for _ in 0..OVERHEAD_REPS {
        with_telemetry = with_telemetry.min(timed_run(true));
        without = without.min(timed_run(false));
    }
    let overhead_ratio = if without > 0.0 {
        with_telemetry / without
    } else {
        1.0
    };

    WorkloadRun {
        name,
        report: reference.report,
        cells,
        overhead_ratio,
    }
}

fn main() {
    let date = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unreported".into());
    let runs = [
        sweep(
            "company_control over random_ownership(400, 3, 7)",
            &finkg::apps::control::program(),
            &finkg::random_ownership(400, 3, 7),
        ),
        sweep(
            "stress_test over random_debt_network(4000, 3, 5, 11)",
            &finkg::apps::stress::program(),
            &finkg::random_debt_network(4000, 3, 5, 11),
        ),
        sweep(
            "company_control over random_ownership(1200, 4, 7)",
            &finkg::apps::control::program(),
            &finkg::random_ownership(1200, 4, 7),
        ),
    ];

    let mut w = JsonWriter::new();
    w.open_object();
    w.field_str("name", "run_telemetry_thread_sweep");
    w.field_str("date", &date);
    w.field_str(
        "description",
        "Thread sweep of the chase at 1/2/4/8 workers, reported from the \
         engine's own RunReport telemetry: per-phase wall-clock of the \
         best repetition, best/mean totals, and the thread-invariant \
         counter block (asserted identical across the sweep before \
         emission). 'telemetry_overhead' compares best-of-interleaved \
         wall-time with full telemetry (per-round log + phase clocks) \
         against the counters-only mode; the acceptance bar is a ratio \
         below 1.05. \
         Regenerate with `cargo run --release -p bench --bin \
         run_telemetry -- $(date +%F)`.",
    );
    w.key("environment");
    w.open_object();
    w.field_u64(
        "logical_cores",
        std::thread::available_parallelism().map_or(0, |n| n.get() as u64),
    );
    w.field_str(
        "note",
        "In a single-core container the sweep measures the parallel \
         engine's overhead, not its scaling; counters are identical \
         either way.",
    );
    w.close_object();
    w.key("workloads");
    w.open_array();
    for run in &runs {
        w.open_object();
        w.field_str("workload", run.name);
        w.field_u64("rounds", u64::from(run.report.rounds));
        w.field_u64("strata", u64::from(run.report.strata));
        w.field_u64("matches_enumerated", run.report.total_matches());
        w.field_u64("facts_committed", run.report.total_commits());
        w.field_u64("index_probes", run.report.total_index_probes());
        w.field_u64("scans", run.report.total_scans());
        w.key("peak");
        w.open_object();
        w.field_u64("facts", run.report.peak.facts);
        w.field_u64("derivations", run.report.peak.derivations);
        w.field_u64("match_buffer", run.report.peak.match_buffer);
        w.field_u64("approx_bytes", run.report.peak.approx_bytes);
        w.close_object();
        w.key("rules");
        w.open_array();
        for r in &run.report.rules {
            w.open_object();
            w.field_str("label", &r.label);
            w.field_u64("matches_enumerated", r.matches_enumerated);
            w.field_u64("facts_committed", r.facts_committed);
            w.field_u64("duplicates_preempted", r.duplicates_preempted);
            w.field_u64("index_probes", r.index_probes);
            w.field_u64("scans", r.scans);
            w.close_object();
        }
        w.close_array();
        w.key("timings_ms");
        w.open_object();
        for cell in &run.cells {
            w.key(&cell.threads.to_string());
            w.open_object();
            w.field_f64("best", cell.best_ms);
            w.field_f64("mean", cell.mean_ms);
            w.key("best_phases");
            w.open_object();
            for (phase, ms) in cell.phases_ms {
                w.field_f64(phase, ms);
            }
            w.close_object();
            w.close_object();
        }
        w.close_object();
        w.field_f64("telemetry_overhead", run.overhead_ratio);
        w.close_object();
    }
    w.close_array();
    w.close_object();

    let json = w.finish();
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_run_telemetry.json", pretty(&json)).expect("write results");
    for run in &runs {
        println!(
            "{}: overhead x{:.3}, rounds {}, {} commits",
            run.name,
            run.overhead_ratio,
            run.report.rounds,
            run.report.total_commits()
        );
    }
    println!("wrote results/BENCH_run_telemetry.json");
}

/// Minimal JSON pretty-printer (2-space indent) so the checked-in result
/// diffs cleanly; input is the trusted output of [`JsonWriter`].
fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out.push('\n');
    out
}
