//! The incremental-maintenance contract on real finkg workloads: a live
//! outcome maintained through random add/retract sequences with
//! `ChaseSession::apply_delta` must stay bitwise identical to a
//! from-scratch chase over the updated EDB — facts and their ids,
//! activity, extensional marks, every derivation field — at any thread
//! count, across retract-then-readd round trips, and across a
//! checkpoint/resume in the middle of the sequence. Aggregate programs
//! must reach the same state through the full-rechase fallback.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use vadalog::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("incremental");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Bindings rendered with sorted keys, for order-insensitive comparison.
fn render_bindings(b: &Bindings) -> String {
    let mut entries: Vec<(String, String)> = b
        .iter()
        .map(|(k, v)| (format!("{k}"), format!("{v:?}")))
        .collect();
    entries.sort();
    format!("{entries:?}")
}

/// The full structural fingerprint the determinism contract covers:
/// facts in id order with activity and extensional marks, every
/// derivation field, rounds, derived-fact count and violations.
fn structural(out: &ChaseOutcome) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for (id, fact) in out.database.iter() {
        let _ = writeln!(
            s,
            "fact {} {} active={} edb={}",
            id.0,
            fact,
            out.database.is_active(id),
            out.graph.is_extensional(id)
        );
    }
    for (i, d) in out.graph.derivations().iter().enumerate() {
        let _ = writeln!(
            s,
            "der {} rule={} premises={:?} conclusion={} round={} contributors={} bindings={}",
            i,
            d.rule.0,
            d.premises.iter().map(|p| p.0).collect::<Vec<_>>(),
            d.conclusion.0,
            d.round,
            d.contributors,
            render_bindings(&d.bindings),
        );
    }
    let _ = writeln!(
        s,
        "rounds={} derived={} violations={:?}",
        out.rounds, out.derived_facts, out.violations
    );
    s
}

/// From-scratch reference: chases `edb` (in the given insertion order)
/// single-threaded and returns its fingerprint.
fn scratch(program: &Program, edb: &[Fact]) -> String {
    let db: Database = edb.iter().cloned().collect();
    let out = ChaseSession::new(program).with_threads(1).run(db).unwrap();
    structural(&out)
}

/// One randomly drawn delta over the sanctions EDB, mirrored into `edb`
/// the way the engine canonicalizes it: retractions remove the fact in
/// place (surviving facts keep their id order), additions append.
fn random_delta(rng: &mut StdRng, edb: &mut Vec<Fact>, n: usize) -> Delta {
    let mut delta = Delta::new();
    let ops = rng.random_range(1..=4usize);
    for _ in 0..ops {
        if rng.random_bool(0.4) && !edb.is_empty() {
            let victim = edb.remove(rng.random_range(0..edb.len()));
            delta = delta.retract(victim);
        } else if rng.random_bool(0.5) {
            let (i, j) = (rng.random_range(0..n), rng.random_range(0..n));
            let w = rng.random_range(1..=9) as f64 / 10.0;
            let fact = Fact::new(
                "own",
                vec![
                    format!("C{i}").as_str().into(),
                    format!("C{j}").as_str().into(),
                    w.into(),
                ],
            );
            if !edb.contains(&fact) {
                edb.push(fact.clone());
                delta = delta.add(fact);
            }
        } else {
            let i = rng.random_range(0..n);
            let fact = Fact::new("sanctioned", vec![format!("C{i}").as_str().into()]);
            if !edb.contains(&fact) {
                edb.push(fact.clone());
                delta = delta.add(fact);
            }
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random add/retract sequences over the sanctions app keep the
    /// maintained outcome bitwise identical to a from-scratch chase on
    /// the updated EDB, at 1, 2 and 8 threads, after every step.
    #[test]
    fn maintained_outcomes_match_scratch_at_any_thread_count(
        n in 8usize..24,
        seed in 0u64..500,
        steps in 1usize..4,
    ) {
        let program = finkg::apps::sanctions::program();
        let base: Vec<Fact> = finkg::random_sanctions(n, 3, 7, seed)
            .iter()
            .map(|(_, f)| f.clone())
            .collect();

        // The same delta sequence is drawn once and replayed per thread
        // count, so all runs see identical inputs.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD31A);
        let mut edb = base.clone();
        let script: Vec<(Delta, Vec<Fact>)> = (0..steps)
            .map(|_| {
                let delta = random_delta(&mut rng, &mut edb, n);
                (delta, edb.clone())
            })
            .collect();

        let mut per_thread: Vec<Vec<(String, String)>> = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut session = ChaseSession::new(&program).with_threads(threads);
            let out = session.run(base.iter().cloned().collect()).unwrap();
            session.load(out);
            let mut states = Vec::new();
            for (delta, _) in &script {
                let applied = session.apply_delta(delta.clone()).unwrap();
                // Under VADALOG_NO_INDEX the scan-ablation default makes
                // deltas ineligible; equivalence must hold either way.
                if vadalog::ChaseConfig::default().use_positional_index {
                    prop_assert_eq!(applied.strategy, DeltaStrategy::Incremental);
                }
                states.push((
                    structural(&applied.outcome),
                    applied.outcome.report.count_fingerprint(),
                ));
                session.load(Arc::clone(&applied.outcome));
            }
            per_thread.push(states);
        }

        // Single-threaded maintenance equals the from-scratch reference...
        for (step, (_, edb_after)) in script.iter().enumerate() {
            prop_assert_eq!(
                &per_thread[0][step].0,
                &scratch(&program, edb_after),
                "maintained state diverged from scratch at step {}", step
            );
        }
        // ...and 2/8 threads reproduce it bitwise, telemetry included.
        for t in 1..per_thread.len() {
            prop_assert_eq!(&per_thread[t], &per_thread[0]);
        }
    }
}

#[test]
fn retract_then_readd_across_deltas_matches_scratch() {
    let program = finkg::apps::sanctions::program();
    let base: Vec<Fact> = finkg::random_sanctions(16, 3, 5, 11)
        .iter()
        .map(|(_, f)| f.clone())
        .collect();
    let victim = base
        .iter()
        .find(|f| f.predicate == Symbol::new("sanctioned"))
        .unwrap()
        .clone();

    let mut session = ChaseSession::new(&program);
    let out = session.run(base.iter().cloned().collect()).unwrap();
    session.load(out);

    let removed = session
        .apply_delta(Delta::new().retract(victim.clone()))
        .unwrap();
    session.load(Arc::clone(&removed.outcome));
    let readded = session
        .apply_delta(Delta::new().add(victim.clone()))
        .unwrap();

    // The readded designation lands at the end of the EDB order.
    let mut edb: Vec<Fact> = base.into_iter().filter(|f| *f != victim).collect();
    edb.push(victim);
    assert_eq!(structural(&readded.outcome), scratch(&program, &edb));
}

#[test]
fn checkpoint_resume_mid_sequence_continues_identically() {
    let program = finkg::apps::sanctions::program();
    let base: Vec<Fact> = finkg::random_sanctions(14, 3, 6, 3)
        .iter()
        .map(|(_, f)| f.clone())
        .collect();
    let mut rng = StdRng::seed_from_u64(99);
    let mut edb = base.clone();
    let first = random_delta(&mut rng, &mut edb, 14);
    let second = random_delta(&mut rng, &mut edb, 14);

    // The uninterrupted session applies both deltas in memory.
    let mut session = ChaseSession::new(&program);
    let out = session.run(base.iter().cloned().collect()).unwrap();
    session.load(out);
    let mid = session.apply_delta(first.clone()).unwrap();
    session.load(Arc::clone(&mid.outcome));
    let expected = session.apply_delta(second.clone()).unwrap();

    // The interrupted one goes through the disk between the deltas.
    let path = tmp("mid_sequence.ckpt");
    session.checkpoint_to(&mid.outcome, &path).unwrap();
    let mut resumed_session = ChaseSession::new(&program);
    let restored = resumed_session.resume_from_path(&path).unwrap();
    resumed_session.load(restored);
    let resumed = resumed_session.apply_delta(second).unwrap();

    assert_eq!(structural(&expected.outcome), structural(&resumed.outcome));
    assert_eq!(structural(&resumed.outcome), scratch(&program, &edb));
}

#[test]
fn aggregate_apps_fall_back_to_full_rechase_and_still_match() {
    let program = finkg::apps::control::program();
    let base: Vec<Fact> = finkg::random_ownership(20, 3, 21)
        .iter()
        .map(|(_, f)| f.clone())
        .collect();
    let mut session = ChaseSession::new(&program);
    let out = session.run(base.iter().cloned().collect()).unwrap();
    session.load(out);

    let added = Fact::new("own", vec!["C0".into(), "C19".into(), 0.9.into()]);
    let mut edb = base.clone();
    edb.push(added.clone());
    let applied = session.apply_delta(Delta::new().add(added)).unwrap();
    assert_eq!(applied.strategy, DeltaStrategy::FullRechase);
    assert_eq!(structural(&applied.outcome), scratch(&program, &edb));
}
