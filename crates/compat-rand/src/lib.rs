//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the *subset* of the rand 0.9 API it actually uses as a local
//! path dependency: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng::random_range`]/[`Rng::random_bool`]. The generator is a
//! SplitMix64-seeded xoshiro256++, deterministic for a given seed across
//! platforms — everything the workspace's seeded workload generators and
//! determinism suites rely on. It makes no cryptographic claims, exactly
//! like the APIs it replaces were used: for reproducible synthetic data.
//!
//! Note the streams differ from the real `rand::rngs::StdRng` (ChaCha12),
//! so seeded workloads are *internally* reproducible but not identical to
//! ones generated with the upstream crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring the used subset of
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive; integer or
    /// float).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Converts a raw word into a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_interval(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval(rng: &mut dyn RngCore, lo: $t, hi: $t, inclusive: bool) -> $t {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from empty range {lo}..{hi}");
                // Modulo sampling: negligible bias for the workspace's
                // small spans, and branch-free.
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (lo_w + offset) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval(rng: &mut dyn RngCore, lo: $t, hi: $t, _inclusive: bool) -> $t {
                assert!(lo < hi, "cannot sample from empty float range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Ranges that can be sampled, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(&mut Adapter(rng), self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        T::sample_interval(&mut Adapter(rng), lo, hi, true)
    }
}

/// Adapts a generic `RngCore` to the `dyn` interface of
/// [`SampleUniform::sample_interval`].
struct Adapter<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for Adapter<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

pub mod rngs {
    //! The named generators, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ expanded
    /// from the seed with SplitMix64. Deterministic per seed; not the
    /// upstream ChaCha12 stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, as rand's SeedableRng documents.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3i64..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.random_range(0u8..=255u8);
            let _ = u; // full domain: any value is in range
        }
    }

    #[test]
    fn negative_and_inclusive_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = rng.random_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi, "inclusive endpoints should be reachable");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert_eq!((0..100).filter(|_| rng.random_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.random_bool(1.1)).count(), 100);
    }
}
