//! Regenerates `results/BENCH_join_index.json`: before/after numbers for
//! the static join-planning layer on fig18-class financial workloads.
//!
//! Three workloads isolate the three hot paths the planner rewired:
//!
//! * *sanctions_screen* — stratified negation: every match of the clean
//!   rule checks two negated `sanctioned` atoms, a full predicate scan
//!   per check before planning and a composite hash probe after;
//! * *joint_exposure* — a three-way join whose last atom has two bound
//!   positions: the legacy planner probes one and filters candidates,
//!   the composite index binds both at once;
//! * *kyc_onboarding* — an existential head: every firing runs the
//!   restricted-chase satisfaction check against a growing predicate,
//!   quadratic as a scan, linear as a probe.
//!
//! Every workload is chased under the legacy single-position plan
//! (`with_join_planning(false)`), the composite plan (the default), and
//! the index-free scan ablation, each at 1/2/8 worker threads. The fact
//! store, activity flags and round count must be bitwise identical
//! across *all* nine runs (matches, not counters: the configs probe
//! differently by design), and `count_fingerprint()` must be invariant
//! across threads within each config, before anything is written.
//!
//! Usage: `cargo run --release -p bench --bin join_plan [-- DATE]`.

use vadalog::telemetry::JsonWriter;
use vadalog::{
    parse_program, ChaseConfig, ChaseOutcome, ChaseSession, Database, Program, RunReport,
};

const THREADS: [usize; 3] = [1, 2, 8];
const REPS: usize = 5;
/// The acceptance bar from the issue: the composite plan must be at
/// least this much faster than the legacy plan on one of the workloads.
const REQUIRED_SPEEDUP: f64 = 1.3;

struct Workload {
    name: &'static str,
    note: &'static str,
    program: Program,
    db: Database,
}

fn sanctions_screen() -> Workload {
    let program = parse_program(
        "n1: own(x, y, s) -> linked(x, y).
         n2: linked(x, y), not sanctioned(x), not sanctioned(y) -> clean_link(x, y).",
    )
    .expect("well-formed")
    .program;
    let mut db = finkg::random_ownership(4000, 3, 7);
    for i in (0..4000usize).step_by(3) {
        db.add("sanctioned", &[format!("C{i}").as_str().into()]);
    }
    Workload {
        name: "sanctions_screen",
        note: "negation-heavy: two negated atoms checked per linked pair \
               (scan per check -> composite probe)",
        program,
        db,
    }
}

fn joint_exposure() -> Workload {
    let program = parse_program("j1: own(x, y, s), own(y, z, t), own(x, z, u) -> joint(x, y, z).")
        .expect("well-formed")
        .program;
    Workload {
        name: "joint_exposure",
        note: "join-heavy: the closing atom of the ownership triangle has \
               two bound positions (probe one + filter -> probe both)",
        program,
        db: finkg::random_ownership(400, 20, 7),
    }
}

fn kyc_onboarding() -> Workload {
    let program = parse_program("e1: company(x) -> kyc_file(x, z).")
        .expect("well-formed")
        .program;
    Workload {
        name: "kyc_onboarding",
        note: "existential head: one restricted-chase satisfaction check \
               per firing against a growing predicate (quadratic scan -> \
               linear probe)",
        program,
        db: finkg::random_ownership(3000, 0, 7),
    }
}

/// Fact-level fingerprint: id order, activity, rounds. Deliberately
/// excludes counters — the configs are *supposed* to probe differently.
fn fact_fingerprint(out: &ChaseOutcome) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for (id, fact) in out.database.iter() {
        let _ = writeln!(s, "{id} {fact} active={}", out.database.is_active(id));
    }
    let _ = write!(s, "rounds={}", out.rounds);
    s
}

struct ConfigRun {
    config_name: &'static str,
    report: RunReport,
    best_ms: f64,
}

fn run_config(
    w: &Workload,
    config_name: &'static str,
    config: &ChaseConfig,
    expected_facts: &mut Option<String>,
) -> ConfigRun {
    let mut best: Option<RunReport> = None;
    let mut counters: Option<String> = None;
    for threads in THREADS {
        let reps = if threads == 1 { REPS } else { 1 };
        for _ in 0..reps {
            let out = ChaseSession::new(&w.program)
                .with_config(config.clone().with_threads(threads))
                .run(w.db.clone())
                .unwrap_or_else(|e| panic!("{}/{config_name}: chase failed: {e}", w.name));
            let facts = fact_fingerprint(&out);
            match expected_facts {
                Some(expected) => assert_eq!(
                    &facts, expected,
                    "{}/{config_name}: facts diverged at {threads} threads",
                    w.name
                ),
                None => *expected_facts = Some(facts),
            }
            let fp = out.report.count_fingerprint();
            match &counters {
                Some(expected) => assert_eq!(
                    &fp, expected,
                    "{}/{config_name}: counters diverged at {threads} threads",
                    w.name
                ),
                None => counters = Some(fp),
            }
            // Timings are compared single-threaded only: the sweep's
            // multi-thread runs exist for the determinism assertion.
            if threads == 1
                && best
                    .as_ref()
                    .is_none_or(|b| out.report.timings.total_ns < b.timings.total_ns)
            {
                best = Some(out.report);
            }
        }
    }
    let report = best.expect("at least one single-threaded repetition");
    let best_ms = report.timings.total_ns as f64 / 1e6;
    ConfigRun {
        config_name,
        report,
        best_ms,
    }
}

fn main() {
    let date = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unreported".into());
    let workloads = [sanctions_screen(), joint_exposure(), kyc_onboarding()];

    let mut results = Vec::new();
    for w in &workloads {
        let mut expected_facts = None;
        let runs = [
            run_config(
                w,
                "legacy_single_position",
                &ChaseConfig::default()
                    .with_positional_index(true)
                    .with_join_planning(false),
                &mut expected_facts,
            ),
            run_config(
                w,
                "composite_plan",
                &ChaseConfig::default().with_positional_index(true),
                &mut expected_facts,
            ),
            run_config(
                w,
                "scan_ablation",
                &ChaseConfig::default().with_positional_index(false),
                &mut expected_facts,
            ),
        ];
        let speedup = runs[0].best_ms / runs[1].best_ms.max(1e-9);
        println!(
            "{}: legacy {:.1} ms, composite {:.1} ms, scans {:.1} ms -> x{:.2}",
            w.name, runs[0].best_ms, runs[1].best_ms, runs[2].best_ms, speedup
        );
        results.push((w, runs, speedup));
    }

    let max_speedup = results.iter().map(|(_, _, s)| *s).fold(0.0f64, f64::max);
    assert!(
        max_speedup >= REQUIRED_SPEEDUP,
        "no workload reached the x{REQUIRED_SPEEDUP} acceptance bar (best x{max_speedup:.2})"
    );

    let mut jw = JsonWriter::new();
    jw.open_object();
    jw.field_str("name", "join_plan_before_after");
    jw.field_str("date", &date);
    jw.field_str(
        "description",
        "Before/after benchmark of the static join-planning layer with \
         composite positional indexes, on fig18-class financial \
         workloads. 'legacy_single_position' reproduces the pre-planner \
         engine (first-bound-position probes, negation and existential \
         satisfaction by full predicate scans); 'composite_plan' is the \
         default configuration; 'scan_ablation' disables positional \
         indexes outright. Fact stores are asserted bitwise identical \
         across all configs and 1/2/8 threads before emission, and \
         count_fingerprint() thread-invariant within each config. \
         Acceptance: speedup >= 1.3 on a negation- or join-heavy \
         workload. Regenerate with `cargo run --release -p bench --bin \
         join_plan -- $(date +%F)`.",
    );
    jw.field_f64("required_speedup", REQUIRED_SPEEDUP);
    jw.field_f64("max_speedup", max_speedup);
    jw.key("workloads");
    jw.open_array();
    for (w, runs, speedup) in &results {
        jw.open_object();
        jw.field_str("workload", w.name);
        jw.field_str("note", w.note);
        jw.field_u64("edb_facts", w.db.len() as u64);
        jw.field_f64("speedup_legacy_over_composite", *speedup);
        jw.key("configs");
        jw.open_array();
        for run in runs {
            let r = &run.report;
            jw.open_object();
            jw.field_str("config", run.config_name);
            jw.field_f64("best_ms", run.best_ms);
            jw.field_u64("rounds", u64::from(r.rounds));
            jw.field_u64("matches_enumerated", r.total_matches());
            jw.field_u64("facts_committed", r.total_commits());
            jw.field_u64("index_probes", r.total_index_probes());
            jw.field_u64("scans", r.total_scans());
            let mut composite = 0;
            let mut neg_probes = 0;
            let mut neg_scans = 0;
            let mut sat_probes = 0;
            let mut sat_scans = 0;
            for rule in &r.rules {
                composite += rule.composite_probes;
                neg_probes += rule.negation_probes;
                neg_scans += rule.negation_scans;
                sat_probes += rule.satisfaction_probes;
                sat_scans += rule.satisfaction_scans;
            }
            jw.field_u64("composite_probes", composite);
            jw.field_u64("negation_probes", neg_probes);
            jw.field_u64("negation_scans", neg_scans);
            jw.field_u64("satisfaction_probes", sat_probes);
            jw.field_u64("satisfaction_scans", sat_scans);
            jw.close_object();
        }
        jw.close_array();
        jw.close_object();
    }
    jw.close_array();
    jw.close_object();

    let json = jw.finish();
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_join_index.json", pretty(&json)).expect("write results");
    println!("wrote results/BENCH_join_index.json (max speedup x{max_speedup:.2})");
}

/// Minimal JSON pretty-printer (2-space indent) so the checked-in result
/// diffs cleanly; input is the trusted output of [`JsonWriter`].
fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out.push('\n');
    out
}
