//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the benchmark-harness subset its `benches/` targets use:
//! [`Criterion::benchmark_group`], `bench_function`/`bench_with_input`,
//! [`BenchmarkId::from_parameter`], [`Bencher::iter`] and the
//! `criterion_group!`/`criterion_main!` macros. Measurements are plain
//! wall-clock medians over a fixed number of timed iterations after a
//! short warm-up — no statistical regression analysis, no HTML reports.
//! The workspace's *recorded* numbers come from its `bench` bin targets,
//! not from these harnesses; this keeps `cargo bench` functional and the
//! bench targets compiling under `clippy --all-targets`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// A benchmark identifier (`group/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendering `parameter` alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id rendering `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    last_ns: u128,
}

/// Iterations timed per sample (after one warm-up run).
const SAMPLES: usize = 15;

impl Bencher {
    /// Times `routine`, keeping the median of a fixed sample count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        hint_black_box(routine()); // warm-up
        let mut samples: Vec<u128> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                hint_black_box(routine());
                start.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        self.last_ns = samples[samples.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { last_ns: 0 };
        f(&mut b);
        println!(
            "bench {}/{}: median {}",
            self.name,
            id,
            format_ns(b.last_ns)
        );
    }

    /// Accepted for API compatibility; this shim always times a fixed
    /// sample count, so the hint is ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        self.run(id, f);
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.to_string();
        self.run(&id, |b| f(b, input));
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` under `id`, outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { last_ns: 0 };
        f(&mut b);
        println!("bench {}: median {}", id, format_ns(b.last_ns));
    }
}

/// Renders nanoseconds with a readable unit.
fn format_ns(ns: u128) -> String {
    let d = Duration::from_nanos(ns as u64);
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_formats() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert_eq!(format_ns(10), "10 ns");
        assert_eq!(format_ns(1_500), "1.50 µs");
        assert_eq!(format_ns(2_000_000), "2.00 ms");
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
    }
}
