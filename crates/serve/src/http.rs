//! A dependency-free, overload-safe HTTP/1.1 front end for the
//! explanation service.
//!
//! Hand-rolled over `std::net::TcpListener` because the build ships no
//! external crates. The accept loop is thin and *never blocks on a
//! client*: accepted connections are handed to a bounded pool of
//! [`max_connections`](crate::ServeConfig::max_connections) handler
//! threads behind an admission counter; when every handler is busy the
//! excess connection is shed immediately with `503` + `Retry-After`
//! instead of queueing unboundedly. Every connection carries socket
//! read/write timeouts plus a whole-request read deadline and bounded
//! head/body parsing, so slowloris and byte-dribble clients are dropped
//! on schedule and can never freeze healthy traffic. Heavy lifting (the
//! actual explanation queries) happens on the [`ExplainService`] worker
//! pool. Admission is a slot counter reserved before a connection is
//! queued, so at most `max_connections` connections are ever
//! queued-or-handled. `Connection: close` semantics.
//!
//! Endpoints:
//!
//! | Method & path   | Behaviour                                          |
//! |-----------------|----------------------------------------------------|
//! | `GET /health`   | liveness + build info (crate version, enabled features) + current snapshot version |
//! | `GET /ready`    | readiness: `200 ready` or `503 degraded` while snapshot publishes fail |
//! | `GET /metrics`  | Prometheus text of the process metrics registry    |
//! | `GET /snapshot` | current snapshot version, update kind (`full`/`delta`), delta fact counts, database size |
//! | `POST /explain` | body = goal fact literals (`control("B","D").`), one per line; answers each in order |
//! | `GET /debug/flight` | flight recorder: last failure snapshot + live span/event tail |
//! | `GET /debug/slow`   | slow-query log: goal text + span tree per slow explanation |
//!
//! Hostile-input responses: `413` for a `Content-Length` above the body
//! cap (instead of silently truncating), `431` for an oversized request
//! head, `400` for unparseable requests or goal batches above the
//! per-batch cap, `503` + `Retry-After` when the connection pool or the
//! job queue is saturated.
//!
//! ## Request tracing
//!
//! Every routed request runs under a [`TraceContext`]: the handler
//! honours an inbound `x-vadalog-trace-id` header (minting an id when
//! absent), echoes it on the response, and keeps the context current
//! for the whole dispatch — so the `serve.request` span, the worker
//! pool's `serve.goal` spans and the pipeline's spans all carry the
//! same trace id, and every request lands one
//! `vadalog_serve_request_seconds{endpoint,status,app}` observation
//! plus a `request` event in the flight recorder. The `status` label
//! distinguishes per-goal deadline exhaustion (`exhausted`) from
//! whole-batch sheds (`shed`) — both previously looked like "request
//! done" in the access log.

use crate::service::{ExplainService, ServeConfig, ServeError};
use explain::ExplainError;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vadalog::obs::context::{self, TraceContext};
use vadalog::obs::flight;
use vadalog::obs::json::JsonWriter;

/// A running HTTP server; dropping it (or calling
/// [`stop`](HttpServer::stop)) shuts the accept loop and the handler
/// pool down.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, port 0 for ephemeral) and
    /// starts serving `service` from a background accept loop feeding a
    /// pool of [`max_connections`](ServeConfig::max_connections)
    /// connection handlers.
    pub fn bind(addr: &str, service: Arc<ExplainService>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let config = service.config().clone();

        // In-flight admission counter: a connection is admitted by
        // reserving a slot *before* it is queued, so at most
        // `max_connections` connections are ever queued-or-handled and
        // the accept loop can shed the excess without racing handler
        // wake-ups. (A rendezvous channel can't express this: between
        // one handoff completing and the next handler parking in
        // `recv`, a `try_send` would spuriously fail with idle
        // handlers.)
        let active = Arc::new(AtomicUsize::new(0));
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let handlers = (0..config.max_connections)
            .map(|i| {
                let rx = Arc::clone(&conn_rx);
                let service = Arc::clone(&service);
                let active = Arc::clone(&active);
                std::thread::Builder::new()
                    .name(format!("serve-http-handler-{i}"))
                    .spawn(move || handler_loop(&rx, &active, &service))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let stop_flag = Arc::clone(&stop);
        let accept_active = Arc::clone(&active);
        let retry_after = config.retry_after;
        let write_timeout = config.write_timeout;
        let read_timeout = config.read_timeout;
        let max_connections = config.max_connections;
        let accept_thread = std::thread::Builder::new()
            .name("serve-http-accept".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(mut conn) = conn else { continue };
                    // Socket timeouts bound every read/write syscall; the
                    // handler adds a whole-request deadline on top.
                    let _ = conn.set_read_timeout(Some(read_timeout.max(MIN_TIMEOUT)));
                    let _ = conn.set_write_timeout(Some(write_timeout.max(MIN_TIMEOUT)));
                    if !reserve_slot(&accept_active, max_connections) {
                        reject_metric("connection_pool_full");
                        flight::global().failure(
                            "shed",
                            format!("connection shed: all {max_connections} handler slots busy"),
                        );
                        let _ = respond(
                            &mut conn,
                            "503 Service Unavailable",
                            "application/json",
                            &error_body("connection pool saturated; retry later"),
                            &[("Retry-After", retry_after_secs(retry_after))],
                        );
                        continue;
                    }
                    if conn_tx.send(conn).is_err() {
                        break;
                    }
                }
                // Dropping conn_tx here ends every handler's recv loop.
            })?;
        Ok(HttpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and the handler pool and joins them.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.handlers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Floor for socket timeouts (`set_read_timeout` rejects zero).
const MIN_TIMEOUT: Duration = Duration::from_millis(1);

/// Reserves an admission slot: true if the connection may proceed,
/// false when `active` already holds `max` in-flight connections.
fn reserve_slot(active: &AtomicUsize, max: usize) -> bool {
    let mut current = active.load(Ordering::Acquire);
    loop {
        if current >= max {
            return false;
        }
        match active.compare_exchange_weak(
            current,
            current + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
}

/// Pulls connections until the accept loop closes the channel,
/// releasing the admission slot after each one. A poisoned receiver
/// mutex is recovered — one panicking handler must not wedge the pool.
fn handler_loop(rx: &Mutex<Receiver<TcpStream>>, active: &AtomicUsize, service: &ExplainService) {
    loop {
        let conn = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(mut conn) = conn else { return };
        let outcome = handle_connection(&mut conn, service);
        drop(conn);
        active.fetch_sub(1, Ordering::AcqRel);
        if let Err(e) = outcome {
            vadalog::obs::metrics::global()
                .counter(
                    "vadalog_serve_http_io_errors_total",
                    "HTTP connections dropped on I/O errors (timeouts, disconnects).",
                )
                .inc();
            let _ = e; // connection-level errors are not fatal
        }
    }
}

/// One parsed request line + body.
struct Request {
    method: String,
    path: String,
    body: String,
    /// The inbound `x-vadalog-trace-id` header value, if present.
    trace_id: Option<String>,
}

/// Why a request was refused before routing.
enum RequestError {
    /// Socket-level failure: timeout, disconnect, dribble past the read
    /// deadline. No response is owed; the connection is dropped.
    Io(std::io::Error),
    /// The request head (request line + headers) exceeded the byte cap.
    HeadTooLarge,
    /// `Content-Length` exceeds the body cap (carries the declared length).
    BodyTooLarge(usize),
    /// `Content-Length` was present but not a number.
    BadContentLength,
    /// No parseable request line.
    Malformed,
}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> RequestError {
        RequestError::Io(e)
    }
}

/// Finds the head/body boundary: `(terminator offset, terminator
/// length)`. Accepts `\r\n\r\n` and bare `\n\n`.
fn head_end(buf: &[u8]) -> Option<(usize, usize)> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| (p, 4))
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| (p, 2)))
}

/// Reads one HTTP/1.1 request under the configured caps: the whole head
/// within `max_head_bytes` and the body within `max_body_bytes`, all of
/// it within one `read_timeout` budget checked between every socket
/// read — a byte-dribbling client cannot stretch the read beyond
/// roughly twice the budget.
fn read_request(conn: &mut TcpStream, config: &ServeConfig) -> Result<Request, RequestError> {
    let deadline = Instant::now() + config.read_timeout;
    let mut chunk = [0u8; 4096];
    let mut head = Vec::new();
    let (split, terminator) = loop {
        if let Some(found) = head_end(&head) {
            break found;
        }
        if head.len() > config.max_head_bytes {
            return Err(RequestError::HeadTooLarge);
        }
        if Instant::now() >= deadline {
            return Err(RequestError::Io(std::io::Error::from(
                std::io::ErrorKind::TimedOut,
            )));
        }
        match conn.read(&mut chunk) {
            Ok(0) => {
                return Err(RequestError::Io(std::io::Error::from(
                    std::io::ErrorKind::UnexpectedEof,
                )))
            }
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RequestError::Io(e)),
        }
    };

    let head_text = String::from_utf8_lossy(&head[..split]).into_owned();
    let mut lines = head_text.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    if method.is_empty() || path.is_empty() {
        return Err(RequestError::Malformed);
    }
    let mut content_length = 0usize;
    let mut trace_id = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::BadContentLength)?;
            } else if name.eq_ignore_ascii_case("x-vadalog-trace-id") {
                trace_id = Some(value.trim().to_owned());
            }
        }
    }
    if content_length > config.max_body_bytes {
        return Err(RequestError::BodyTooLarge(content_length));
    }

    let mut body = head[split + terminator..].to_vec();
    body.truncate(content_length);
    while body.len() < content_length {
        if Instant::now() >= deadline {
            return Err(RequestError::Io(std::io::Error::from(
                std::io::ErrorKind::TimedOut,
            )));
        }
        match conn.read(&mut chunk) {
            Ok(0) => {
                // Mid-body disconnect: the declared length never arrived.
                return Err(RequestError::Io(std::io::Error::from(
                    std::io::ErrorKind::UnexpectedEof,
                )));
            }
            Ok(n) => {
                let take = n.min(content_length - body.len());
                body.extend_from_slice(&chunk[..take]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RequestError::Io(e)),
        }
    }
    Ok(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
        trace_id,
    })
}

/// Writes a full response (with optional extra headers) and closes.
fn respond(
    conn: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut headers = String::new();
    for (name, value) in extra_headers {
        headers.push_str(name);
        headers.push_str(": ");
        headers.push_str(value);
        headers.push_str("\r\n");
    }
    write!(
        conn,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{headers}Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    conn.flush()
}

/// A `{"error": detail}` JSON body.
fn error_body(detail: &str) -> String {
    let mut w = JsonWriter::new();
    w.open_object();
    w.field_str("error", detail);
    w.close_object();
    w.finish()
}

/// Counts a refused request/connection by reason.
fn reject_metric(reason: &'static str) {
    vadalog::obs::metrics::global()
        .counter_with(
            "vadalog_serve_http_rejects_total",
            &[("reason", reason)],
            "HTTP requests refused before evaluation, by reason.",
        )
        .inc();
}

/// `Retry-After` header value in whole seconds (at least 1).
fn retry_after_secs(retry_after: Duration) -> String {
    retry_after.as_secs().max(1).to_string()
}

/// Latency-histogram bounds in seconds (sub-millisecond cache hits up
/// to the 10 s default request deadline).
const REQUEST_SECONDS_BOUNDS: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Records one request in
/// `vadalog_serve_request_seconds{endpoint,status,app}`.
fn observe_request(app: &str, endpoint: &'static str, status: &'static str, elapsed: Duration) {
    vadalog::obs::metrics::global()
        .float_histogram_with(
            "vadalog_serve_request_seconds",
            &[("endpoint", endpoint), ("status", status), ("app", app)],
            REQUEST_SECONDS_BOUNDS,
            "HTTP request latency in seconds, by endpoint and access-log disposition.",
        )
        .observe(elapsed.as_secs_f64());
}

/// The bounded endpoint label (known routes only, so hostile paths
/// cannot inflate the metric's cardinality).
fn endpoint_label(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("GET", "/health") => "health",
        ("GET", "/ready") => "ready",
        ("GET", "/metrics") => "metrics",
        ("GET", "/snapshot") => "snapshot",
        ("GET", "/debug/flight") => "debug_flight",
        ("GET", "/debug/slow") => "debug_slow",
        ("POST", "/explain") => "explain",
        _ => "other",
    }
}

/// One routed response, written exactly once by [`handle_connection`]
/// with the request's trace id echoed.
struct Response {
    status: &'static str,
    content_type: &'static str,
    body: String,
    /// `Retry-After` hint for shed responses.
    retry_after: Option<Duration>,
    /// Access-log disposition: the `status` label on the latency
    /// histogram and the flight recorder's `request` events. `ok`,
    /// `exhausted` (≥1 goal tripped the per-request deadline — a `200`
    /// with per-goal errors), `error` (≥1 goal failed otherwise),
    /// `shed` (whole batch refused with `503`), `bad_request`,
    /// `degraded`, `not_found`.
    disposition: &'static str,
}

impl Response {
    /// A JSON response with no retry hint.
    fn json(status: &'static str, body: String, disposition: &'static str) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
            disposition,
        }
    }
}

/// Routes one connection: parses the request, installs its
/// [`TraceContext`] (inbound `x-vadalog-trace-id` or minted) for the
/// whole dispatch, observes the latency histogram and access-log flight
/// event, and echoes the trace id on the response.
fn handle_connection(conn: &mut TcpStream, service: &ExplainService) -> std::io::Result<()> {
    vadalog::faultpoint::hit("serve.handler");
    let config = service.config();
    let started = Instant::now();
    let request = match read_request(conn, config) {
        Ok(request) => request,
        Err(RequestError::Io(e)) => return Err(e),
        Err(refused) => {
            let (status, reason, detail) = match refused {
                RequestError::HeadTooLarge => (
                    "431 Request Header Fields Too Large",
                    "head_too_large",
                    format!("request head exceeds {} bytes", config.max_head_bytes),
                ),
                RequestError::BodyTooLarge(declared) => (
                    "413 Payload Too Large",
                    "body_too_large",
                    format!(
                        "content-length {declared} exceeds the {}-byte body cap",
                        config.max_body_bytes
                    ),
                ),
                RequestError::BadContentLength => (
                    "400 Bad Request",
                    "bad_content_length",
                    "content-length is not a number".to_owned(),
                ),
                RequestError::Malformed => (
                    "400 Bad Request",
                    "malformed",
                    "unparseable request line".to_owned(),
                ),
                RequestError::Io(_) => unreachable!("handled above"),
            };
            reject_metric(reason);
            observe_request(&config.app, "unparsed", "bad_request", started.elapsed());
            return respond(conn, status, "application/json", &error_body(&detail), &[]);
        }
    };

    let ctx = match &request.trace_id {
        Some(inbound) => TraceContext::with_trace_id(inbound),
        None => TraceContext::mint(),
    };
    let _ctx = context::set(ctx.clone());
    let endpoint = endpoint_label(&request.method, &request.path);
    let response = {
        let _span = vadalog::span!(
            "serve.request",
            endpoint = endpoint,
            path = request.path.as_str()
        );
        route(&request, service, config)
    };
    observe_request(
        &config.app,
        endpoint,
        response.disposition,
        started.elapsed(),
    );
    flight::global().event(
        "request",
        format!(
            "{} {} -> {} [{}]",
            request.method, request.path, response.status, response.disposition
        ),
    );

    let mut headers: Vec<(&str, String)> = vec![("x-vadalog-trace-id", ctx.trace_id.to_string())];
    if let Some(retry_after) = response.retry_after {
        headers.push(("Retry-After", retry_after_secs(retry_after)));
    }
    respond(
        conn,
        response.status,
        response.content_type,
        &response.body,
        &headers,
    )
}

/// Dispatches a parsed request to its endpoint.
fn route(request: &Request, service: &ExplainService, config: &ServeConfig) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let mut w = JsonWriter::new();
            w.open_object();
            w.field_str("status", "ok");
            w.field_str("version", env!("CARGO_PKG_VERSION"));
            w.key("features");
            w.open_array();
            if cfg!(feature = "faultpoints") {
                w.value_str("faultpoints");
            }
            w.close_array();
            w.field_str("app", &config.app);
            w.field_u64(
                "snapshot_version",
                service.snapshot_handle().current().version(),
            );
            w.close_object();
            Response::json("200 OK", w.finish(), "ok")
        }
        ("GET", "/ready") => {
            let degraded = service.snapshot_handle().is_degraded();
            let mut w = JsonWriter::new();
            w.open_object();
            w.field_str("status", if degraded { "degraded" } else { "ready" });
            w.field_u64(
                "snapshot_version",
                service.snapshot_handle().current().version(),
            );
            w.field_u64("workers_alive", service.alive_workers() as u64);
            w.close_object();
            if degraded {
                Response::json("503 Service Unavailable", w.finish(), "degraded")
            } else {
                Response::json("200 OK", w.finish(), "ok")
            }
        }
        ("GET", "/metrics") => Response {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4",
            body: vadalog::obs::metrics::global().to_prometheus(),
            retry_after: None,
            disposition: "ok",
        },
        ("GET", "/snapshot") => {
            let snapshot = service.snapshot_handle().current();
            let mut w = JsonWriter::new();
            w.open_object();
            w.field_u64("version", snapshot.version());
            w.field_str("update_kind", snapshot.update_kind().as_str());
            w.field_u64("facts_added", snapshot.facts_added());
            w.field_u64("facts_retracted", snapshot.facts_retracted());
            w.field_u64("facts", snapshot.outcome().database.len() as u64);
            w.field_u64("derived_facts", snapshot.outcome().derived_facts as u64);
            w.field_u64("rounds", snapshot.outcome().rounds as u64);
            w.close_object();
            Response::json("200 OK", w.finish(), "ok")
        }
        ("GET", "/debug/flight") => Response::json("200 OK", flight::global().to_json(), "ok"),
        ("GET", "/debug/slow") => Response::json("200 OK", flight::global().slow_to_json(), "ok"),
        ("POST", "/explain") => explain_route(&request.body, service, config),
        _ => Response {
            status: "404 Not Found",
            content_type: "text/plain",
            body: "unknown endpoint; try /health, /ready, /metrics, /snapshot, \
                   /debug/flight, /debug/slow or POST /explain\n"
                .to_owned(),
            retry_after: None,
            disposition: "not_found",
        },
    }
}

/// `POST /explain`: parses the goal batch, answers it, and classifies
/// the outcome so sheds, deadline exhaustion and per-goal failures stay
/// distinguishable in the access log and metrics.
fn explain_route(body: &str, service: &ExplainService, config: &ServeConfig) -> Response {
    let goals = match parse_goals(body) {
        Err(detail) => {
            reject_metric("bad_request");
            return Response::json("400 Bad Request", error_body(&detail), "bad_request");
        }
        Ok(goals) if goals.len() > config.max_goals_per_batch => {
            reject_metric("too_many_goals");
            return Response::json(
                "400 Bad Request",
                error_body(&format!(
                    "batch of {} goals exceeds the per-request cap of {}",
                    goals.len(),
                    config.max_goals_per_batch
                )),
                "bad_request",
            );
        }
        Ok(goals) => goals,
    };
    let (version, results) = service.explain_batch(&goals);
    // A fully shed batch is a 503 the client should retry, not a 200
    // with per-goal errors.
    if !results.is_empty()
        && results
            .iter()
            .all(|r| matches!(r, Err(ServeError::Overloaded { .. })))
    {
        reject_metric("queue_full");
        return Response {
            status: "503 Service Unavailable",
            content_type: "application/json",
            body: error_body("job queue saturated; retry later"),
            retry_after: Some(config.retry_after),
            disposition: "shed",
        };
    }
    let mut any_error = false;
    let mut any_exhausted = false;
    for result in &results {
        match result {
            Ok(_) => {}
            Err(
                ServeError::Explain {
                    source: ExplainError::ResourceExhausted { .. },
                    ..
                }
                | ServeError::DeadlineExceeded { .. },
            ) => any_exhausted = true,
            Err(_) => any_error = true,
        }
    }
    let disposition = if any_error {
        "error"
    } else if any_exhausted {
        "exhausted"
    } else {
        "ok"
    };
    let mut w = JsonWriter::new();
    w.open_object();
    w.field_u64("snapshot_version", version);
    w.key("answers");
    w.open_array();
    for (goal, result) in goals.iter().zip(&results) {
        w.open_object();
        w.field_str("goal", &goal.to_string());
        match result {
            Ok(e) => {
                w.field_str("text", &e.text);
                w.field_u64("chase_steps", e.chase_steps as u64);
                w.key("paths");
                w.open_array();
                for p in &e.paths {
                    w.value_str(p);
                }
                w.close_array();
            }
            Err(err) => {
                w.field_str("error", &render_error(err));
            }
        }
        w.close_object();
    }
    w.close_array();
    w.close_object();
    Response::json("200 OK", w.finish(), disposition)
}

/// Renders an error with its full `source()` chain.
fn render_error(err: &ServeError) -> String {
    let mut text = err.to_string();
    let mut source = std::error::Error::source(err);
    while let Some(cause) = source {
        text.push_str(": ");
        text.push_str(&cause.to_string());
        source = cause.source();
    }
    text
}

/// Parses an `/explain` body: one goal fact literal per statement, in
/// the engine's surface syntax (e.g. `control("B", "D").`).
fn parse_goals(body: &str) -> Result<Vec<vadalog::Fact>, String> {
    let trimmed = body.trim();
    if trimmed.is_empty() {
        return Err("empty body; send goal fact literals like control(\"B\", \"D\").".to_owned());
    }
    let parsed = vadalog::parse_program(trimmed).map_err(|e| e.to_string())?;
    if !parsed.program.is_empty() {
        return Err("body must contain facts only, no rules".to_owned());
    }
    if parsed.facts.is_empty() {
        return Err("no goal facts in body".to_owned());
    }
    Ok(parsed.facts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_bodies_parse_and_reject_rules() {
        let goals = parse_goals("control(\"B\", \"D\").\ncontrol(\"B\", \"E\").").unwrap();
        assert_eq!(goals.len(), 2);
        assert!(parse_goals("").is_err());
        assert!(parse_goals("r: a(x) -> b(x).").is_err());
        assert!(parse_goals("not a program").is_err());
    }

    #[test]
    fn head_end_finds_both_terminators() {
        assert_eq!(
            head_end(b"GET / HTTP/1.1\r\nHost: x\r\n\r\nbody"),
            Some((23, 4))
        );
        assert_eq!(head_end(b"GET / HTTP/1.1\nHost: x\n\nbody"), Some((22, 2)));
        assert_eq!(head_end(b"GET / HTTP/1.1\r\nHost: x\r\n"), None);
    }
}
