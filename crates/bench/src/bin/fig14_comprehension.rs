//! Regenerates Fig. 14: the comprehension user study (24 simulated users,
//! five cases, error archetypes I-IV).

fn main() {
    let outcome = bench::fig14::run(2025);
    println!(
        "Figure 14 — Comprehension user study ({} answers)\n",
        24 * 5
    );
    print!(
        "{}",
        bench::render_table(&bench::fig14::HEADERS, &bench::fig14::rows(&outcome))
    );
    let correct: usize = outcome.cases.iter().map(|c| c.correct).sum();
    let total: usize = outcome.cases.iter().map(|c| c.total).sum();
    let (lo, hi) = stats::wilson95(correct, total).expect("non-empty study");
    println!(
        "\nOverall accuracy: {:.1}% (95% CI {:.1}%-{:.1}%)  (paper: 96%)",
        100.0 * outcome.overall_accuracy(),
        100.0 * lo,
        100.0 * hi
    );
    for c in &outcome.cases {
        println!("  case: {}", c.name);
    }
}
