//! Fig. 17: relative proportion of missing information in the output of
//! the (simulated) LLM asked to paraphrase/summarize deterministic proofs
//! of increasing length — and the template-based approach's zero-omission
//! counterpoint (Sec. 6.3).

use explain::{ExplanationPipeline, TemplateFlavor};
use finkg::apps::{control, stress};
use llm_sim::{omission_ratio, Prompt, SimulatedLlm};
use stats::Boxplot;
use studies::proof_constants;
use vadalog::ChaseSession;

/// Which application the sweep runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum App {
    /// Company control (Fig. 17a; chase steps 3..21).
    CompanyControl,
    /// Two-channel stress test (Fig. 17b; chase steps 1..9).
    StressTest,
}

impl App {
    /// The paper's x-axis for this application.
    pub fn paper_steps(self) -> Vec<usize> {
        match self {
            App::CompanyControl => vec![3, 6, 9, 12, 15, 18, 21],
            App::StressTest => vec![1, 3, 5, 7, 9],
        }
    }
}

/// One measured point of the figure: the distribution of omission ratios
/// over `proofs` distinct proofs of one length.
#[derive(Clone, Debug)]
pub struct OmissionPoint {
    /// Proof length in chase steps.
    pub steps: usize,
    /// The LLM prompt.
    pub prompt: Prompt,
    /// Boxplot of the omission ratios.
    pub boxplot: Boxplot,
    /// Maximum omission ratio of the *template-based* explanations of the
    /// same proofs (the paper's guarantee: always 0).
    pub template_max_omission: f64,
}

/// Runs the sweep for one application.
pub fn run(app: App, steps: &[usize], proofs_per_len: usize, seed: u64) -> Vec<OmissionPoint> {
    let (program, goal_for, glossary) = match app {
        App::CompanyControl => (control::program(), None, control::glossary()),
        App::StressTest => (stress::program(), Some(()), stress::glossary()),
    };
    let _ = goal_for;

    let mut out = Vec::new();
    for &len in steps {
        let bundle = match app {
            App::CompanyControl => finkg::control_bundle(len, proofs_per_len, seed + len as u64),
            App::StressTest => finkg::stress_bundle(len, proofs_per_len, seed + len as u64),
        };
        // For even stress lengths the target is a risk fact; the pipeline
        // goal must match the target predicate.
        let goal = bundle.targets[0].predicate.as_str();
        let pipeline = ExplanationPipeline::builder(program.clone(), goal)
            .with_glossary(&glossary)
            .build()
            .expect("pipeline builds");
        let outcome = ChaseSession::new(&program)
            .run(bundle.database.clone())
            .expect("chase succeeds");

        let mut ratios_para = Vec::with_capacity(proofs_per_len);
        let mut ratios_summ = Vec::with_capacity(proofs_per_len);
        let mut template_max: f64 = 0.0;
        for (i, target) in bundle.targets.iter().enumerate() {
            let id = outcome.lookup(target).expect("target derived");
            let det = pipeline
                .explain_id(&outcome, id, TemplateFlavor::Deterministic)
                .expect("explainable")
                .text;
            let constants = proof_constants(&outcome, id, &glossary);

            let para = SimulatedLlm::new(Prompt::Paraphrase, seed).rewrite(&det, i as u64);
            let summ = SimulatedLlm::new(Prompt::Summarize, seed).rewrite(&det, i as u64);
            ratios_para.push(omission_ratio(&para, &constants));
            ratios_summ.push(omission_ratio(&summ, &constants));

            let template = pipeline
                .explain_id(&outcome, id, TemplateFlavor::Enhanced)
                .expect("explainable")
                .text;
            template_max = template_max.max(omission_ratio(&template, &constants));
        }
        out.push(OmissionPoint {
            steps: len,
            prompt: Prompt::Paraphrase,
            boxplot: Boxplot::of(&ratios_para).expect("non-empty"),
            template_max_omission: template_max,
        });
        out.push(OmissionPoint {
            steps: len,
            prompt: Prompt::Summarize,
            boxplot: Boxplot::of(&ratios_summ).expect("non-empty"),
            template_max_omission: template_max,
        });
    }
    out
}

/// Table rows for one prompt's series.
pub fn rows(points: &[OmissionPoint], prompt: Prompt) -> Vec<Vec<String>> {
    points
        .iter()
        .filter(|p| p.prompt == prompt)
        .map(|p| {
            vec![
                p.steps.to_string(),
                format!("{:.3}", p.boxplot.min),
                format!("{:.3}", p.boxplot.q1),
                format!("{:.3}", p.boxplot.median),
                format!("{:.3}", p.boxplot.q3),
                format!("{:.3}", p.boxplot.max),
                format!("{:.3}", p.boxplot.mean),
                format!("{:.3}", p.template_max_omission),
            ]
        })
        .collect()
}

/// Column headers of the omission tables.
pub const HEADERS: [&str; 8] = [
    "Chase Steps",
    "min",
    "q1",
    "median",
    "q3",
    "max",
    "mean",
    "templates",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_never_omit() {
        for app in [App::CompanyControl, App::StressTest] {
            let steps = match app {
                App::CompanyControl => vec![3, 9],
                App::StressTest => vec![1, 5],
            };
            for p in run(app, &steps, 3, 7) {
                assert_eq!(
                    p.template_max_omission, 0.0,
                    "{app:?}@{}: template omitted",
                    p.steps
                );
            }
        }
    }

    #[test]
    fn omissions_grow_with_proof_length() {
        let points = run(App::CompanyControl, &[3, 18], 6, 3);
        let mean_at = |steps: usize, prompt: Prompt| {
            points
                .iter()
                .find(|p| p.steps == steps && p.prompt == prompt)
                .unwrap()
                .boxplot
                .mean
        };
        assert!(mean_at(18, Prompt::Summarize) > mean_at(3, Prompt::Summarize));
        assert!(mean_at(18, Prompt::Summarize) >= mean_at(18, Prompt::Paraphrase));
    }
}
