//! Kill-and-resume property tests (feature `faultpoints`): a simulated
//! crash at every round boundary and at intra-round safe points, followed
//! by recovery from the last autosaved snapshot, must reach a state
//! bitwise identical to the uninterrupted run — at any thread count.
//!
//! Each test holds its armed plan across the whole crash-and-recover
//! cycle: a plan entry fires on an exact hit count, so once it has fired
//! the recovery run can never re-trigger it, and holding the guard keeps
//! concurrently running tests from injecting faults into each other's
//! recovery phases.

#![cfg(feature = "faultpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use vadalog::faultpoint::{arm, FaultCrash, FaultPlan};
use vadalog::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("faultpoint_kill");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Company control over an ownership chain with diamond joints: control
/// propagates one hop per round, so the chase runs many rounds and every
/// round commits several rules.
fn scenario() -> ParsedProgram {
    let mut text = String::from(
        "o1: own(x, y, s), s > 0.5 -> control(x, y).\n\
         o2: company(x) -> control(x, x).\n\
         o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).\n\
         company(\"c0\").\n",
    );
    for k in 0..8 {
        text.push_str(&format!("own(\"c{k}\", \"c{}\", 0.6).\n", k + 1));
        // Diamond joints: two sub-threshold edges that only add up to
        // control through the o3 aggregation.
        text.push_str(&format!("own(\"c{k}\", \"d{k}\", 0.3).\n"));
        text.push_str(&format!("own(\"c{}\", \"d{k}\", 0.3).\n", k + 1));
    }
    parse_program(&text).unwrap()
}

fn db(parsed: &ParsedProgram) -> Database {
    parsed.facts.iter().cloned().collect()
}

/// The full structural fingerprint (facts in id order with activity,
/// derivations in recording order, rounds, violations): equality means
/// the outcomes are interchangeable for every downstream consumer.
fn fingerprint(out: &ChaseOutcome) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for (id, fact) in out.database.iter() {
        let _ = writeln!(s, "{id} {fact} active={}", out.database.is_active(id));
    }
    for d in out.graph.derivations() {
        let _ = writeln!(
            s,
            "r{} {:?} -> {} round={} contrib={} bindings={}",
            d.rule.0,
            d.premises,
            d.conclusion,
            d.round,
            d.contributors,
            d.bindings.len(),
        );
    }
    let _ = write!(s, "rounds={} violations={:?}", out.rounds, out.violations);
    s
}

fn reference() -> (ParsedProgram, String, u64) {
    let parsed = scenario();
    let out = ChaseSession::new(&parsed.program)
        .with_threads(1)
        .run(db(&parsed))
        .unwrap();
    let rounds = u64::from(out.report.rounds);
    let print = fingerprint(&out);
    (parsed, print, rounds)
}

/// Runs `session` expecting an injected crash; asserts the run died by
/// panic. The `FaultCrash` payload survives on the main thread; a crash
/// inside a pooled worker is re-raised through `thread::scope`, which
/// replaces the payload — so the payload type is only checked when
/// `expect_payload` is set.
fn expect_crash(session: &ChaseSession<'_>, database: Database, expect_payload: bool) {
    let payload = catch_unwind(AssertUnwindSafe(|| session.run(database)))
        .expect_err("the armed crash did not fire");
    if expect_payload {
        assert!(
            payload.downcast_ref::<FaultCrash>().is_some(),
            "crash unwound with an unexpected payload"
        );
    }
}

/// Recovers after a simulated crash: from the snapshot if one was
/// written, from scratch if the crash predated the first autosave.
fn recover(session: &ChaseSession<'_>, path: &Path, parsed: &ParsedProgram) -> ChaseOutcome {
    if path.exists() {
        session.resume_from_path(path).unwrap()
    } else {
        session.run(db(parsed)).unwrap()
    }
}

#[test]
fn crash_at_every_round_boundary_resumes_identically() {
    let (parsed, expected, rounds) = reference();
    assert!(
        rounds >= 4,
        "scenario too shallow to exercise round crashes"
    );
    for threads in THREADS {
        for n in 1..=rounds {
            let path = tmp(&format!("round-{threads}-{n}.ckpt"));
            let _ = std::fs::remove_file(&path);
            let session = ChaseSession::new(&parsed.program).with_config(
                ChaseConfig::default()
                    .with_threads(threads)
                    .with_autosave(AutosavePolicy::new(&path).every_rounds(1)),
            );
            let _armed = arm(FaultPlan::new().crash_at("chase.round", n));
            expect_crash(&session, db(&parsed), true);
            let recovered = recover(&session, &path, &parsed);
            assert_eq!(
                fingerprint(&recovered),
                expected,
                "divergence after a crash at round {n} with {threads} threads"
            );
        }
    }
}

#[test]
fn crash_at_intra_round_safe_points_resumes_identically() {
    let (parsed, expected, _) = reference();
    for threads in THREADS {
        for (point, on_main_thread) in [("chase.commit_rule", true), ("chase.match_chunk", false)] {
            for n in [1u64, 3, 7] {
                let path = tmp(&format!("intra-{threads}-{n}.ckpt"));
                let _ = std::fs::remove_file(&path);
                let session = ChaseSession::new(&parsed.program).with_config(
                    ChaseConfig::default()
                        .with_threads(threads)
                        .with_autosave(AutosavePolicy::new(&path).every_rounds(1)),
                );
                let _armed = arm(FaultPlan::new().crash_at(point, n));
                expect_crash(&session, db(&parsed), on_main_thread || threads == 1);
                let recovered = recover(&session, &path, &parsed);
                assert_eq!(
                    fingerprint(&recovered),
                    expected,
                    "divergence after a crash at {point} hit {n} with {threads} threads"
                );
            }
        }
    }
}

#[test]
fn crash_during_checkpoint_commit_preserves_the_previous_snapshot() {
    let (parsed, expected, _) = reference();
    let path = tmp("commit-crash.ckpt");
    let _ = std::fs::remove_file(&path);
    let session = ChaseSession::new(&parsed.program).with_config(
        ChaseConfig::default()
            .with_threads(2)
            .with_autosave(AutosavePolicy::new(&path).every_rounds(1)),
    );
    // The second autosave dies after fsyncing its temp file but before
    // the atomic rename: the snapshot of round 1 must still be intact.
    let _armed = arm(FaultPlan::new().crash_at("checkpoint.commit", 2));
    expect_crash(&session, db(&parsed), true);
    assert!(path.exists(), "the round-1 snapshot should have survived");
    let recovered = session.resume_from_path(&path).unwrap();
    assert_eq!(fingerprint(&recovered), expected);
}

#[test]
fn autosave_io_failure_returns_a_resumable_partial() {
    let (parsed, expected, _) = reference();
    let path = tmp("io-failure.ckpt");
    let _ = std::fs::remove_file(&path);
    let session = ChaseSession::new(&parsed.program).with_config(
        ChaseConfig::default()
            .with_threads(2)
            .with_autosave(AutosavePolicy::new(&path).every_rounds(1)),
    );
    let _armed = arm(FaultPlan::new().io_error_at("checkpoint.write", 1));
    match session.run(db(&parsed)) {
        Err(ChaseError::Checkpoint {
            source: CheckpointError::Io(_),
            partial: Some(partial),
        }) => {
            assert!(partial.is_partial());
            assert_eq!(partial.report.termination, Termination::Suspended);
            let out = session.resume(*partial, std::iter::empty()).unwrap();
            assert_eq!(fingerprint(&out), expected);
        }
        other => panic!("expected ChaseError::Checkpoint with a partial, got {other:?}"),
    }
}

#[test]
fn worker_panic_is_isolated_and_resumable() {
    let (parsed, expected, _) = reference();
    for threads in THREADS {
        for n in [1u64, 4] {
            let path = tmp(&format!("panic-{threads}-{n}.ckpt"));
            let _ = std::fs::remove_file(&path);
            let session = ChaseSession::new(&parsed.program).with_config(
                ChaseConfig::default()
                    .with_threads(threads)
                    // Trip-save only: the snapshot on disk is the one
                    // written in reaction to the panic.
                    .with_autosave(AutosavePolicy::new(&path)),
            );
            let _armed = arm(FaultPlan::new().panic_at("chase.match_chunk", n));
            match session.run(db(&parsed)) {
                Err(ChaseError::WorkerPanic {
                    rule,
                    message,
                    partial,
                }) => {
                    assert!(!rule.is_empty(), "the panic should name a rule");
                    assert!(
                        message.contains("injected panic"),
                        "unexpected panic message: {message}"
                    );
                    assert!(partial.is_partial());
                    // In-memory continuation of the carried partial.
                    let out = session.resume(*partial, std::iter::empty()).unwrap();
                    assert_eq!(
                        fingerprint(&out),
                        expected,
                        "in-memory resume diverged at {threads} threads, hit {n}"
                    );
                    // And the panic also trip-saved a resumable snapshot.
                    let out = session.resume_from_path(&path).unwrap();
                    assert_eq!(
                        fingerprint(&out),
                        expected,
                        "on-disk resume diverged at {threads} threads, hit {n}"
                    );
                }
                other => panic!("expected ChaseError::WorkerPanic, got {other:?}"),
            }
        }
    }
}
