//! Property-based tests of the finkg crate: workload-generator guarantees
//! and error-archetype detectability over randomized parameters.

use finkg::apps::{control, stress};
use finkg::{inject_error, VizGraph, ALL_ARCHETYPES};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vadalog::{ChaseSession, DerivationPolicy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Control bundles embed proofs of exactly the requested length, for
    /// any seed and count.
    #[test]
    fn control_bundle_lengths_are_exact(
        steps in 1usize..10,
        count in 1usize..4,
        seed in 0u64..1000,
    ) {
        let bundle = finkg::control_bundle(steps, count, seed);
        let out = ChaseSession::new(&control::program()).run(bundle.database).unwrap();
        prop_assert_eq!(bundle.targets.len(), count);
        for target in &bundle.targets {
            let id = out.lookup(target).expect("target derived");
            let tau = out
                .graph
                .proof(id, DerivationPolicy::Richest)
                .linearize(&out.graph);
            prop_assert_eq!(tau.len(), steps);
        }
    }

    /// Stress bundles embed proofs of exactly the requested length, both
    /// parities (odd = default target, even = risk target).
    #[test]
    fn stress_bundle_lengths_are_exact(
        steps in 1usize..9,
        seed in 0u64..1000,
    ) {
        let bundle = finkg::stress_bundle(steps, 2, seed);
        let out = ChaseSession::new(&stress::program()).run(bundle.database).unwrap();
        for target in &bundle.targets {
            let id = out.lookup(target).expect("target derived");
            let tau = out
                .graph
                .proof(id, DerivationPolicy::Richest)
                .linearize(&out.graph);
            prop_assert_eq!(tau.len(), steps);
        }
    }

    /// Every applicable error injection produces a structurally different
    /// graph (a distractor is never accidentally identical).
    #[test]
    fn injections_always_differ(seed in 0u64..500) {
        let out = ChaseSession::new(&finkg::apps::simple_stress::program())
            .run(finkg::apps::simple_stress::figure_8_database())
            .unwrap();
        let id = out
            .lookup(&vadalog::Fact::new("default", vec!["C".into()]))
            .unwrap();
        let graph = VizGraph::from_proof(&out, id);
        let mut rng = StdRng::seed_from_u64(seed);
        for archetype in ALL_ARCHETYPES {
            if let Some(bad) = inject_error(&graph, archetype, &mut rng) {
                prop_assert!(!bad.same_structure(&graph), "{:?}", archetype);
            }
        }
    }

    /// Random networks chase to fixpoint without errors for any seed.
    #[test]
    fn random_networks_always_terminate(
        n in 5usize..60,
        out_deg in 0usize..5,
        seed in 0u64..500,
    ) {
        let own = finkg::random_ownership(n, out_deg, seed);
        prop_assert!(ChaseSession::new(&control::program()).run(own).is_ok());
        let debt = finkg::random_debt_network(n, out_deg, 2, seed);
        prop_assert!(ChaseSession::new(&stress::program()).run(debt).is_ok());
    }

    /// Ownership shares generated for direct-majority chains are always
    /// majorities, so chain targets are always derived.
    #[test]
    fn chain_links_are_majorities(steps in 1usize..8, seed in 0u64..200) {
        let bundle = finkg::control_bundle(steps, 1, seed);
        for (_, fact) in bundle.database.iter() {
            if fact.predicate == vadalog::Symbol::new("own") {
                let share = fact.values[2].as_f64().unwrap();
                prop_assert!(share > 0.5 && share < 1.0, "share {share}");
            }
        }
    }

    /// Run telemetry is part of the determinism contract: every counter
    /// in the RunReport (matches, commits, duplicates, probes, scans,
    /// peaks — everything except wall-clock timings) agrees between 1, 2
    /// and 8 worker threads on random workloads.
    #[test]
    fn run_reports_are_thread_invariant(
        n in 5usize..40,
        out_deg in 0usize..4,
        seed in 0u64..500,
    ) {
        let program = control::program();
        let db = finkg::random_ownership(n, out_deg, seed);
        let reference = ChaseSession::new(&program)
            .with_threads(1)
            .run(db.clone())
            .unwrap();
        for threads in [2usize, 8] {
            let out = ChaseSession::new(&program)
                .with_threads(threads)
                .run(db.clone())
                .unwrap();
            prop_assert_eq!(
                out.report.count_fingerprint(),
                reference.report.count_fingerprint(),
                "telemetry diverged at {} threads", threads
            );
        }
    }
}
