//! Deterministic fault injection (fail-point style), feature-gated.
//!
//! With the `faultpoints` cargo feature enabled, tests arm a
//! `FaultPlan` (exported only with the feature) that fires a fault the
//! *n*-th time execution reaches a
//! named point. The engine and the [`checkpoint`](crate::checkpoint)
//! module consult these points at their safe points and around every
//! durable I/O step, so recovery paths can be exercised deterministically:
//! a plan is a pure function of (point name, hit count), never of timing
//! or scheduling.
//!
//! Four fault kinds exist:
//!
//! * [`FaultKind::Crash`] — simulated process death: panics with the
//!   dedicated [`FaultCrash`] payload, which the engine's worker-panic
//!   isolation deliberately re-raises instead of catching, so the panic
//!   escapes the run like a `kill -9` would end it. Tests catch it with
//!   `std::panic::catch_unwind` and then recover from the last snapshot.
//! * [`FaultKind::Panic`] — an ordinary panic (string payload), used to
//!   exercise the worker-panic isolation itself
//!   ([`ChaseError::WorkerPanic`](crate::error::ChaseError)).
//! * [`FaultKind::IoError`] — makes the guarded I/O step return
//!   `std::io::Error`, surfacing as
//!   [`CheckpointError::Io`](crate::checkpoint::CheckpointError).
//! * [`FaultKind::Sleep`] — stalls the hit for a fixed number of
//!   milliseconds before continuing: slow-handler / slow-worker
//!   injection for the serving layer's overload and deadline tests.
//!
//! Without the feature, the hooks compile to empty inlined functions:
//! zero cost, no global state.
//!
//! ## Instrumented points
//!
//! | point | location |
//! |---|---|
//! | `chase.round` | top of every evaluation round (after the budget check) |
//! | `chase.commit_rule` | between per-rule commits of the sequential phase |
//! | `chase.match_chunk` | before a worker evaluates a match chunk |
//! | `checkpoint.write` | before writing the temp snapshot file |
//! | `checkpoint.sync` | before fsyncing the temp snapshot file |
//! | `checkpoint.commit` | after fsync, before the atomic rename |
//! | `checkpoint.rename` | the atomic rename itself |
//! | `checkpoint.read` | before reading a snapshot file |
//! | `serve.worker` | before an explain worker evaluates a job (`crates/serve`) |
//! | `serve.publish` | before a snapshot publish commits (`crates/serve`) |
//! | `serve.handler` | top of every HTTP connection handler (`crates/serve`) |
//!
//! The `serve.*` points live outside this crate; they reach the armed
//! plan through the public [`hit`] / [`io_hit`] hooks.

/// Panic payload of a [`FaultKind::Crash`]: simulated process death.
///
/// The engine's worker-panic isolation re-raises this payload instead of
/// converting it to `ChaseError::WorkerPanic`, so an injected crash always
/// terminates the run the way a real crash would.
#[derive(Debug)]
pub struct FaultCrash {
    /// The fault point that fired.
    pub point: &'static str,
}

/// The kind of fault a plan entry injects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Simulated process death ([`FaultCrash`] panic payload).
    Crash,
    /// An ordinary panic with a string payload.
    Panic,
    /// An injected `std::io::Error` at an I/O fault point.
    IoError,
    /// A stall: the hit sleeps for the given milliseconds, then
    /// continues normally (slow-handler / slow-worker injection).
    Sleep(u64),
}

#[cfg(feature = "faultpoints")]
pub use active::{arm, ArmedFaults, FaultPlan};

#[cfg(feature = "faultpoints")]
mod active {
    use super::{FaultCrash, FaultKind};
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// One entry of a plan: fire `kind` on the `nth` (1-based) hit of
    /// `point`.
    #[derive(Clone, Debug)]
    struct Entry {
        point: String,
        kind: FaultKind,
        nth: u64,
    }

    /// A deterministic fault schedule: entries fire on exact hit counts
    /// of named points.
    #[derive(Clone, Debug, Default)]
    pub struct FaultPlan {
        entries: Vec<Entry>,
    }

    impl FaultPlan {
        /// An empty plan.
        pub fn new() -> FaultPlan {
            FaultPlan::default()
        }

        /// Simulates process death on the `nth` (1-based) hit of `point`.
        pub fn crash_at(mut self, point: &str, nth: u64) -> FaultPlan {
            self.entries.push(Entry {
                point: point.to_string(),
                kind: FaultKind::Crash,
                nth,
            });
            self
        }

        /// Injects an ordinary panic on the `nth` (1-based) hit of
        /// `point`.
        pub fn panic_at(mut self, point: &str, nth: u64) -> FaultPlan {
            self.entries.push(Entry {
                point: point.to_string(),
                kind: FaultKind::Panic,
                nth,
            });
            self
        }

        /// Fails the guarded I/O step on the `nth` (1-based) hit of
        /// `point`.
        pub fn io_error_at(mut self, point: &str, nth: u64) -> FaultPlan {
            self.entries.push(Entry {
                point: point.to_string(),
                kind: FaultKind::IoError,
                nth,
            });
            self
        }

        /// Stalls the `nth` (1-based) hit of `point` for `millis`
        /// milliseconds before letting it continue.
        pub fn sleep_at(mut self, point: &str, nth: u64, millis: u64) -> FaultPlan {
            self.entries.push(Entry {
                point: point.to_string(),
                kind: FaultKind::Sleep(millis),
                nth,
            });
            self
        }

        /// Stalls *every* hit of `point` from the `from`-th (1-based)
        /// onwards for `millis` milliseconds: sustained slow-handler
        /// injection for overload tests. Internally unrolled to `count`
        /// per-hit entries starting at `from`.
        pub fn sleep_from(mut self, point: &str, from: u64, count: u64, millis: u64) -> FaultPlan {
            for nth in from..from + count {
                self.entries.push(Entry {
                    point: point.to_string(),
                    kind: FaultKind::Sleep(millis),
                    nth,
                });
            }
            self
        }
    }

    struct Active {
        plan: FaultPlan,
        hits: HashMap<String, u64>,
    }

    fn registry() -> &'static Mutex<Option<Active>> {
        static REGISTRY: OnceLock<Mutex<Option<Active>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(None))
    }

    /// Serializes tests that arm fault plans: the registry is
    /// process-global, so two concurrently-armed plans would interfere.
    fn test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    /// Guard of an armed plan: the plan stays active (and other armings
    /// block) until the guard is dropped.
    pub struct ArmedFaults {
        _exclusive: MutexGuard<'static, ()>,
    }

    impl std::fmt::Debug for ArmedFaults {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ArmedFaults").finish_non_exhaustive()
        }
    }

    impl Drop for ArmedFaults {
        fn drop(&mut self) {
            if let Ok(mut slot) = registry().lock() {
                *slot = None;
            }
        }
    }

    /// Arms `plan` process-wide, returning a guard that disarms it on
    /// drop. Blocks while another plan is armed (a panicking armed test
    /// poisons neither lock: poisoning is recovered into the inner
    /// value).
    pub fn arm(plan: FaultPlan) -> ArmedFaults {
        let exclusive = match test_lock().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut slot = match registry().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *slot = Some(Active {
            plan,
            hits: HashMap::new(),
        });
        drop(slot);
        ArmedFaults {
            _exclusive: exclusive,
        }
    }

    /// Records a hit of `point` and returns the fault to fire, if any.
    fn check(point: &str) -> Option<FaultKind> {
        let mut slot = match registry().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let active = slot.as_mut()?;
        let count = active.hits.entry(point.to_string()).or_insert(0);
        *count += 1;
        let count = *count;
        active
            .plan
            .entries
            .iter()
            .find(|e| e.point == point && e.nth == count)
            .map(|e| e.kind)
    }

    /// A non-I/O fault point: panics (crash or plain) or stalls when the
    /// armed plan schedules a fault for this hit.
    pub(crate) fn trigger(point: &'static str) {
        match check(point) {
            Some(FaultKind::Crash) => {
                std::panic::panic_any(FaultCrash { point });
            }
            Some(FaultKind::Panic) => {
                panic!("injected panic at fault point `{point}`");
            }
            Some(FaultKind::Sleep(millis)) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            Some(FaultKind::IoError) | None => {}
        }
    }

    /// An I/O fault point: returns an injected error (or panics/stalls,
    /// for the other kinds) when the armed plan schedules a fault for
    /// this hit.
    pub(crate) fn io(point: &'static str) -> std::io::Result<()> {
        match check(point) {
            Some(FaultKind::IoError) => Err(std::io::Error::other(format!(
                "injected I/O failure at fault point `{point}`"
            ))),
            Some(FaultKind::Crash) => {
                std::panic::panic_any(FaultCrash { point });
            }
            Some(FaultKind::Panic) => {
                panic!("injected panic at fault point `{point}`");
            }
            Some(FaultKind::Sleep(millis)) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                Ok(())
            }
            None => Ok(()),
        }
    }
}

/// A non-I/O fault point (disabled: the `faultpoints` feature is off, the
/// call is a no-op the optimizer removes).
#[cfg(not(feature = "faultpoints"))]
#[inline(always)]
pub(crate) fn trigger(_point: &'static str) {}

/// An I/O fault point (disabled: always `Ok`).
#[cfg(not(feature = "faultpoints"))]
#[inline(always)]
pub(crate) fn io(_point: &'static str) -> std::io::Result<()> {
    Ok(())
}

#[cfg(feature = "faultpoints")]
pub(crate) use active::{io, trigger};

/// Public non-I/O fault hook for instrumented points living outside
/// this crate (the serving layer's `serve.*` points): records a hit of
/// `point` and fires the armed fault, if any. A no-op without the
/// `faultpoints` feature.
#[inline]
pub fn hit(point: &'static str) {
    trigger(point)
}

/// Public I/O fault hook for instrumented points living outside this
/// crate: returns the injected `std::io::Error` (or panics/stalls, for
/// the other kinds) when the armed plan schedules a fault for this hit.
/// Always `Ok` without the `faultpoints` feature.
#[inline]
pub fn io_hit(point: &'static str) -> std::io::Result<()> {
    io(point)
}

#[cfg(all(test, feature = "faultpoints"))]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_on_exact_hit_counts() {
        let _armed = arm(FaultPlan::new().io_error_at("t.io", 2));
        assert!(io("t.io").is_ok());
        assert!(io("t.io").is_err());
        assert!(io("t.io").is_ok());
    }

    #[test]
    fn crash_payload_names_the_point() {
        let _armed = arm(FaultPlan::new().crash_at("t.crash", 1));
        let err = std::panic::catch_unwind(|| trigger("t.crash")).unwrap_err();
        let crash = err
            .downcast_ref::<FaultCrash>()
            .expect("FaultCrash payload");
        assert_eq!(crash.point, "t.crash");
    }

    #[test]
    fn unarmed_points_are_inert() {
        trigger("t.unarmed");
        assert!(io("t.unarmed").is_ok());
    }

    #[test]
    fn sleep_faults_stall_then_continue() {
        let _armed = arm(FaultPlan::new().sleep_at("t.sleep", 1, 30));
        let start = std::time::Instant::now();
        hit("t.sleep");
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
        // Second hit is unscheduled: no stall.
        let start = std::time::Instant::now();
        hit("t.sleep");
        assert!(start.elapsed() < std::time::Duration::from_millis(30));
    }

    #[test]
    fn sleep_from_unrolls_a_hit_range() {
        let _armed = arm(FaultPlan::new().sleep_from("t.range", 2, 2, 20));
        let timed = |point| {
            let start = std::time::Instant::now();
            assert!(io_hit(point).is_ok());
            start.elapsed()
        };
        assert!(timed("t.range") < std::time::Duration::from_millis(20)); // hit 1
        assert!(timed("t.range") >= std::time::Duration::from_millis(20)); // hit 2
        assert!(timed("t.range") >= std::time::Duration::from_millis(20)); // hit 3
        assert!(timed("t.range") < std::time::Duration::from_millis(20)); // hit 4
    }
}
