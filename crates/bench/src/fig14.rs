//! Fig. 14: the comprehension user study table.

use studies::comprehension::{run as run_study, ComprehensionConfig};
use studies::ComprehensionOutcome;

/// Runs the simulated study with the paper's parameters (24 users, five
/// cases).
pub fn run(seed: u64) -> ComprehensionOutcome {
    run_study(&ComprehensionConfig {
        seed,
        ..ComprehensionConfig::default()
    })
}

/// Formats the Fig. 14 table rows: per case, the error share per archetype
/// and the correct-answer share.
pub fn rows(outcome: &ComprehensionOutcome) -> Vec<Vec<String>> {
    use finkg::ErrorArchetype::*;
    outcome
        .cases
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let pct = |n: usize| format!("{:.0}%", 100.0 * n as f64 / c.total as f64);
            vec![
                format!("{}", i + 1),
                pct(c.errors.get(&WrongEdge).copied().unwrap_or(0)),
                pct(c.errors.get(&WrongValue).copied().unwrap_or(0)),
                pct(c.errors.get(&WrongAggregationOrder).copied().unwrap_or(0)),
                pct(c.errors.get(&WrongChain).copied().unwrap_or(0)),
                format!("{:.0}%", 100.0 * c.accuracy()),
            ]
        })
        .collect()
}

/// Column headers of the table.
pub const HEADERS: [&str; 6] = [
    "Case Study",
    "Wrong Edge",
    "Wrong Value",
    "Incorrect Aggregation",
    "Incorrect Chain",
    "Correct Answers",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_matches_paper_band() {
        let out = run(2025);
        // The paper reports 96% overall with per-case 92-100%.
        let acc = out.overall_accuracy();
        assert!(acc >= 0.9, "overall accuracy {acc}");
        for c in &out.cases {
            assert!(c.accuracy() >= 0.75, "{}: {}", c.name, c.accuracy());
        }
    }

    #[test]
    fn rows_have_six_columns_and_five_cases() {
        let out = run(2025);
        let rs = rows(&out);
        assert_eq!(rs.len(), 5);
        assert!(rs.iter().all(|r| r.len() == HEADERS.len()));
    }
}
