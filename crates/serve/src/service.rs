//! The concurrent explanation service: a bounded worker pool answering
//! explanation goals against Arc-shared snapshots and cached artifacts.
//!
//! Every query is a pure function of `(artifacts, snapshot, goal)`, so
//! parallelism needs no coordination beyond handing out work: N workers
//! pull jobs from one bounded queue, each computes against the `Arc` of
//! the snapshot captured when its batch entered, and results are placed
//! back by index. Answers are therefore *byte-identical* at any worker
//! count — the serving-side mirror of the engine's determinism contract —
//! and a batch never observes two different snapshot versions even while
//! a publisher replaces it underneath.

use crate::snapshot::{Snapshot, SnapshotHandle};
use explain::pipeline::{Explanation, TemplateFlavor};
use explain::{ExplainError, ProgramArtifacts};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use vadalog::{DerivationPolicy, Fact};

/// Configuration of an [`ExplainService`].
///
/// `#[non_exhaustive]`: construct via [`ServeConfig::default`] and the
/// `with_*` setters so new knobs stay additive.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads answering queries (`0` = available parallelism).
    pub workers: usize,
    /// Bound of the job queue; submissions beyond it apply backpressure.
    pub queue_depth: usize,
    /// Template flavour answers use.
    pub flavor: TemplateFlavor,
    /// Derivation-selection policy.
    pub policy: DerivationPolicy,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_depth: 256,
            flavor: TemplateFlavor::Enhanced,
            policy: DerivationPolicy::Richest,
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers;
        self
    }

    /// Sets the job-queue bound.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> ServeConfig {
        self.queue_depth = queue_depth.max(1);
        self
    }

    /// Sets the template flavour.
    pub fn with_flavor(mut self, flavor: TemplateFlavor) -> ServeConfig {
        self.flavor = flavor;
        self
    }

    /// Sets the derivation-selection policy.
    pub fn with_policy(mut self, policy: DerivationPolicy) -> ServeConfig {
        self.policy = policy;
        self
    }

    /// The effective worker count (resolving `0`).
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// A serving-layer failure.
///
/// `#[non_exhaustive]`: match with a wildcard arm so new variants stay
/// additive.
#[non_exhaustive]
#[derive(Debug)]
pub enum ServeError {
    /// The explanation query itself failed; `source()` yields the
    /// underlying [`ExplainError`].
    Explain {
        /// The queried goal fact, rendered.
        goal: String,
        /// The pipeline failure.
        source: ExplainError,
    },
    /// A request body could not be parsed into goal facts.
    BadRequest {
        /// What was wrong with the request.
        detail: String,
    },
    /// The service is shutting down and dropped the job.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Explain { goal, .. } => write!(f, "explanation of {goal} failed"),
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::Shutdown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Explain { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One unit of work: explain `fact` against the batch's snapshot and
/// report the result under `index`.
struct Job {
    fact: Fact,
    snapshot: Arc<Snapshot>,
    index: usize,
    done: Sender<(usize, Result<Explanation, ServeError>)>,
}

/// The concurrent explanation service.
///
/// Construction spawns the worker pool; dropping the service closes the
/// queue and joins every worker. The service holds a [`SnapshotHandle`]
/// clone — publishers push new outcomes in through their own clone with
/// [`SnapshotHandle::publish`], and batches submitted after a publish
/// observe the new version while batches in flight finish on the
/// version they captured.
pub struct ExplainService {
    artifacts: Arc<ProgramArtifacts>,
    handle: SnapshotHandle,
    config: ServeConfig,
    jobs: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ExplainService {
    /// Spawns the worker pool over `artifacts` and the snapshot slot.
    pub fn new(
        artifacts: Arc<ProgramArtifacts>,
        handle: SnapshotHandle,
        config: ServeConfig,
    ) -> ExplainService {
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.effective_workers())
            .map(|i| {
                let rx = Arc::clone(&rx);
                let artifacts = Arc::clone(&artifacts);
                let flavor = config.flavor;
                let policy = config.policy;
                std::thread::Builder::new()
                    .name(format!("explain-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &artifacts, flavor, policy))
                    .expect("spawning explanation worker")
            })
            .collect();
        ExplainService {
            artifacts,
            handle,
            config,
            jobs: Some(tx),
            workers,
        }
    }

    /// The shared artifacts answers are generated from.
    pub fn artifacts(&self) -> &Arc<ProgramArtifacts> {
        &self.artifacts
    }

    /// The snapshot slot the service serves from.
    pub fn snapshot_handle(&self) -> &SnapshotHandle {
        &self.handle
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Answers a batch of explanation goals concurrently, order-preserving.
    ///
    /// The whole batch is answered against the *one* snapshot current at
    /// entry: a concurrent [`SnapshotHandle::publish`] never splits a batch
    /// across versions. Returns one result per goal, in goal order,
    /// together with the snapshot version used.
    pub fn explain_batch(&self, goals: &[Fact]) -> (u64, Vec<Result<Explanation, ServeError>>) {
        let snapshot = self.handle.current();
        let version = snapshot.version();
        let registry = vadalog::obs::metrics::global();
        registry
            .counter(
                "vadalog_serve_requests_total",
                "Explanation goals submitted to the serving layer.",
            )
            .add(goals.len() as u64);
        let (done_tx, done_rx) = mpsc::channel();
        let Some(jobs) = &self.jobs else {
            return (
                version,
                goals.iter().map(|_| Err(ServeError::Shutdown)).collect(),
            );
        };
        let mut submitted = 0usize;
        for (index, fact) in goals.iter().enumerate() {
            let job = Job {
                fact: fact.clone(),
                snapshot: Arc::clone(&snapshot),
                index,
                done: done_tx.clone(),
            };
            if jobs.send(job).is_err() {
                break;
            }
            submitted += 1;
        }
        drop(done_tx);
        let mut results: Vec<Option<Result<Explanation, ServeError>>> =
            (0..goals.len()).map(|_| None).collect();
        for (index, result) in done_rx.iter().take(submitted) {
            results[index] = Some(result);
        }
        let errors = registry.counter(
            "vadalog_serve_errors_total",
            "Explanation goals the serving layer failed to answer.",
        );
        let results: Vec<Result<Explanation, ServeError>> = results
            .into_iter()
            .map(|r| r.unwrap_or(Err(ServeError::Shutdown)))
            .collect();
        errors.add(results.iter().filter(|r| r.is_err()).count() as u64);
        (version, results)
    }

    /// Answers one explanation goal (a single-element batch).
    pub fn explain_one(&self, goal: &Fact) -> (u64, Result<Explanation, ServeError>) {
        let (version, mut results) = self.explain_batch(std::slice::from_ref(goal));
        (version, results.pop().expect("one result per goal"))
    }
}

impl Drop for ExplainService {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        self.jobs = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Pulls jobs until the queue closes. Workers steal from one shared
/// receiver; fairness does not matter because results carry their index.
fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    artifacts: &ProgramArtifacts,
    flavor: TemplateFlavor,
    policy: DerivationPolicy,
) {
    loop {
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        let result = artifacts
            .explain_fact(job.snapshot.outcome(), &job.fact, flavor, policy)
            .map_err(|source| ServeError::Explain {
                goal: job.fact.to_string(),
                source,
            });
        // A dropped batch receiver just discards the answer.
        let _ = job.done.send((job.index, result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog::{parse_program, ChaseSession, Database};

    fn service(workers: usize) -> (ExplainService, Vec<Fact>) {
        let parsed = parse_program(
            r#"
            alpha: edge(x, y) -> reach(x, y).
            beta: reach(x, y), edge(y, z) -> reach(x, z).
            edge("a", "b").
            edge("b", "c").
            edge("c", "d").
        "#,
        )
        .unwrap();
        let artifacts = ProgramArtifacts::builder(parsed.program.clone(), "reach")
            .build_cached()
            .unwrap();
        let db: Database = parsed.facts.into_iter().collect();
        let outcome = ChaseSession::new(&parsed.program).run(db).unwrap();
        let handle = SnapshotHandle::new(outcome);
        let goals = vec![
            Fact::new("reach", vec!["a".into(), "d".into()]),
            Fact::new("reach", vec!["b".into(), "d".into()]),
            Fact::new("reach", vec!["a".into(), "c".into()]),
        ];
        (
            ExplainService::new(
                artifacts,
                handle,
                ServeConfig::default().with_workers(workers),
            ),
            goals,
        )
    }

    #[test]
    fn batches_preserve_goal_order() {
        let (service, goals) = service(2);
        let (version, results) = service.explain_batch(&goals);
        assert_eq!(version, 1);
        assert_eq!(results.len(), goals.len());
        for (goal, result) in goals.iter().zip(&results) {
            let e = result.as_ref().unwrap();
            assert_eq!(&e.fact, goal);
        }
    }

    #[test]
    fn unknown_goals_fail_with_chained_source() {
        let (service, _) = service(1);
        let bogus = Fact::new("reach", vec!["z".into(), "q".into()]);
        let (_, result) = service.explain_one(&bogus);
        let err = result.unwrap_err();
        assert!(matches!(err, ServeError::Explain { .. }));
        let source = std::error::Error::source(&err).expect("source must chain");
        assert!(source.downcast_ref::<ExplainError>().is_some());
    }

    #[test]
    fn config_setters_follow_builder_conventions() {
        let config = ServeConfig::default()
            .with_workers(3)
            .with_queue_depth(7)
            .with_flavor(TemplateFlavor::Deterministic)
            .with_policy(DerivationPolicy::Earliest);
        assert_eq!(config.workers, 3);
        assert_eq!(config.effective_workers(), 3);
        assert_eq!(config.queue_depth, 7);
        assert_eq!(config.flavor, TemplateFlavor::Deterministic);
    }
}
