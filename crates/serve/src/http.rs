//! A dependency-free, overload-safe HTTP/1.1 front end for the
//! explanation service.
//!
//! Hand-rolled over `std::net::TcpListener` because the build ships no
//! external crates. The accept loop is thin and *never blocks on a
//! client*: accepted connections are handed to a bounded pool of
//! [`max_connections`](crate::ServeConfig::max_connections) handler
//! threads behind an admission counter; when every handler is busy the
//! excess connection is shed immediately with `503` + `Retry-After`
//! instead of queueing unboundedly. Every connection carries socket
//! read/write timeouts plus a whole-request read deadline and bounded
//! head/body parsing, so slowloris and byte-dribble clients are dropped
//! on schedule and can never freeze healthy traffic. Heavy lifting (the
//! actual explanation queries) happens on the [`ExplainService`] worker
//! pool. Admission is a slot counter reserved before a connection is
//! queued, so at most `max_connections` connections are ever
//! queued-or-handled. `Connection: close` semantics.
//!
//! Endpoints:
//!
//! | Method & path   | Behaviour                                          |
//! |-----------------|----------------------------------------------------|
//! | `GET /health`   | liveness + current snapshot version                |
//! | `GET /ready`    | readiness: `200 ready` or `503 degraded` while snapshot publishes fail |
//! | `GET /metrics`  | Prometheus text of the process metrics registry    |
//! | `GET /snapshot` | current snapshot version, update kind (`full`/`delta`), delta fact counts, database size |
//! | `POST /explain` | body = goal fact literals (`control("B","D").`), one per line; answers each in order |
//!
//! Hostile-input responses: `413` for a `Content-Length` above the body
//! cap (instead of silently truncating), `431` for an oversized request
//! head, `400` for unparseable requests or goal batches above the
//! per-batch cap, `503` + `Retry-After` when the connection pool or the
//! job queue is saturated.

use crate::service::{ExplainService, ServeConfig, ServeError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vadalog::obs::json::JsonWriter;

/// A running HTTP server; dropping it (or calling
/// [`stop`](HttpServer::stop)) shuts the accept loop and the handler
/// pool down.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, port 0 for ephemeral) and
    /// starts serving `service` from a background accept loop feeding a
    /// pool of [`max_connections`](ServeConfig::max_connections)
    /// connection handlers.
    pub fn bind(addr: &str, service: Arc<ExplainService>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let config = service.config().clone();

        // In-flight admission counter: a connection is admitted by
        // reserving a slot *before* it is queued, so at most
        // `max_connections` connections are ever queued-or-handled and
        // the accept loop can shed the excess without racing handler
        // wake-ups. (A rendezvous channel can't express this: between
        // one handoff completing and the next handler parking in
        // `recv`, a `try_send` would spuriously fail with idle
        // handlers.)
        let active = Arc::new(AtomicUsize::new(0));
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let handlers = (0..config.max_connections)
            .map(|i| {
                let rx = Arc::clone(&conn_rx);
                let service = Arc::clone(&service);
                let active = Arc::clone(&active);
                std::thread::Builder::new()
                    .name(format!("serve-http-handler-{i}"))
                    .spawn(move || handler_loop(&rx, &active, &service))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let stop_flag = Arc::clone(&stop);
        let accept_active = Arc::clone(&active);
        let retry_after = config.retry_after;
        let write_timeout = config.write_timeout;
        let read_timeout = config.read_timeout;
        let max_connections = config.max_connections;
        let accept_thread = std::thread::Builder::new()
            .name("serve-http-accept".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(mut conn) = conn else { continue };
                    // Socket timeouts bound every read/write syscall; the
                    // handler adds a whole-request deadline on top.
                    let _ = conn.set_read_timeout(Some(read_timeout.max(MIN_TIMEOUT)));
                    let _ = conn.set_write_timeout(Some(write_timeout.max(MIN_TIMEOUT)));
                    if !reserve_slot(&accept_active, max_connections) {
                        reject_metric("connection_pool_full");
                        let _ = respond(
                            &mut conn,
                            "503 Service Unavailable",
                            "application/json",
                            &error_body("connection pool saturated; retry later"),
                            &[("Retry-After", retry_after_secs(retry_after))],
                        );
                        continue;
                    }
                    if conn_tx.send(conn).is_err() {
                        break;
                    }
                }
                // Dropping conn_tx here ends every handler's recv loop.
            })?;
        Ok(HttpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and the handler pool and joins them.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.handlers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Floor for socket timeouts (`set_read_timeout` rejects zero).
const MIN_TIMEOUT: Duration = Duration::from_millis(1);

/// Reserves an admission slot: true if the connection may proceed,
/// false when `active` already holds `max` in-flight connections.
fn reserve_slot(active: &AtomicUsize, max: usize) -> bool {
    let mut current = active.load(Ordering::Acquire);
    loop {
        if current >= max {
            return false;
        }
        match active.compare_exchange_weak(
            current,
            current + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
}

/// Pulls connections until the accept loop closes the channel,
/// releasing the admission slot after each one. A poisoned receiver
/// mutex is recovered — one panicking handler must not wedge the pool.
fn handler_loop(rx: &Mutex<Receiver<TcpStream>>, active: &AtomicUsize, service: &ExplainService) {
    loop {
        let conn = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(mut conn) = conn else { return };
        let outcome = handle_connection(&mut conn, service);
        drop(conn);
        active.fetch_sub(1, Ordering::AcqRel);
        if let Err(e) = outcome {
            vadalog::obs::metrics::global()
                .counter(
                    "vadalog_serve_http_io_errors_total",
                    "HTTP connections dropped on I/O errors (timeouts, disconnects).",
                )
                .inc();
            let _ = e; // connection-level errors are not fatal
        }
    }
}

/// One parsed request line + body.
struct Request {
    method: String,
    path: String,
    body: String,
}

/// Why a request was refused before routing.
enum RequestError {
    /// Socket-level failure: timeout, disconnect, dribble past the read
    /// deadline. No response is owed; the connection is dropped.
    Io(std::io::Error),
    /// The request head (request line + headers) exceeded the byte cap.
    HeadTooLarge,
    /// `Content-Length` exceeds the body cap (carries the declared length).
    BodyTooLarge(usize),
    /// `Content-Length` was present but not a number.
    BadContentLength,
    /// No parseable request line.
    Malformed,
}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> RequestError {
        RequestError::Io(e)
    }
}

/// Finds the head/body boundary: `(terminator offset, terminator
/// length)`. Accepts `\r\n\r\n` and bare `\n\n`.
fn head_end(buf: &[u8]) -> Option<(usize, usize)> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| (p, 4))
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| (p, 2)))
}

/// Reads one HTTP/1.1 request under the configured caps: the whole head
/// within `max_head_bytes` and the body within `max_body_bytes`, all of
/// it within one `read_timeout` budget checked between every socket
/// read — a byte-dribbling client cannot stretch the read beyond
/// roughly twice the budget.
fn read_request(conn: &mut TcpStream, config: &ServeConfig) -> Result<Request, RequestError> {
    let deadline = Instant::now() + config.read_timeout;
    let mut chunk = [0u8; 4096];
    let mut head = Vec::new();
    let (split, terminator) = loop {
        if let Some(found) = head_end(&head) {
            break found;
        }
        if head.len() > config.max_head_bytes {
            return Err(RequestError::HeadTooLarge);
        }
        if Instant::now() >= deadline {
            return Err(RequestError::Io(std::io::Error::from(
                std::io::ErrorKind::TimedOut,
            )));
        }
        match conn.read(&mut chunk) {
            Ok(0) => {
                return Err(RequestError::Io(std::io::Error::from(
                    std::io::ErrorKind::UnexpectedEof,
                )))
            }
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RequestError::Io(e)),
        }
    };

    let head_text = String::from_utf8_lossy(&head[..split]).into_owned();
    let mut lines = head_text.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    if method.is_empty() || path.is_empty() {
        return Err(RequestError::Malformed);
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::BadContentLength)?;
            }
        }
    }
    if content_length > config.max_body_bytes {
        return Err(RequestError::BodyTooLarge(content_length));
    }

    let mut body = head[split + terminator..].to_vec();
    body.truncate(content_length);
    while body.len() < content_length {
        if Instant::now() >= deadline {
            return Err(RequestError::Io(std::io::Error::from(
                std::io::ErrorKind::TimedOut,
            )));
        }
        match conn.read(&mut chunk) {
            Ok(0) => {
                // Mid-body disconnect: the declared length never arrived.
                return Err(RequestError::Io(std::io::Error::from(
                    std::io::ErrorKind::UnexpectedEof,
                )));
            }
            Ok(n) => {
                let take = n.min(content_length - body.len());
                body.extend_from_slice(&chunk[..take]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RequestError::Io(e)),
        }
    }
    Ok(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Writes a full response (with optional extra headers) and closes.
fn respond(
    conn: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut headers = String::new();
    for (name, value) in extra_headers {
        headers.push_str(name);
        headers.push_str(": ");
        headers.push_str(value);
        headers.push_str("\r\n");
    }
    write!(
        conn,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{headers}Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    conn.flush()
}

/// A `{"error": detail}` JSON body.
fn error_body(detail: &str) -> String {
    let mut w = JsonWriter::new();
    w.open_object();
    w.field_str("error", detail);
    w.close_object();
    w.finish()
}

/// Counts a refused request/connection by reason.
fn reject_metric(reason: &'static str) {
    vadalog::obs::metrics::global()
        .counter_with(
            "vadalog_serve_http_rejects_total",
            &[("reason", reason)],
            "HTTP requests refused before evaluation, by reason.",
        )
        .inc();
}

/// `Retry-After` header value in whole seconds (at least 1).
fn retry_after_secs(retry_after: Duration) -> String {
    retry_after.as_secs().max(1).to_string()
}

/// Routes one connection.
fn handle_connection(conn: &mut TcpStream, service: &ExplainService) -> std::io::Result<()> {
    vadalog::faultpoint::hit("serve.handler");
    let config = service.config();
    let request = match read_request(conn, config) {
        Ok(request) => request,
        Err(RequestError::Io(e)) => return Err(e),
        Err(RequestError::HeadTooLarge) => {
            reject_metric("head_too_large");
            return respond(
                conn,
                "431 Request Header Fields Too Large",
                "application/json",
                &error_body(&format!(
                    "request head exceeds {} bytes",
                    config.max_head_bytes
                )),
                &[],
            );
        }
        Err(RequestError::BodyTooLarge(declared)) => {
            reject_metric("body_too_large");
            return respond(
                conn,
                "413 Payload Too Large",
                "application/json",
                &error_body(&format!(
                    "content-length {declared} exceeds the {}-byte body cap",
                    config.max_body_bytes
                )),
                &[],
            );
        }
        Err(RequestError::BadContentLength) => {
            reject_metric("bad_content_length");
            return respond(
                conn,
                "400 Bad Request",
                "application/json",
                &error_body("content-length is not a number"),
                &[],
            );
        }
        Err(RequestError::Malformed) => {
            reject_metric("malformed");
            return respond(
                conn,
                "400 Bad Request",
                "application/json",
                &error_body("unparseable request line"),
                &[],
            );
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let mut w = JsonWriter::new();
            w.open_object();
            w.field_str("status", "ok");
            w.field_u64(
                "snapshot_version",
                service.snapshot_handle().current().version(),
            );
            w.close_object();
            respond(conn, "200 OK", "application/json", &w.finish(), &[])
        }
        ("GET", "/ready") => {
            let degraded = service.snapshot_handle().is_degraded();
            let mut w = JsonWriter::new();
            w.open_object();
            w.field_str("status", if degraded { "degraded" } else { "ready" });
            w.field_u64(
                "snapshot_version",
                service.snapshot_handle().current().version(),
            );
            w.field_u64("workers_alive", service.alive_workers() as u64);
            w.close_object();
            let status = if degraded {
                "503 Service Unavailable"
            } else {
                "200 OK"
            };
            respond(conn, status, "application/json", &w.finish(), &[])
        }
        ("GET", "/metrics") => respond(
            conn,
            "200 OK",
            "text/plain; version=0.0.4",
            &vadalog::obs::metrics::global().to_prometheus(),
            &[],
        ),
        ("GET", "/snapshot") => {
            let snapshot = service.snapshot_handle().current();
            let mut w = JsonWriter::new();
            w.open_object();
            w.field_u64("version", snapshot.version());
            w.field_str("update_kind", snapshot.update_kind().as_str());
            w.field_u64("facts_added", snapshot.facts_added());
            w.field_u64("facts_retracted", snapshot.facts_retracted());
            w.field_u64("facts", snapshot.outcome().database.len() as u64);
            w.field_u64("derived_facts", snapshot.outcome().derived_facts as u64);
            w.field_u64("rounds", snapshot.outcome().rounds as u64);
            w.close_object();
            respond(conn, "200 OK", "application/json", &w.finish(), &[])
        }
        ("POST", "/explain") => match parse_goals(&request.body) {
            Err(detail) => {
                reject_metric("bad_request");
                respond(
                    conn,
                    "400 Bad Request",
                    "application/json",
                    &error_body(&detail),
                    &[],
                )
            }
            Ok(goals) if goals.len() > config.max_goals_per_batch => {
                reject_metric("too_many_goals");
                respond(
                    conn,
                    "400 Bad Request",
                    "application/json",
                    &error_body(&format!(
                        "batch of {} goals exceeds the per-request cap of {}",
                        goals.len(),
                        config.max_goals_per_batch
                    )),
                    &[],
                )
            }
            Ok(goals) => {
                let (version, results) = service.explain_batch(&goals);
                // A fully shed batch is a 503 the client should retry,
                // not a 200 with per-goal errors.
                if !results.is_empty()
                    && results
                        .iter()
                        .all(|r| matches!(r, Err(ServeError::Overloaded { .. })))
                {
                    reject_metric("queue_full");
                    return respond(
                        conn,
                        "503 Service Unavailable",
                        "application/json",
                        &error_body("job queue saturated; retry later"),
                        &[("Retry-After", retry_after_secs(config.retry_after))],
                    );
                }
                let mut w = JsonWriter::new();
                w.open_object();
                w.field_u64("snapshot_version", version);
                w.key("answers");
                w.open_array();
                for (goal, result) in goals.iter().zip(&results) {
                    w.open_object();
                    w.field_str("goal", &goal.to_string());
                    match result {
                        Ok(e) => {
                            w.field_str("text", &e.text);
                            w.field_u64("chase_steps", e.chase_steps as u64);
                            w.key("paths");
                            w.open_array();
                            for p in &e.paths {
                                w.value_str(p);
                            }
                            w.close_array();
                        }
                        Err(err) => {
                            w.field_str("error", &render_error(err));
                        }
                    }
                    w.close_object();
                }
                w.close_array();
                w.close_object();
                respond(conn, "200 OK", "application/json", &w.finish(), &[])
            }
        },
        _ => respond(
            conn,
            "404 Not Found",
            "text/plain",
            "unknown endpoint; try /health, /ready, /metrics, /snapshot or POST /explain\n",
            &[],
        ),
    }
}

/// Renders an error with its full `source()` chain.
fn render_error(err: &ServeError) -> String {
    let mut text = err.to_string();
    let mut source = std::error::Error::source(err);
    while let Some(cause) = source {
        text.push_str(": ");
        text.push_str(&cause.to_string());
        source = cause.source();
    }
    text
}

/// Parses an `/explain` body: one goal fact literal per statement, in
/// the engine's surface syntax (e.g. `control("B", "D").`).
fn parse_goals(body: &str) -> Result<Vec<vadalog::Fact>, String> {
    let trimmed = body.trim();
    if trimmed.is_empty() {
        return Err("empty body; send goal fact literals like control(\"B\", \"D\").".to_owned());
    }
    let parsed = vadalog::parse_program(trimmed).map_err(|e| e.to_string())?;
    if !parsed.program.is_empty() {
        return Err("body must contain facts only, no rules".to_owned());
    }
    if parsed.facts.is_empty() {
        return Err("no goal facts in body".to_owned());
    }
    Ok(parsed.facts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_bodies_parse_and_reject_rules() {
        let goals = parse_goals("control(\"B\", \"D\").\ncontrol(\"B\", \"E\").").unwrap();
        assert_eq!(goals.len(), 2);
        assert!(parse_goals("").is_err());
        assert!(parse_goals("r: a(x) -> b(x).").is_err());
        assert!(parse_goals("not a program").is_err());
    }

    #[test]
    fn head_end_finds_both_terminators() {
        assert_eq!(
            head_end(b"GET / HTTP/1.1\r\nHost: x\r\n\r\nbody"),
            Some((23, 4))
        );
        assert_eq!(head_end(b"GET / HTTP/1.1\nHost: x\n\nbody"), Some((22, 2)));
        assert_eq!(head_end(b"GET / HTTP/1.1\r\nHost: x\r\n"), None);
    }
}
