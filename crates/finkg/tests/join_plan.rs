//! Equivalence and determinism suite for the static join-planning layer:
//! the composite-index plan, the legacy single-position plan and the
//! index-free scan ablation must enumerate the same matches in the same
//! order — observable as bitwise-identical fact stores, `FactId`
//! assignment and derivation logs — at 1, 2 and 8 worker threads, on
//! seeded finkg bundles and on randomized programs with negation,
//! aggregation and existentials.

use finkg::apps::{control, golden_power, stress};
use finkg::scenario;
use proptest::prelude::*;
use vadalog::{parse_program, ChaseConfig, ChaseOutcome, ChaseSession, Database, Program, Value};

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// The three index configurations under comparison. Matches — not
/// counters — are required to agree across them: the configs probe
/// differently by design.
fn configs() -> [(&'static str, ChaseConfig); 3] {
    // Index use is pinned explicitly so the sweep stays meaningful when
    // CI flips the default via VADALOG_NO_INDEX.
    [
        (
            "composite_plan",
            ChaseConfig::default().with_positional_index(true),
        ),
        (
            "legacy_single_position",
            ChaseConfig::default()
                .with_positional_index(true)
                .with_join_planning(false),
        ),
        (
            "scan_ablation",
            ChaseConfig::default().with_positional_index(false),
        ),
    ]
}

/// Full structural fingerprint: every fact in id order with its activity
/// flag, every derivation in recording order, rounds and violations.
fn fingerprint(out: &ChaseOutcome) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for (id, fact) in out.database.iter() {
        let _ = writeln!(s, "{id} {fact} active={}", out.database.is_active(id));
    }
    for d in out.graph.derivations() {
        let _ = writeln!(
            s,
            "r{} {:?} -> {} round={} contrib={}",
            d.rule.0, d.premises, d.conclusion, d.round, d.contributors
        );
    }
    let _ = write!(s, "rounds={} violations={:?}", out.rounds, out.violations);
    s
}

/// Chases `db` under every config × thread combination and asserts:
/// one structural fingerprint across all of them, and one
/// `count_fingerprint()` per config across its thread sweep.
fn assert_plan_equivalent(name: &str, program: &Program, db: &Database) {
    let mut expected: Option<String> = None;
    for (config_name, config) in configs() {
        let mut counters: Option<String> = None;
        for threads in THREAD_SWEEP {
            let out = ChaseSession::new(program)
                .with_config(config.clone().with_threads(threads))
                .run(db.clone())
                .unwrap_or_else(|e| {
                    panic!("{name}/{config_name}: chase at {threads} threads failed: {e}")
                });
            let fp = fingerprint(&out);
            match &expected {
                Some(reference) => assert_eq!(
                    &fp, reference,
                    "{name}/{config_name}: matches diverged at {threads} threads"
                ),
                None => expected = Some(fp),
            }
            let counts = out.report.count_fingerprint();
            match &counters {
                Some(reference) => assert_eq!(
                    &counts, reference,
                    "{name}/{config_name}: counters diverged at {threads} threads"
                ),
                None => counters = Some(counts),
            }
        }
    }
}

#[test]
fn finkg_applications_are_plan_invariant() {
    assert_plan_equivalent(
        "control/scenario",
        &control::program(),
        &scenario::database(),
    );
    assert_plan_equivalent(
        "control/random",
        &control::program(),
        &finkg::random_ownership(80, 3, 7),
    );
    assert_plan_equivalent(
        "stress/random",
        &stress::program(),
        &finkg::random_debt_network(80, 3, 5, 11),
    );
    assert_plan_equivalent(
        "golden_power/random",
        &golden_power::program(),
        &finkg::random_ownership(60, 4, 9),
    );
}

#[test]
fn seeded_bundles_are_plan_invariant() {
    let bundle = finkg::control_bundle(5, 4, 42);
    assert_plan_equivalent("bundle/control", &control::program(), &bundle.database);
    let bundle = finkg::stress_bundle(4, 4, 43);
    assert_plan_equivalent("bundle/stress", &stress::program(), &bundle.database);
}

/// With the composite plan active, negated-atom checks and restricted-
/// chase satisfaction checks are answered by index probes, never by the
/// linear scan — the headline claim of the planner.
#[test]
fn planned_negation_and_satisfaction_never_scan() {
    let program = parse_program(
        "p1: own(x, y, s) -> linked(x, y).
         p2: linked(x, y), not sanctioned(x) -> clean(x, y).
         p3: clean(x, y) -> audit(x, z).",
    )
    .unwrap()
    .program;
    let mut db = finkg::random_ownership(60, 3, 5);
    for i in (0..60usize).step_by(4) {
        db.add("sanctioned", &[format!("C{i}").as_str().into()]);
    }
    let out = ChaseSession::new(&program)
        .with_config(ChaseConfig::default().with_positional_index(true))
        .run(db.clone())
        .unwrap();
    let sum =
        |f: fn(&vadalog::telemetry::RuleStats) -> u64| out.report.rules.iter().map(f).sum::<u64>();
    assert!(sum(|r| r.negation_probes) > 0, "negation never exercised");
    assert_eq!(
        sum(|r| r.negation_scans),
        0,
        "planned negation fell back to a scan"
    );
    assert!(
        sum(|r| r.satisfaction_probes) > 0,
        "satisfaction check never exercised"
    );
    assert_eq!(
        sum(|r| r.satisfaction_scans),
        0,
        "planned satisfaction check fell back to a scan"
    );
    assert!(
        sum(|r| r.composite_probes) == 0 || sum(|r| r.index_probes) >= sum(|r| r.composite_probes)
    );

    // The legacy plan answers the same checks by scanning.
    let legacy = ChaseSession::new(&program)
        .with_config(
            ChaseConfig::default()
                .with_positional_index(true)
                .with_join_planning(false),
        )
        .run(db)
        .unwrap();
    let lsum = |f: fn(&vadalog::telemetry::RuleStats) -> u64| {
        legacy.report.rules.iter().map(f).sum::<u64>()
    };
    assert_eq!(lsum(|r| r.negation_probes), 0);
    assert!(lsum(|r| r.negation_scans) > 0);
    assert_eq!(lsum(|r| r.satisfaction_probes), 0);
    assert!(lsum(|r| r.satisfaction_scans) > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a randomized recursive program with negation and aggregation,
    /// the planned/composite join produces the same matches in the same
    /// order as the index-free full scan, at 1, 2 and 8 threads.
    #[test]
    fn random_programs_are_plan_invariant(
        inputs in prop::collection::vec((0u8..10, 0u8..10, 30u8..100), 0..18),
        sanctioned in prop::collection::vec(0u8..10, 0..5),
    ) {
        let program = parse_program(
            "o1: own(x, y, s), s > 0.5 -> control(x, y).
             o2: company(x) -> control(x, x).
             o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).
             o4: company(x), not controlled(x) -> top(x).
             o5: control(x, y), x != y -> controlled(y).
             o6: top(x), not sanctioned(x) -> clean_top(x, z).",
        )
        .unwrap()
        .program;
        let mut db = Database::new();
        for i in 0..10u8 {
            db.add("company", &[format!("c{i}").as_str().into()]);
        }
        for (a, b, s) in &inputs {
            if a == b { continue; }
            db.add("own", &[
                format!("c{a}").as_str().into(),
                format!("c{b}").as_str().into(),
                Value::Float(f64::from(*s) / 100.0),
            ]);
        }
        for s in &sanctioned {
            db.add("sanctioned", &[format!("c{s}").as_str().into()]);
        }
        assert_plan_equivalent("random", &program, &db);
    }

    /// Seeded generator bundles stay plan-invariant for any seed.
    #[test]
    fn random_bundles_are_plan_invariant(
        steps in 1usize..5,
        count in 1usize..3,
        seed in 0u64..500,
    ) {
        let bundle = finkg::control_bundle(steps, count, seed);
        assert_plan_equivalent("bundle", &control::program(), &bundle.database);
    }
}
