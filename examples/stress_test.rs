//! The two-channel stress-test application (Sec. 5, rules σ4–σ7) on the
//! representative scenario: a 15M shock on "A" cascades through long- and
//! short-term debt exposures; the explanation query Q_e = {Default("F")}
//! reproduces the shock-propagation narrative of the paper.
//!
//! Run with: `cargo run --example stress_test`

use ekg_explain::finkg::apps::stress;
use ekg_explain::finkg::scenario;
use ekg_explain::prelude::*;

fn main() {
    let program = stress::program();
    let pipeline = ExplanationPipeline::builder(program.clone(), stress::GOAL)
        .with_glossary(&stress::glossary())
        .build()
        .expect("pipeline builds");

    let outcome = ChaseSession::new(&program)
        .run(scenario::database())
        .expect("chase terminates");

    println!("Cascade from the 15M shock on A:");
    for (_, fact) in outcome.facts_of("default") {
        println!("  {fact}");
    }
    println!("\nRisk exposures:");
    for (_, fact) in outcome.facts_of("risk") {
        println!("  {fact}");
    }

    for entity in ["B", "C", "F"] {
        let q = Fact::new("default", vec![entity.into()]);
        let e = pipeline.explain(&outcome, &q).expect("explainable");
        println!(
            "\nQ_e = {{Default(\"{entity}\")}} ({} chase steps, via {:?}):\n{}",
            e.chase_steps, e.paths, e.text
        );
    }
}
