//! The consistency observation of Sec. 6.5: LLM-generated explanations
//! vary between runs ("no prompt guarantees perfect consistency"), while
//! the template-based approach is deterministic.
//!
//! For each expert-study scenario, the deterministic explanation is
//! rewritten by the simulated LLM ten times per prompt; we report the
//! number of distinct outputs, the spread of their completeness, and the
//! same measurements for the template-based method (always 1 distinct
//! output, always complete).

use llm_sim::{retained_ratio, Prompt, SimulatedLlm};
use stats::{mean, std_dev};
use std::collections::HashSet;
use studies::{expert_cases, proof_constants};

fn main() {
    const RUNS: u64 = 10;
    println!("Run-to-run consistency over {RUNS} runs per scenario (Sec. 6.5)\n");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for case in expert_cases() {
        let det = case.deterministic_text();
        let constants = proof_constants(&case.outcome, case.target, &case.glossary);
        for prompt in [Prompt::Paraphrase, Prompt::Summarize] {
            let llm = SimulatedLlm::new(prompt, 6);
            let outputs: Vec<String> = (0..RUNS).map(|r| llm.rewrite(&det, r)).collect();
            let distinct: HashSet<&String> = outputs.iter().collect();
            let completeness: Vec<f64> = outputs
                .iter()
                .map(|t| retained_ratio(t, &constants))
                .collect();
            rows.push(vec![
                case.name.to_owned(),
                format!("{prompt:?}"),
                distinct.len().to_string(),
                format!("{:.3}", mean(&completeness).unwrap()),
                format!("{:.3}", std_dev(&completeness).unwrap_or(0.0)),
            ]);
        }
        // Template-based: deterministic by construction.
        let outputs: Vec<String> = (0..RUNS).map(|_| case.template_text()).collect();
        let distinct: HashSet<&String> = outputs.iter().collect();
        let completeness: Vec<f64> = outputs
            .iter()
            .map(|t| retained_ratio(t, &constants))
            .collect();
        rows.push(vec![
            case.name.to_owned(),
            "Templates".to_owned(),
            distinct.len().to_string(),
            format!("{:.3}", mean(&completeness).unwrap()),
            format!("{:.3}", std_dev(&completeness).unwrap_or(0.0)),
        ]);
    }
    print!(
        "{}",
        bench::render_table(
            &[
                "Scenario",
                "Method",
                "Distinct outputs",
                "Mean completeness",
                "Completeness sd"
            ],
            &rows
        )
    );
    println!("\nTemplates: always 1 distinct output, completeness 1.000, sd 0.000.");
}
