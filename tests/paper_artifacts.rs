//! Reproduction checks against the paper's concrete artefacts: the worked
//! examples of Sections 4–5 and the shapes of every evaluation figure
//! (small parameterizations; the full sweeps live in `crates/bench`).

use ekg_explain::finkg::apps::{control, simple_stress, stress};
use ekg_explain::prelude::*;

#[test]
fn figure_3_and_4_structural_analysis_of_example_4_3() {
    let program = simple_stress::program();
    let g = DependencyGraph::build(&program);
    assert!(g.is_cyclic());
    assert_eq!(g.nodes().len(), 5);
    assert_eq!(g.edges().len(), 6);

    let a = analyze(&program, "default").unwrap();
    // Fig. 4: Π1 = {α}, Π2 = {α,β,γ}; Γ1 = {β,γ}.
    // Fig. 5: plus one dashed variant each.
    assert_eq!(a.simple_paths().count(), 3);
    assert_eq!(a.cycles().count(), 2);
}

#[test]
fn example_4_7_tau_and_covering() {
    let program = simple_stress::program();
    let outcome = ChaseSession::new(&program)
        .run(simple_stress::figure_8_database())
        .unwrap();
    let id = outcome
        .lookup(&Fact::new("default", vec!["C".into()]))
        .unwrap();
    let proof = outcome.graph.proof(id, DerivationPolicy::Richest);
    let tau: Vec<String> = proof
        .linearize(&outcome.graph)
        .iter()
        .map(|s| program.rule(s.rule).label.clone())
        .collect();
    assert_eq!(tau, vec!["alpha", "beta", "gamma", "beta", "gamma"]);
}

#[test]
fn example_4_8_explanation_mentions_every_amount() {
    let program = simple_stress::program();
    let pipeline = ExplanationPipeline::builder(program.clone(), simple_stress::GOAL)
        .with_glossary(&simple_stress::glossary())
        .build()
        .unwrap();
    let outcome = ChaseSession::new(&program)
        .run(simple_stress::figure_8_database())
        .unwrap();
    let e = pipeline
        .explain(&outcome, &Fact::new("default", vec!["C".into()]))
        .unwrap();
    // The amounts of Example 4.8's text: 6M shock, 5M/2M/10M capitals,
    // 7M debt, 2M and 9M loans, 11M total.
    for amount in ["6M", "5M", "2M", "10M", "7M", "9M", "11M"] {
        assert!(e.text.contains(amount), "missing {amount}: {}", e.text);
    }
    assert!(
        e.text.contains("sum of 2M euros and 9M euros"),
        "{}",
        e.text
    );
}

#[test]
fn figure_10_reproduced_exactly() {
    let apps = bench_fig10();
    assert_eq!(
        apps.0,
        vec!["{o1}", "{o2}", "{o1,o3}*", "{o2,o3}*", "{o1,o2,o3}*"]
    );
    assert_eq!(apps.1, vec!["{o3}*"]);
    assert_eq!(
        apps.2,
        vec!["{o4}", "{o4,o5,o7}*", "{o4,o6,o7}*", "{o4,o5,o6,o7}*"]
    );
    assert_eq!(apps.3, vec!["{o5,o7}*", "{o6,o7}*", "{o5,o6,o7}*"]);
}

/// Base path labels (with `*` for aggregation alternatives) of the two
/// Fig. 10 applications, computed independently of the bench crate.
fn bench_fig10() -> (Vec<String>, Vec<String>, Vec<String>, Vec<String>) {
    fn labels(program: &Program, goal: &str, kind: ekg_explain::explain::PathKind) -> Vec<String> {
        let a = analyze(program, goal).unwrap();
        let mut bases: Vec<(Vec<RuleId>, bool)> = Vec::new();
        for p in a.paths.iter().filter(|p| p.kind == kind) {
            match bases.iter_mut().find(|(r, _)| *r == p.rules) {
                Some((_, d)) => *d |= !p.dashed.is_empty(),
                None => bases.push((p.rules.clone(), !p.dashed.is_empty())),
            }
        }
        bases
            .into_iter()
            .map(|(rules, dashed)| {
                let names: Vec<&str> = rules
                    .iter()
                    .map(|&r| program.rule(r).label.as_str())
                    .collect();
                format!("{{{}}}{}", names.join(","), if dashed { "*" } else { "" })
            })
            .collect()
    }
    use ekg_explain::explain::PathKind::{Cycle, Simple};
    let cc = control::program();
    let st = stress::program();
    (
        labels(&cc, control::GOAL, Simple),
        labels(&cc, control::GOAL, Cycle),
        labels(&st, stress::GOAL, Simple),
        labels(&st, stress::GOAL, Cycle),
    )
}

#[test]
fn figure_14_shape_high_accuracy_no_dominant_archetype() {
    let out =
        ekg_explain::studies::comprehension::run(&ekg_explain::studies::ComprehensionConfig {
            users: 24,
            ..Default::default()
        });
    assert!(out.overall_accuracy() >= 0.9, "{}", out.overall_accuracy());
    // No archetype dominates: the total errors of any single archetype
    // stay below a third of all answers of any case.
    for c in &out.cases {
        for (&archetype, &n) in &c.errors {
            assert!(
                n * 3 <= c.total,
                "{:?} dominates case {}: {n}/{}",
                archetype,
                c.name,
                c.total
            );
        }
    }
}

#[test]
fn figure_16_shape_no_significant_difference() {
    use ekg_explain::studies::Method;
    let out = ekg_explain::studies::expert::run(&ekg_explain::studies::ExpertConfig::default());
    assert!(out.p_value(Method::Paraphrase, Method::Templates) > 0.05);
    assert!(out.p_value(Method::Summary, Method::Templates) > 0.05);
    for m in [Method::Paraphrase, Method::Summary, Method::Templates] {
        assert!((2.8..=4.6).contains(&out.mean_of(m)), "{m:?}");
    }
}

#[test]
fn figure_17_shape_omissions_grow_templates_stay_complete() {
    use bench::fig17::{run, App};
    use llm_sim::Prompt;
    let points = run(App::CompanyControl, &[3, 15], 5, 1);
    let mean = |steps: usize, prompt: Prompt| {
        points
            .iter()
            .find(|p| p.steps == steps && p.prompt == prompt)
            .unwrap()
            .boxplot
            .mean
    };
    assert!(mean(15, Prompt::Summarize) > mean(3, Prompt::Summarize));
    assert!(mean(15, Prompt::Summarize) >= mean(15, Prompt::Paraphrase));
    assert!(points.iter().all(|p| p.template_max_omission == 0.0));
}

#[test]
fn figure_18_shape_latency_grows_with_steps() {
    use bench::fig17::App;
    use bench::fig18::run;
    for app in [App::CompanyControl, App::StressTest] {
        let points = run(app, &[1, 9], 5, 2);
        assert!(
            points[1].boxplot_us.median > points[0].boxplot_us.median,
            "{app:?}"
        );
        assert!(points[1].boxplot_us.max < 1e6, "{app:?} not interactive");
    }
}

#[test]
fn section_5_narrative_default_f_explanation() {
    let program = stress::program();
    let pipeline = ExplanationPipeline::builder(program.clone(), stress::GOAL)
        .with_glossary(&stress::glossary())
        .build()
        .unwrap();
    let outcome = ChaseSession::new(&program)
        .run(ekg_explain::finkg::scenario::database())
        .unwrap();
    let e = pipeline
        .explain(&outcome, &Fact::new("default", vec!["F".into()]))
        .unwrap();
    // The narrative: shock on A, cascade through B (long channel) and C
    // (short channel), both exposures of F, F's capital.
    for needle in [
        "15M euros",
        "7M euros",
        "9M euros",
        "8M euros",
        "2M euros",
        "F",
    ] {
        assert!(e.text.contains(needle), "missing {needle}: {}", e.text);
    }
    // Both channels are verbalized.
    assert!(e.text.contains("long-term"), "{}", e.text);
    assert!(e.text.contains("short-term"), "{}", e.text);
}
