//! Descriptive statistics over `f64` samples.

/// Arithmetic mean. Returns `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Unbiased sample variance (n-1 denominator). Returns `None` for fewer
/// than two observations.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// The q-quantile (0 ≤ q ≤ 1) with linear interpolation between order
/// statistics (type-7, the default of R and NumPy).
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Some(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// Median (0.5-quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_hand_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        // Sample variance: sum of squares 32, / 7.
        let v = variance(&xs).unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[1.0]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(mean(&[3.5]), Some(3.5));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
    }

    #[test]
    fn median_of_odd_length_is_middle() {
        assert_eq!(median(&[9.0, 1.0, 5.0]), Some(5.0));
    }
}
