//! Atoms (in rules) and facts (ground atoms in the database).

use crate::symbol::Symbol;
use crate::term::Term;
use crate::value::Value;
use std::fmt;

/// An atom `R(t1, ..., tn)` over a predicate `R` and terms `ti`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The predicate symbol.
    pub predicate: Symbol,
    /// The argument terms (constants or variables).
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a predicate name and terms.
    pub fn new(predicate: &str, terms: Vec<Term>) -> Atom {
        Atom {
            predicate: Symbol::new(predicate),
            terms,
        }
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterator over the variables of the atom, in positional order
    /// (duplicates preserved).
    pub fn variables(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", t)?;
        }
        write!(f, ")")
    }
}

/// A ground atom: a tuple of values under a predicate.
///
/// Facts are stored once in the [`crate::database::Database`] and referred
/// to by [`crate::database::FactId`] elsewhere.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Fact {
    /// The predicate symbol.
    pub predicate: Symbol,
    /// The ground argument values.
    pub values: Vec<Value>,
}

impl Fact {
    /// Builds a fact from a predicate name and values.
    pub fn new(predicate: &str, values: Vec<Value>) -> Fact {
        Fact {
            predicate: Symbol::new(predicate),
            values,
        }
    }

    /// The arity of the fact.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True iff the fact contains at least one labelled null.
    pub fn has_nulls(&self) -> bool {
        self.values.iter().any(Value::is_null)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match v {
                Value::Str(s) => write!(f, "{:?}", s.as_str())?,
                other => write!(f, "{}", other)?,
            }
        }
        write!(f, ")")
    }
}

/// Convenience macro-free fact constructor used pervasively in tests and
/// examples: `fact("own", &["A".into(), "B".into(), 0.6.into()])`.
pub fn fact(predicate: &str, values: &[Value]) -> Fact {
    Fact::new(predicate, values.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_display_mixes_terms() {
        let a = Atom::new(
            "own",
            vec![Term::var("x"), Term::constant("B"), Term::var("s")],
        );
        assert_eq!(a.to_string(), "own(x,\"B\",s)");
        assert_eq!(a.arity(), 3);
    }

    #[test]
    fn atom_variables_in_order_with_duplicates() {
        let a = Atom::new(
            "control",
            vec![Term::var("x"), Term::var("x"), Term::var("y")],
        );
        let vars: Vec<_> = a.variables().map(|v| v.as_str()).collect();
        assert_eq!(vars, vec!["x", "x", "y"]);
    }

    #[test]
    fn fact_display_and_nulls() {
        let f = Fact::new("risk", vec![Value::str("C"), Value::Int(11)]);
        assert_eq!(f.to_string(), "risk(\"C\",11)");
        assert!(!f.has_nulls());
        let g = Fact::new("p", vec![Value::Null(3)]);
        assert!(g.has_nulls());
    }

    #[test]
    fn fact_equality_is_structural() {
        let a = fact("own", &["A".into(), "B".into()]);
        let b = fact("own", &["A".into(), "B".into()]);
        let c = fact("own", &["A".into(), "C".into()]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
