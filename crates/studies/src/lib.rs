//! # studies
//!
//! Simulated reproductions of the paper's two user studies (Sec. 6.1 and
//! 6.2). Humans cannot be recruited by a reproduction, so both studies are
//! replaced by explicit participant models whose inputs are the *actual
//! texts and graphs produced by the pipeline*:
//!
//! * [`comprehension`] — 24 noisy readers matching explanations against
//!   proof visualizations with injected error archetypes (Fig. 14);
//! * [`expert`] — 14 biased Likert graders scoring the three explanation
//!   methods on measured features, compared pairwise with the Wilcoxon
//!   signed-rank test (Fig. 16).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cases;
pub mod comprehension;
pub mod expert;
pub mod util;

pub use cases::{comprehension_cases, expert_cases, Case};
pub use comprehension::{ComprehensionConfig, ComprehensionOutcome};
pub use expert::{ExpertConfig, ExpertOutcome, Method};
pub use util::proof_constants;
