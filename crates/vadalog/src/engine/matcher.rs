//! Body matching: enumerating homomorphisms from rule bodies into the
//! database.
//!
//! Joins are driven by a static, per-rule [`JoinPlan`]: for every body
//! atom (positive *and* negated) the plan records the probe signature —
//! the set of argument positions bound by constants or earlier atoms —
//! and the engine eagerly builds exactly the matching composite indexes
//! before its parallel phase. A candidate lookup then probes *all*
//! statically-bound positions at once via
//! [`Database::probe_composite`], instead of probing one position and
//! filtering the rest per candidate.
//!
//! The core join is *read-only*: probes fall back to predicate scans when
//! an index was never built (same ids, same order, just slower) and
//! therefore run safely from many threads over a shared `&Database`
//! snapshot. The `&mut` entry points kept for compatibility eagerly build
//! the planned indexes and delegate to the read-only core.
//!
//! Work is decomposed into [`MatchChunk`]s — disjoint slices of the
//! outermost join loop — whose results, concatenated in chunk order,
//! reproduce the sequential enumeration exactly. This is what makes the
//! parallel chase phase deterministic: enumeration order is a property of
//! the plan and the chunk list, never of thread scheduling.

use crate::atom::Atom;
use crate::database::{Database, FactId};
use crate::error::EvalError;
use crate::expr::Bindings;
use crate::rule::Rule;
use crate::symbol::Symbol;
use crate::term::Term;
use crate::value::Value;

/// A homomorphism from a rule body into the database: the variable
/// bindings plus the matched premise facts (one per positive body atom, in
/// body order).
#[derive(Clone, Debug)]
pub struct BodyMatch {
    /// The substitution θ.
    pub bindings: Bindings,
    /// Matched facts, aligned with the rule's positive body atoms.
    pub premises: Vec<FactId>,
}

/// Index-vs-scan counters of one matching call, accumulated into the
/// per-rule [`RuleStats`](crate::telemetry::RuleStats) by the engine.
///
/// **Thread invariance:** for chunked work the outermost candidate lookup
/// happens once per chunk, but it is *counted* only by chunk 0 — so the
/// counters are identical no matter how many chunks (threads) the work
/// was split into. Inner-depth lookups run once per outer candidate and
/// sum invariantly by construction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MatchMetrics {
    /// Candidate lookups served by a positional index probe.
    pub index_probes: u64,
    /// Candidate lookups served by a predicate scan (index disabled or
    /// never built).
    pub scans: u64,
    /// Subset of `index_probes` whose signature bound two or more
    /// positions at once (a genuinely composite probe).
    pub composite_probes: u64,
    /// Negated-atom checks served by an index probe. Counted once per
    /// complete positive match (in `finish_match`), so invariant across
    /// chunk counts by construction.
    pub negation_probes: u64,
    /// Negated-atom checks served by a full predicate scan.
    pub negation_scans: u64,
}

impl MatchMetrics {
    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &MatchMetrics) {
        self.index_probes += other.index_probes;
        self.scans += other.scans;
        self.composite_probes += other.composite_probes;
        self.negation_probes += other.negation_probes;
        self.negation_scans += other.negation_scans;
    }
}

/// One unit of matching work against an immutable database snapshot.
///
/// `part`/`parts` slice the outermost candidate loop of the join: chunk
/// `(i, n)` enumerates the `i`-th of `n` contiguous slices of the first
/// atom's candidate list. Concatenating the results of chunks
/// `(0, n) .. (n-1, n)` yields exactly the unchunked enumeration, for any
/// `n` — the parallel chase phase relies on this invariance.
#[derive(Clone, Copy, Debug)]
pub struct MatchChunk {
    /// Delta restriction: `Some((pivot, watermark))` restricts the
    /// `pivot`-th positive body atom to facts with id >= `watermark`
    /// (one pivot per semi-naive expansion step); `None` matches fully.
    pub pivot: Option<(usize, u32)>,
    /// Zero-based index of this slice of the outermost candidate loop.
    pub part: usize,
    /// Total number of slices the outermost loop is split into.
    pub parts: usize,
    /// Probe positional indexes on bound arguments (fall back to scans
    /// when disabled or when an index is missing).
    pub use_index: bool,
}

impl MatchChunk {
    /// The full, unchunked match of a rule body.
    pub fn full(use_index: bool) -> MatchChunk {
        MatchChunk {
            pivot: None,
            part: 0,
            parts: 1,
            use_index,
        }
    }

    /// An unchunked delta expansion for one pivot.
    pub fn delta(pivot: usize, watermark: u32) -> MatchChunk {
        MatchChunk {
            pivot: Some((pivot, watermark)),
            part: 0,
            parts: 1,
            use_index: true,
        }
    }
}

/// The static join plan of one rule: the composite probe signature of
/// every body atom, plus the signature of the head-satisfaction check.
///
/// At join depth `d` the bound variables are exactly the variables of the
/// positive atoms `0..d` (every candidate binds all of its atom's
/// variables), so the set of bound argument positions of each atom is a
/// static property of the rule. The plan records that full set per
/// positive atom; `candidates_for` probes the matching composite index
/// with all of them bound at once. Negated atoms are checked once per
/// complete positive match, when the body variables and assignment
/// results are all bound — their signature is every position holding a
/// constant or such a variable. The head signature covers the restricted
/// chase's satisfaction check for existentially-quantified heads: every
/// position holding a constant or a non-existential variable.
///
/// The plan determines which indexes exist, never which facts match or
/// in which order: probes and scans yield identical candidate lists
/// (insertion order), so enumeration order is a property of the rule and
/// the database — not of the plan, and never of thread scheduling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinPlan {
    /// Per positive body atom, in body order: the statically-bound
    /// argument positions (ascending; empty = no bound position, scan).
    pub positive: Vec<Vec<usize>>,
    /// Per negated body atom, in body order: the positions bound by the
    /// rule's positive body and assignments.
    pub negated: Vec<Vec<usize>>,
    /// Probe signature of the head-satisfaction check, for rules with an
    /// existentially-quantified head; `None` when the rule has no
    /// existentials or no position is statically bound.
    pub head: Option<Vec<usize>>,
}

impl JoinPlan {
    /// The full composite plan of `rule`.
    pub fn for_rule(rule: &Rule) -> JoinPlan {
        let mut bound: std::collections::HashSet<Symbol> = std::collections::HashSet::new();
        let mut positive = Vec::new();
        for atom in rule.positive_body() {
            positive.push(bound_positions(atom, &bound));
            for v in atom.variables() {
                bound.insert(v);
            }
        }
        // Negation runs after the assignments of a complete match.
        for a in &rule.assignments {
            bound.insert(a.var);
        }
        let negated = rule
            .negated_body()
            .map(|atom| bound_positions(atom, &bound))
            .collect();
        let head = match (&rule.head, rule.existential_variables()) {
            (crate::rule::Head::Atom(h), ex) if !ex.is_empty() => {
                let sig: Vec<usize> = h
                    .terms
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => !ex.contains(v),
                    })
                    .map(|(i, _)| i)
                    .collect();
                (!sig.is_empty()).then_some(sig)
            }
            _ => None,
        };
        JoinPlan {
            positive,
            negated,
            head,
        }
    }

    /// The pre-composite plan: each positive atom probes only its *first*
    /// bound position; negated atoms and the satisfaction check scan.
    /// Kept as the measured baseline of the `join_plan` bench and as a
    /// regression oracle — it reproduces the engine's behaviour before
    /// join planning existed.
    pub fn legacy(rule: &Rule) -> JoinPlan {
        let mut bound: std::collections::HashSet<Symbol> = std::collections::HashSet::new();
        let mut positive = Vec::new();
        for atom in rule.positive_body() {
            let first = static_probe_position(atom, &bound);
            positive.push(first.into_iter().collect());
            for v in atom.variables() {
                bound.insert(v);
            }
        }
        JoinPlan {
            positive,
            negated: rule.negated_body().map(|_| Vec::new()).collect(),
            head: None,
        }
    }

    /// Every composite index this plan probes, as
    /// `(predicate, positions)` signatures in plan order, deduplicated.
    /// The engine builds exactly these before its parallel phase.
    pub fn required_composite_indexes(&self, rule: &Rule) -> Vec<(Symbol, Vec<usize>)> {
        let mut out: Vec<(Symbol, Vec<usize>)> = Vec::new();
        let mut push = |pred: Symbol, sig: &[usize]| {
            if !sig.is_empty() && !out.iter().any(|(p, s)| *p == pred && s == sig) {
                out.push((pred, sig.to_vec()));
            }
        };
        for (atom, sig) in rule.positive_body().zip(&self.positive) {
            push(atom.predicate, sig);
        }
        for (atom, sig) in rule.negated_body().zip(&self.negated) {
            push(atom.predicate, sig);
        }
        if let (Some(head), Some(sig)) = (rule.head.atom(), &self.head) {
            push(head.predicate, sig);
        }
        out
    }
}

/// The argument positions of `atom` holding a constant or a variable from
/// `bound`, ascending. Variables repeated within `atom` only count as
/// bound if an *earlier* atom (or assignment) bound them, mirroring the
/// runtime bindings at candidate-lookup time.
fn bound_positions(atom: &Atom, bound: &std::collections::HashSet<Symbol>) -> Vec<usize> {
    atom.terms
        .iter()
        .enumerate()
        .filter(|(_, t)| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        })
        .map(|(i, _)| i)
        .collect()
}

/// The statically-determined single-position index probes of a rule body:
/// for each positive atom, the first position holding a constant or an
/// already-bound variable. Superseded by [`JoinPlan`] (which the engine
/// now plans with) but kept as the stable, documented summary of the
/// legacy probe selection.
pub fn required_indexes(rule: &Rule) -> Vec<(Symbol, usize)> {
    let mut bound: std::collections::HashSet<Symbol> = std::collections::HashSet::new();
    let mut out = Vec::new();
    for atom in rule.positive_body() {
        if let Some(pos) = static_probe_position(atom, &bound) {
            let pair = (atom.predicate, pos);
            if !out.contains(&pair) {
                out.push(pair);
            }
        }
        for v in atom.variables() {
            bound.insert(v);
        }
    }
    out
}

/// The position of `atom` the join will probe, given the variables bound
/// by earlier atoms. Mirrors the probe selection inside [`join`].
fn static_probe_position(atom: &Atom, bound: &std::collections::HashSet<Symbol>) -> Option<usize> {
    atom.terms.iter().position(|t| match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
    })
}

/// Enumerates all matches of `rule`'s body in `db`.
///
/// Evaluation per match, in order: positive atoms (backtracking join, using
/// positional indexes on already-bound arguments), assignments, negated
/// atoms, then every condition *not* involving the aggregate result.
/// Conditions over the aggregate result are the caller's responsibility
/// (they can only be checked after grouping).
///
/// Takes `&mut Database` to build the rule's positional indexes up front;
/// no facts are added or removed. Read-only callers with pre-built indexes
/// (see [`required_indexes`]) can use [`match_chunk`] directly.
pub fn match_body(db: &mut Database, rule: &Rule) -> Result<Vec<BodyMatch>, EvalError> {
    match_body_with(db, rule, true)
}

/// [`match_body`] with index usage made explicit: with `use_index` false
/// every atom lookup scans the predicate's facts (the engine-ablation
/// baseline of the bench crate).
pub fn match_body_with(
    db: &mut Database,
    rule: &Rule,
    use_index: bool,
) -> Result<Vec<BodyMatch>, EvalError> {
    match_body_with_metered(db, rule, use_index, &mut MatchMetrics::default())
}

/// [`match_body_with`] with index/scan counters accumulated into
/// `metrics`.
pub fn match_body_with_metered(
    db: &mut Database,
    rule: &Rule,
    use_index: bool,
    metrics: &mut MatchMetrics,
) -> Result<Vec<BodyMatch>, EvalError> {
    let plan = JoinPlan::for_rule(rule);
    match_body_planned(db, rule, &plan, use_index, metrics)
}

/// [`match_body_with_metered`] against a precomputed [`JoinPlan`]: builds
/// the plan's composite indexes (when `use_index`) and runs the full
/// unchunked match.
pub fn match_body_planned(
    db: &mut Database,
    rule: &Rule,
    plan: &JoinPlan,
    use_index: bool,
    metrics: &mut MatchMetrics,
) -> Result<Vec<BodyMatch>, EvalError> {
    if use_index {
        for (pred, sig) in plan.required_composite_indexes(rule) {
            db.ensure_composite_index(pred, &sig);
        }
    }
    match_chunk_planned(db, rule, plan, &MatchChunk::full(use_index), metrics)
}

/// Semi-naive incremental matching: enumerates only the matches that
/// involve at least one fact with id >= `watermark` (a fact added since
/// the rule's previous evaluation).
///
/// Implemented as the classic delta expansion: one join per pivot
/// position, restricting that position to new facts, deduplicated on the
/// premise vector (a match touching several new facts is produced by
/// several pivots).
pub fn match_body_incremental(
    db: &mut Database,
    rule: &Rule,
    watermark: u32,
) -> Result<Vec<BodyMatch>, EvalError> {
    match_body_incremental_metered(db, rule, watermark, &mut MatchMetrics::default())
}

/// [`match_body_incremental`] with index/scan counters accumulated into
/// `metrics`.
pub fn match_body_incremental_metered(
    db: &mut Database,
    rule: &Rule,
    watermark: u32,
    metrics: &mut MatchMetrics,
) -> Result<Vec<BodyMatch>, EvalError> {
    let plan = JoinPlan::for_rule(rule);
    match_body_incremental_planned(db, rule, &plan, watermark, metrics)
}

/// [`match_body_incremental_metered`] against a precomputed [`JoinPlan`]
/// (the engine's commit-phase top-up path, which reuses the per-rule
/// plans computed once per program).
///
/// Each pivot's expansion evaluates the body with the *pivot atom first*:
/// the watermark restriction then lands at join depth 0, so the work of a
/// pass is proportional to the delta's extensions rather than to the full
/// join prefix of the atoms before the pivot. The remaining atoms keep
/// their body order, with probe signatures recomputed for the permuted
/// order (and their composite indexes built on demand). Premise vectors
/// are restored to body-atom order before dedup, so the returned match
/// set — and everything downstream, which sorts on premises — is
/// identical to the unpermuted expansion.
pub fn match_body_incremental_planned(
    db: &mut Database,
    rule: &Rule,
    plan: &JoinPlan,
    watermark: u32,
    metrics: &mut MatchMetrics,
) -> Result<Vec<BodyMatch>, EvalError> {
    for (pred, sig) in plan.required_composite_indexes(rule) {
        db.ensure_composite_index(pred, &sig);
    }
    let atoms: Vec<&Atom> = rule.positive_body().collect();
    let n_atoms = atoms.len();
    // Per pivot: the permuted evaluation order and its probe signatures
    // (indexed by order position). Indexes are built before any join runs
    // so the probe/scan split below is a property of the rule alone.
    let mut passes: Vec<(Vec<usize>, Vec<Vec<usize>>)> = Vec::with_capacity(n_atoms);
    for pivot in 0..n_atoms {
        let order: Vec<usize> = std::iter::once(pivot)
            .chain((0..n_atoms).filter(|&i| i != pivot))
            .collect();
        let mut bound: std::collections::HashSet<Symbol> = std::collections::HashSet::new();
        let mut probes: Vec<Vec<usize>> = Vec::with_capacity(n_atoms);
        for &i in &order {
            let sig = bound_positions(atoms[i], &bound);
            if !sig.is_empty() {
                db.ensure_composite_index(atoms[i].predicate, &sig);
            }
            probes.push(sig);
            for v in atoms[i].variables() {
                bound.insert(v);
            }
        }
        passes.push((order, probes));
    }
    let mut out = Vec::new();
    let mut seen_premises: std::collections::HashSet<Vec<FactId>> =
        std::collections::HashSet::new();
    for (order, probes) in &passes {
        let plans: Vec<AtomPlan> = order
            .iter()
            .zip(probes)
            .enumerate()
            .map(|(k, (&i, sig))| AtomPlan {
                atom: atoms[i],
                probe: sig.as_slice(),
                min_fact: if k == 0 { watermark } else { 0 },
            })
            .collect();
        let mut bindings = Bindings::new();
        let mut premises = Vec::with_capacity(n_atoms);
        let mut found = Vec::new();
        join(
            db,
            rule,
            &plans,
            0,
            true,
            None,
            &mut bindings,
            &mut premises,
            &mut found,
            metrics,
        )?;
        for mut m in found {
            // `join` records premises in evaluation order; restore body
            // order so dedup and provenance see the canonical vector.
            let mut body_order = vec![FactId(0); n_atoms];
            for (k, &i) in order.iter().enumerate() {
                body_order[i] = m.premises[k];
            }
            m.premises = body_order;
            if seen_premises.insert(m.premises.clone()) {
                out.push(m);
            }
        }
    }
    Ok(out)
}

/// Runs one [`MatchChunk`] against an immutable database snapshot.
///
/// Requires only `&Database`: index probes that miss (index never built)
/// fall back to a predicate scan, so results never depend on which indexes
/// exist — only speed does.
pub fn match_chunk(
    db: &Database,
    rule: &Rule,
    chunk: &MatchChunk,
) -> Result<Vec<BodyMatch>, EvalError> {
    match_chunk_metered(db, rule, chunk, &mut MatchMetrics::default())
}

/// [`match_chunk`] with index/scan counters accumulated into `metrics`.
/// For chunked work (`parts > 1`) only chunk 0 counts the outermost
/// lookup, keeping the totals identical at any chunk count.
pub fn match_chunk_metered(
    db: &Database,
    rule: &Rule,
    chunk: &MatchChunk,
    metrics: &mut MatchMetrics,
) -> Result<Vec<BodyMatch>, EvalError> {
    let plan = JoinPlan::for_rule(rule);
    match_chunk_planned(db, rule, &plan, chunk, metrics)
}

/// [`match_chunk_metered`] against a precomputed [`JoinPlan`] — the
/// parallel chase phase's entry point, which computes one plan per rule
/// up front and shares it across all chunks.
pub fn match_chunk_planned(
    db: &Database,
    rule: &Rule,
    plan: &JoinPlan,
    chunk: &MatchChunk,
    metrics: &mut MatchMetrics,
) -> Result<Vec<BodyMatch>, EvalError> {
    static EMPTY: &[usize] = &[];
    let atoms: Vec<AtomPlan> = rule
        .positive_body()
        .enumerate()
        .map(|(i, atom)| AtomPlan {
            atom,
            probe: plan.positive.get(i).map_or(EMPTY, Vec::as_slice),
            min_fact: match chunk.pivot {
                Some((pivot, watermark)) if pivot == i => watermark,
                _ => 0,
            },
        })
        .collect();
    let mut out = Vec::new();
    let mut bindings = Bindings::new();
    let mut premises = Vec::with_capacity(atoms.len());
    join(
        db,
        rule,
        &atoms,
        0,
        chunk.use_index,
        Some((chunk.part, chunk.parts)),
        &mut bindings,
        &mut premises,
        &mut out,
        metrics,
    )?;
    Ok(out)
}

/// One body atom with its planned probe and candidate restriction.
struct AtomPlan<'a> {
    atom: &'a Atom,
    /// The statically-bound positions this atom's lookup probes
    /// (ascending; empty = unconstrained scan).
    probe: &'a [usize],
    /// Only facts with id >= this participate (0 = unrestricted).
    min_fact: u32,
}

/// The candidate facts for `atom` under the current bindings, in insertion
/// (= ascending id) order. Probes the composite index on the atom's
/// planned signature when available, scans (filtering on the same
/// positions) otherwise — identical ids in identical order either way.
fn candidates_for(
    db: &Database,
    plan: &AtomPlan<'_>,
    use_index: bool,
    bindings: &Bindings,
    metrics: &mut MatchMetrics,
    count: bool,
) -> Vec<FactId> {
    let atom = plan.atom;
    let probe = if use_index { plan.probe } else { &[] };
    // Every planned position holds a constant or a variable bound by an
    // earlier atom, so the key is always fully resolvable.
    let key: Option<Vec<Value>> = probe
        .iter()
        .map(|&p| match &atom.terms[p] {
            Term::Const(v) => Some(*v),
            Term::Var(name) => bindings.get(name).copied(),
        })
        .collect();
    let mut candidates: Vec<FactId> = match key {
        Some(key) if !probe.is_empty() => {
            match db.probe_composite(atom.predicate, probe, &key) {
                Some(hits) => {
                    if count {
                        metrics.index_probes += 1;
                        if probe.len() > 1 {
                            metrics.composite_probes += 1;
                        }
                    }
                    hits.to_vec()
                }
                // Index never built: scan the predicate and filter on the
                // same positions — same ids, same order, just slower.
                None => {
                    if count {
                        metrics.scans += 1;
                    }
                    db.facts_of(atom.predicate)
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let f = db.fact(id);
                            probe
                                .iter()
                                .zip(&key)
                                .all(|(&p, v)| f.values.get(p) == Some(v))
                        })
                        .collect()
                }
            }
        }
        _ => {
            if count {
                metrics.scans += 1;
            }
            db.facts_of(atom.predicate).to_vec()
        }
    };
    if plan.min_fact > 0 {
        candidates.retain(|id| id.0 >= plan.min_fact);
    }
    candidates.retain(|&id| db.is_active(id));
    candidates
}

/// The contiguous slice of `len` outermost candidates owned by chunk
/// `part` of `parts`.
fn chunk_bounds(len: usize, part: usize, parts: usize) -> (usize, usize) {
    let parts = parts.max(1);
    let base = len / parts;
    let extra = len % parts;
    // The first `extra` chunks get one additional candidate each.
    let start = part * base + part.min(extra);
    let size = base + usize::from(part < extra);
    (start.min(len), (start + size).min(len))
}

#[allow(clippy::too_many_arguments)]
fn join(
    db: &Database,
    rule: &Rule,
    atoms: &[AtomPlan<'_>],
    depth: usize,
    use_index: bool,
    depth0_slice: Option<(usize, usize)>,
    bindings: &mut Bindings,
    premises: &mut Vec<FactId>,
    out: &mut Vec<BodyMatch>,
    metrics: &mut MatchMetrics,
) -> Result<(), EvalError> {
    if depth == atoms.len() {
        if let Some(m) = finish_match(db, rule, use_index, bindings, premises, metrics)? {
            out.push(m);
        }
        return Ok(());
    }
    let plan = &atoms[depth];
    let atom = plan.atom;

    // The outermost lookup runs once per chunk: only chunk 0 counts it,
    // so metric totals do not depend on how the work was split.
    let count = depth > 0 || depth0_slice.is_none_or(|(part, _)| part == 0);
    let mut candidates = candidates_for(db, plan, use_index, bindings, metrics, count);
    if depth == 0 {
        if let Some((part, parts)) = depth0_slice {
            let (lo, hi) = chunk_bounds(candidates.len(), part, parts);
            candidates.truncate(hi);
            candidates.drain(..lo);
        }
    }

    for id in candidates {
        let mut added: Vec<crate::symbol::Symbol> = Vec::new();
        let ok = {
            let fact = db.fact(id);
            if fact.values.len() != atom.terms.len() {
                false
            } else {
                let mut consistent = true;
                for (term, value) in atom.terms.iter().zip(&fact.values) {
                    match term {
                        Term::Const(c) => {
                            if c != value {
                                consistent = false;
                                break;
                            }
                        }
                        Term::Var(name) => match bindings.get(name) {
                            Some(bound) => {
                                if bound != value {
                                    consistent = false;
                                    break;
                                }
                            }
                            None => {
                                bindings.insert(*name, *value);
                                added.push(*name);
                            }
                        },
                    }
                }
                consistent
            }
        };
        if ok {
            premises.push(id);
            join(
                db,
                rule,
                atoms,
                depth + 1,
                use_index,
                None,
                bindings,
                premises,
                out,
                metrics,
            )?;
            premises.pop();
        }
        for name in added {
            bindings.remove(&name);
        }
    }
    Ok(())
}

/// Completes a full-atom match: assignments, negation, pre-aggregate
/// conditions. Returns the finished match, or `None` if a check failed.
/// Runs once per complete positive match, so the negation counters it
/// feeds are invariant across chunk counts by construction.
fn finish_match(
    db: &Database,
    rule: &Rule,
    use_index: bool,
    bindings: &Bindings,
    premises: &[FactId],
    metrics: &mut MatchMetrics,
) -> Result<Option<BodyMatch>, EvalError> {
    let mut full = bindings.clone();

    for a in &rule.assignments {
        let v = a.expr.eval(&full)?;
        full.insert(a.var, v);
    }

    // Negated atoms: fail the match if any fact matches under θ. With
    // indexes enabled the lookup probes the widest composite index whose
    // positions are all bound (built eagerly from the rule's JoinPlan);
    // in ablation mode it stays an honest linear scan.
    for atom in rule.negated_body() {
        let pattern: Vec<Option<Value>> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(v) => Some(*v),
                Term::Var(name) => full.get(name).copied(),
            })
            .collect();
        let (hit, probed) = if use_index {
            db.find_matching_metered(atom.predicate, &pattern)
        } else {
            (db.find_matching_scan(atom.predicate, &pattern), false)
        };
        if probed {
            metrics.negation_probes += 1;
        } else {
            metrics.negation_scans += 1;
        }
        if hit.is_some() {
            return Ok(None);
        }
    }

    let agg_result = rule.aggregate.as_ref().map(|a| a.result);
    for c in &rule.conditions {
        let mut vars = Vec::new();
        c.collect_vars(&mut vars);
        let post_aggregate = agg_result.is_some_and(|r| vars.contains(&r));
        if post_aggregate {
            continue; // checked by the chase after grouping
        }
        if !c.holds(&full)? {
            return Ok(None);
        }
    }

    Ok(Some(BodyMatch {
        bindings: full,
        premises: premises.to_vec(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Condition, Expr};
    use crate::rule::RuleBuilder;
    use crate::symbol::Symbol;

    fn own_db() -> Database {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["A".into(), "C".into(), 0.4.into()]);
        db.add("own", &["B".into(), "C".into(), 0.3.into()]);
        db
    }

    #[test]
    fn single_atom_matching_binds_all_rows() {
        let mut db = own_db();
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("y"), Term::var("s")],
            ))
            .head(Atom::new("p", vec![Term::var("x")]));
        let ms = match_body(&mut db, &rule).unwrap();
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn conditions_filter_matches() {
        let mut db = own_db();
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("y"), Term::var("s")],
            ))
            .condition(Condition::new(
                Expr::var("s"),
                CmpOp::Gt,
                Expr::constant(0.5f64),
            ))
            .head(Atom::new("control", vec![Term::var("x"), Term::var("y")]));
        let ms = match_body(&mut db, &rule).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].bindings[&Symbol::new("y")], Value::str("B"));
    }

    #[test]
    fn join_respects_shared_variables() {
        let mut db = own_db();
        // own(x,z,_), own(z,y,_) : A->B->C is the only 2-hop chain.
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("z"), Term::var("s1")],
            ))
            .body(Atom::new(
                "own",
                vec![Term::var("z"), Term::var("y"), Term::var("s2")],
            ))
            .head(Atom::new("p", vec![Term::var("x"), Term::var("y")]));
        let ms = match_body(&mut db, &rule).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].bindings[&Symbol::new("x")], Value::str("A"));
        assert_eq!(ms[0].bindings[&Symbol::new("y")], Value::str("C"));
        assert_eq!(ms[0].premises.len(), 2);
    }

    #[test]
    fn repeated_variable_in_one_atom_requires_equality() {
        let mut db = Database::new();
        db.add("edge", &["A".into(), "A".into()]);
        db.add("edge", &["A".into(), "B".into()]);
        let rule = RuleBuilder::new("r")
            .body(Atom::new("edge", vec![Term::var("x"), Term::var("x")]))
            .head(Atom::new("loop", vec![Term::var("x")]));
        let ms = match_body(&mut db, &rule).unwrap();
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn constants_in_body_atoms_filter() {
        let mut db = own_db();
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::constant("A"), Term::var("y"), Term::var("s")],
            ))
            .head(Atom::new("p", vec![Term::var("y")]));
        let ms = match_body(&mut db, &rule).unwrap();
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn negated_atom_blocks_matches() {
        let mut db = own_db();
        db.add("blocked", &["A".into()]);
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("y"), Term::var("s")],
            ))
            .body_not(Atom::new("blocked", vec![Term::var("x")]))
            .head(Atom::new("p", vec![Term::var("x"), Term::var("y")]));
        let ms = match_body(&mut db, &rule).unwrap();
        // A's two rows are blocked; only B->C remains.
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].bindings[&Symbol::new("x")], Value::str("B"));
    }

    #[test]
    fn assignments_extend_bindings() {
        let mut db = own_db();
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("y"), Term::var("s")],
            ))
            .assign(
                "pct",
                Expr::binary(
                    crate::expr::ArithOp::Mul,
                    Expr::var("s"),
                    Expr::constant(100.0f64),
                ),
            )
            .head(Atom::new("p", vec![Term::var("x"), Term::var("pct")]));
        let ms = match_body(&mut db, &rule).unwrap();
        let pcts: Vec<f64> = ms
            .iter()
            .map(|m| m.bindings[&Symbol::new("pct")].as_f64().unwrap())
            .collect();
        assert!(pcts.contains(&60.0));
    }

    #[test]
    fn post_aggregate_conditions_are_deferred() {
        let mut db = own_db();
        // ts = sum(s), ts > 10 : the condition must NOT filter individual
        // matches (no single share exceeds 10).
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("y"), Term::var("s")],
            ))
            .aggregate(crate::rule::AggFunc::Sum, "ts", Expr::var("s"))
            .condition(Condition::new(
                Expr::var("ts"),
                CmpOp::Gt,
                Expr::constant(10.0f64),
            ))
            .head(Atom::new("p", vec![Term::var("x"), Term::var("ts")]));
        let ms = match_body(&mut db, &rule).unwrap();
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn scan_mode_agrees_with_indexed_mode() {
        let mut db = own_db();
        db.add("own", &["C".into(), "D".into(), 0.7.into()]);
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("z"), Term::var("s1")],
            ))
            .body(Atom::new(
                "own",
                vec![Term::var("z"), Term::var("y"), Term::var("s2")],
            ))
            .head(Atom::new("p", vec![Term::var("x"), Term::var("y")]));
        let indexed = match_body_with(&mut db, &rule, true).unwrap();
        let scanned = match_body_with(&mut db, &rule, false).unwrap();
        assert_eq!(indexed.len(), scanned.len());
        for (a, b) in indexed.iter().zip(&scanned) {
            assert_eq!(a.premises, b.premises);
        }
    }

    #[test]
    fn missing_index_falls_back_to_scan() {
        // Read-only chunk matching on a cold database (no indexes built)
        // must agree with the index-building path.
        let db = own_db();
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::constant("A"), Term::var("y"), Term::var("s")],
            ))
            .head(Atom::new("p", vec![Term::var("y")]));
        assert!(!db.has_index(Symbol::new("own"), 0));
        let cold = match_chunk(&db, &rule, &MatchChunk::full(true)).unwrap();
        let mut warm_db = own_db();
        let warm = match_body(&mut warm_db, &rule).unwrap();
        assert_eq!(cold.len(), warm.len());
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.premises, b.premises);
        }
    }

    #[test]
    fn chunked_enumeration_equals_sequential_for_any_part_count() {
        let mut db = own_db();
        db.add("own", &["C".into(), "D".into(), 0.7.into()]);
        db.add("own", &["B".into(), "D".into(), 0.2.into()]);
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("z"), Term::var("s1")],
            ))
            .body(Atom::new(
                "own",
                vec![Term::var("z"), Term::var("y"), Term::var("s2")],
            ))
            .head(Atom::new("p", vec![Term::var("x"), Term::var("y")]));
        let full = match_body(&mut db, &rule).unwrap();
        for parts in 1..=7 {
            let mut concat = Vec::new();
            for part in 0..parts {
                let chunk = MatchChunk {
                    pivot: None,
                    part,
                    parts,
                    use_index: true,
                };
                concat.extend(match_chunk(&db, &rule, &chunk).unwrap());
            }
            assert_eq!(concat.len(), full.len(), "parts {parts}");
            for (a, b) in concat.iter().zip(&full) {
                assert_eq!(a.premises, b.premises, "parts {parts}");
            }
        }
    }

    #[test]
    fn match_metrics_are_invariant_across_chunk_counts() {
        let mut db = own_db();
        db.add("own", &["C".into(), "D".into(), 0.7.into()]);
        db.add("own", &["B".into(), "D".into(), 0.2.into()]);
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("z"), Term::var("s1")],
            ))
            .body(Atom::new(
                "own",
                vec![Term::var("z"), Term::var("y"), Term::var("s2")],
            ))
            .head(Atom::new("p", vec![Term::var("x"), Term::var("y")]));
        // Build the statically-required indexes once.
        let mut reference = MatchMetrics::default();
        match_body_with_metered(&mut db, &rule, true, &mut reference).unwrap();
        assert!(reference.index_probes > 0);
        assert!(reference.scans > 0); // the outermost atom has no bound position
        for parts in 2..=5 {
            let mut m = MatchMetrics::default();
            for part in 0..parts {
                let chunk = MatchChunk {
                    pivot: None,
                    part,
                    parts,
                    use_index: true,
                };
                match_chunk_metered(&db, &rule, &chunk, &mut m).unwrap();
            }
            assert_eq!(m, reference, "parts {parts}");
        }
    }

    #[test]
    fn scan_mode_counts_scans_only() {
        let mut db = own_db();
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::constant("A"), Term::var("y"), Term::var("s")],
            ))
            .head(Atom::new("p", vec![Term::var("y")]));
        let mut m = MatchMetrics::default();
        match_body_with_metered(&mut db, &rule, false, &mut m).unwrap();
        assert_eq!(m.index_probes, 0);
        assert!(m.scans > 0);
    }

    #[test]
    fn required_indexes_follow_static_binding_order() {
        // own(x, z, s1) binds x,z,s1; the second atom's first position is
        // then bound, so only ("own", 0) is required (the first atom has
        // no bound position at depth 0).
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("z"), Term::var("s1")],
            ))
            .body(Atom::new(
                "own",
                vec![Term::var("z"), Term::var("y"), Term::var("s2")],
            ))
            .head(Atom::new("p", vec![Term::var("x"), Term::var("y")]));
        assert_eq!(required_indexes(&rule), vec![(Symbol::new("own"), 0)]);
        // A leading constant is probed at depth 0.
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::constant("A"), Term::var("y"), Term::var("s")],
            ))
            .head(Atom::new("p", vec![Term::var("y")]));
        assert_eq!(required_indexes(&rule), vec![(Symbol::new("own"), 0)]);
    }

    #[test]
    fn join_plan_signatures_cover_positive_negated_and_head_atoms() {
        // own(x,z,s1), own(z,y,s2), not blocked(z,y) -> p(x,y,w) with w
        // existential: atom 0 has no bound position, atom 1 probes [0],
        // the negated atom is fully bound, the head probes its
        // non-existential positions.
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("z"), Term::var("s1")],
            ))
            .body(Atom::new(
                "own",
                vec![Term::var("z"), Term::var("y"), Term::var("s2")],
            ))
            .body_not(Atom::new("blocked", vec![Term::var("z"), Term::var("y")]))
            .head(Atom::new(
                "p",
                vec![Term::var("x"), Term::var("y"), Term::var("w")],
            ));
        let plan = JoinPlan::for_rule(&rule);
        assert_eq!(plan.positive, vec![vec![], vec![0]]);
        assert_eq!(plan.negated, vec![vec![0, 1]]);
        assert_eq!(plan.head, Some(vec![0, 1]));
        let sigs = plan.required_composite_indexes(&rule);
        assert_eq!(
            sigs,
            vec![
                (Symbol::new("own"), vec![0]),
                (Symbol::new("blocked"), vec![0, 1]),
                (Symbol::new("p"), vec![0, 1]),
            ]
        );
        // The legacy plan knows only first-bound-position probes.
        let legacy = JoinPlan::legacy(&rule);
        assert_eq!(legacy.positive, vec![vec![], vec![0]]);
        assert_eq!(legacy.negated, vec![vec![]]);
        assert_eq!(legacy.head, None);
    }

    #[test]
    fn join_plan_assignment_variables_bind_negated_positions() {
        // pct is only bound after the assignment; the negated atom's
        // second position still counts as bound.
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("y"), Term::var("s")],
            ))
            .assign(
                "pct",
                Expr::binary(
                    crate::expr::ArithOp::Mul,
                    Expr::var("s"),
                    Expr::constant(100.0f64),
                ),
            )
            .body_not(Atom::new("cap", vec![Term::var("x"), Term::var("pct")]))
            .head(Atom::new("p", vec![Term::var("x")]));
        let plan = JoinPlan::for_rule(&rule);
        assert_eq!(plan.negated, vec![vec![0, 1]]);
        assert_eq!(plan.head, None, "no existentials, no satisfaction probe");
    }

    #[test]
    fn composite_probe_agrees_with_scan_and_counts_composites() {
        // Triangle closure: the third atom has two bound positions, so the
        // planned join probes a genuinely composite (edge, [0, 1]) index.
        let mut db = Database::new();
        for (a, b) in [
            ("A", "B"),
            ("B", "C"),
            ("A", "C"),
            ("C", "D"),
            ("B", "D"),
            ("A", "D"),
        ] {
            db.add("edge", &[a.into(), b.into()]);
        }
        let rule = RuleBuilder::new("tri")
            .body(Atom::new("edge", vec![Term::var("x"), Term::var("y")]))
            .body(Atom::new("edge", vec![Term::var("y"), Term::var("z")]))
            .body(Atom::new("edge", vec![Term::var("x"), Term::var("z")]))
            .head(Atom::new(
                "triangle",
                vec![Term::var("x"), Term::var("y"), Term::var("z")],
            ));
        let plan = JoinPlan::for_rule(&rule);
        assert_eq!(plan.positive, vec![vec![], vec![0], vec![0, 1]]);
        let mut metrics = MatchMetrics::default();
        let indexed = match_body_planned(&mut db, &rule, &plan, true, &mut metrics).unwrap();
        assert!(metrics.composite_probes > 0);
        assert!(db.has_composite_index(Symbol::new("edge"), &[0, 1]));
        let scanned = match_body_with(&mut db, &rule, false).unwrap();
        assert_eq!(indexed.len(), scanned.len());
        assert!(!indexed.is_empty());
        for (a, b) in indexed.iter().zip(&scanned) {
            assert_eq!(a.premises, b.premises);
        }
    }

    #[test]
    fn negation_probes_an_index_when_planned_and_scans_otherwise() {
        let mut db = own_db();
        db.add("blocked", &["A".into()]);
        db.add("blocked", &["Z".into()]);
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("y"), Term::var("s")],
            ))
            .body_not(Atom::new("blocked", vec![Term::var("x")]))
            .head(Atom::new("p", vec![Term::var("x"), Term::var("y")]));
        let mut metrics = MatchMetrics::default();
        let ms = match_body_with_metered(&mut db, &rule, true, &mut metrics).unwrap();
        assert_eq!(ms.len(), 1);
        // One negation check per complete positive match, all indexed.
        assert_eq!(metrics.negation_probes, 3);
        assert_eq!(metrics.negation_scans, 0);
        // Ablation mode stays an honest scan even though the index exists.
        let mut metrics = MatchMetrics::default();
        let scanned = match_body_with_metered(&mut db, &rule, false, &mut metrics).unwrap();
        assert_eq!(metrics.negation_probes, 0);
        assert_eq!(metrics.negation_scans, 3);
        assert_eq!(ms.len(), scanned.len());
    }

    #[test]
    fn legacy_plan_produces_identical_matches() {
        let mut db = own_db();
        db.add("own", &["C".into(), "D".into(), 0.7.into()]);
        db.add("blocked", &["A".into()]);
        let rule = RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("z"), Term::var("s1")],
            ))
            .body(Atom::new(
                "own",
                vec![Term::var("z"), Term::var("y"), Term::var("s2")],
            ))
            .body_not(Atom::new("blocked", vec![Term::var("y")]))
            .head(Atom::new("p", vec![Term::var("x"), Term::var("y")]));
        let full = JoinPlan::for_rule(&rule);
        let legacy = JoinPlan::legacy(&rule);
        let planned =
            match_body_planned(&mut db, &rule, &full, true, &mut MatchMetrics::default()).unwrap();
        let legacy_ms =
            match_body_planned(&mut db, &rule, &legacy, true, &mut MatchMetrics::default())
                .unwrap();
        assert_eq!(planned.len(), legacy_ms.len());
        for (a, b) in planned.iter().zip(&legacy_ms) {
            assert_eq!(a.premises, b.premises);
            assert_eq!(a.bindings, b.bindings);
        }
    }

    #[test]
    fn empty_predicate_yields_no_matches() {
        let mut db = Database::new();
        let rule = RuleBuilder::new("r")
            .body(Atom::new("nothing", vec![Term::var("x")]))
            .head(Atom::new("p", vec![Term::var("x")]));
        assert!(match_body(&mut db, &rule).unwrap().is_empty());
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use crate::rule::RuleBuilder;

    fn two_hop_rule() -> Rule {
        RuleBuilder::new("r")
            .body(Atom::new(
                "own",
                vec![Term::var("x"), Term::var("z"), Term::var("s1")],
            ))
            .body(Atom::new(
                "own",
                vec![Term::var("z"), Term::var("y"), Term::var("s2")],
            ))
            .head(Atom::new("p", vec![Term::var("x"), Term::var("y")]))
    }

    #[test]
    fn watermark_zero_equals_full_matching() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["B".into(), "C".into(), 0.7.into()]);
        db.add("own", &["C".into(), "D".into(), 0.8.into()]);
        let rule = two_hop_rule();
        let full = match_body(&mut db, &rule).unwrap();
        let incr = match_body_incremental(&mut db, &rule, 0).unwrap();
        assert_eq!(full.len(), incr.len());
    }

    #[test]
    fn incremental_returns_only_matches_touching_new_facts() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["B".into(), "C".into(), 0.7.into()]);
        let watermark = db.len() as u32; // everything so far is old
        db.add("own", &["C".into(), "D".into(), 0.8.into()]);
        let rule = two_hop_rule();
        let ms = match_body_incremental(&mut db, &rule, watermark).unwrap();
        // Only B->C->D involves the new fact; A->B->C is old-old.
        assert_eq!(ms.len(), 1);
        assert_eq!(
            ms[0].bindings[&crate::symbol::Symbol::new("y")],
            Value::str("D")
        );
    }

    #[test]
    fn matches_with_two_new_facts_are_deduplicated() {
        let mut db = Database::new();
        let watermark = db.len() as u32;
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["B".into(), "C".into(), 0.7.into()]);
        let rule = two_hop_rule();
        // Both pivots produce the A->B->C match; it must appear once.
        let ms = match_body_incremental(&mut db, &rule, watermark).unwrap();
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn future_watermark_yields_nothing() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["B".into(), "C".into(), 0.7.into()]);
        let rule = two_hop_rule();
        let ms = match_body_incremental(&mut db, &rule, 999).unwrap();
        assert!(ms.is_empty());
    }
}
