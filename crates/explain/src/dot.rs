//! Graphviz (DOT) rendering of reasoning paths — the paper's Figures 4, 5
//! and 10 as visual artefacts.
//!
//! A reasoning path renders as the subgraph of D(Σ) induced by its rules:
//! predicate nodes (extensional boxed, critical double-circled) and
//! rule-labelled edges; contributor edges of dashed aggregations render
//! with `style=dashed`, matching the paper's notation.

use crate::structural::{ReasoningPath, StructuralAnalysis};
use vadalog::{DependencyGraph, Program, Symbol};

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders one reasoning path as a DOT digraph named `name`.
pub fn reasoning_path_dot(
    program: &Program,
    analysis: &StructuralAnalysis,
    path: &ReasoningPath,
    name: &str,
) -> String {
    let graph = DependencyGraph::build(program);
    let mut out = format!("digraph \"{}\" {{\n  rankdir=LR;\n", esc(name));

    // Nodes: predicates touched by the path's rules.
    let mut nodes: Vec<Symbol> = Vec::new();
    for &r in &path.rules {
        let rule = program.rule(r);
        for atom in rule.positive_body() {
            if !nodes.contains(&atom.predicate) {
                nodes.push(atom.predicate);
            }
        }
        if let Some(h) = rule.head.atom() {
            if !nodes.contains(&h.predicate) {
                nodes.push(h.predicate);
            }
        }
    }
    for &n in &nodes {
        let mut attrs = Vec::new();
        if graph.is_extensional(n) {
            attrs.push("shape=box".to_owned());
        }
        if analysis.critical.contains(&n) {
            attrs.push("peripheries=2".to_owned());
        }
        if path.entry == Some(n) {
            attrs.push("style=bold".to_owned());
        }
        out.push_str(&format!(
            "  \"{}\" [{}];\n",
            esc(n.as_str()),
            attrs.join(", ")
        ));
    }

    // Edges: one per (body atom -> head) of each rule; dashed when the
    // rule is in multi-contributor mode.
    for &r in &path.rules {
        let rule = program.rule(r);
        let Some(head) = rule.head.atom() else {
            continue;
        };
        let style = if path.is_dashed(r) {
            ", style=dashed"
        } else {
            ""
        };
        for atom in rule.positive_body() {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"{}];\n",
                esc(atom.predicate.as_str()),
                esc(head.predicate.as_str()),
                esc(&rule.label),
                style
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders every reasoning path of an analysis as a sequence of DOT
/// digraphs (one document, multiple graphs — `dot` renders them as pages).
pub fn analysis_dot(program: &Program, analysis: &StructuralAnalysis) -> String {
    analysis
        .paths
        .iter()
        .map(|p| reasoning_path_dot(program, analysis, p, &p.label(program)))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structural::analyze;
    use vadalog::parse_program;

    fn setup() -> (Program, StructuralAnalysis) {
        let program = parse_program(
            r#"
            alpha: shock(f, s), has_capital(f, p1), s > p1 -> default(f).
            beta: default(d), debts(d, c, v), e = sum(v) -> risk(c, e).
            gamma: has_capital(c, p2), risk(c, e), p2 < e -> default(c).
        "#,
        )
        .unwrap()
        .program;
        let analysis = analyze(&program, "default").unwrap();
        (program, analysis)
    }

    #[test]
    fn solid_path_renders_solid_edges() {
        let (program, analysis) = setup();
        let pi1 = analysis
            .simple_paths()
            .find(|p| p.rules.len() == 1)
            .unwrap();
        let dot = reasoning_path_dot(&program, &analysis, pi1, "Pi1");
        assert!(dot.contains("\"shock\" -> \"default\" [label=\"alpha\"]"));
        assert!(!dot.contains("style=dashed"));
        // shock is extensional (box), default critical (double periphery).
        assert!(dot.contains("\"shock\" [shape=box]"));
        assert!(dot.contains("peripheries=2"));
    }

    #[test]
    fn dashed_variant_renders_dashed_edges() {
        let (program, analysis) = setup();
        let dashed = analysis
            .simple_paths()
            .find(|p| !p.dashed.is_empty())
            .unwrap();
        let dot = reasoning_path_dot(&program, &analysis, dashed, "Pi3");
        assert!(dot.contains("label=\"beta\", style=dashed"), "{dot}");
        assert!(dot.contains("label=\"alpha\"];"));
    }

    #[test]
    fn cycle_marks_its_entry_node() {
        let (program, analysis) = setup();
        let cycle = analysis.cycles().next().unwrap();
        let dot = reasoning_path_dot(&program, &analysis, cycle, "Gamma1");
        assert!(dot.contains("style=bold"), "{dot}");
    }

    #[test]
    fn analysis_dot_contains_all_paths() {
        let (program, analysis) = setup();
        let dot = analysis_dot(&program, &analysis);
        assert_eq!(dot.matches("digraph").count(), analysis.paths.len());
    }
}
