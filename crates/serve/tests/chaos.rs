//! Chaos suite: deterministic fault injection against the serving
//! layer (compile with `--features faultpoints`). Worker panics and
//! crashes must stay isolated — batches complete, the pool respawns to
//! full width, and answers stay byte-identical to an uninjected run at
//! any worker count. Publish failures must degrade to the last good
//! snapshot (visible on `GET /ready`) and recover after backoff, and a
//! saturated job queue must shed whole batches with `503` +
//! `Retry-After` instead of stalling.
#![cfg(feature = "faultpoints")]

use explain::{Explainer, ProgramArtifacts};
use serve::{
    ExplainService, HttpServer, PublishRetry, ServeConfig, SnapshotHandle, SnapshotUpdate,
};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vadalog::faultpoint::{arm, FaultPlan};
use vadalog::{ChaseOutcome, ChaseSession, Fact};

fn control_outcome(entities: usize, seed: u64) -> ChaseOutcome {
    let program = finkg::apps::control::program();
    let db = finkg::generator::random_ownership(entities, 3, seed);
    ChaseSession::new(&program).run(db).unwrap()
}

fn control_artifacts() -> Arc<ProgramArtifacts> {
    ProgramArtifacts::builder(finkg::apps::control::program(), finkg::apps::control::GOAL)
        .with_glossary(&finkg::apps::control::glossary())
        .build_cached()
        .unwrap()
}

fn derived_goals(outcome: &ChaseOutcome) -> Vec<Fact> {
    outcome
        .facts_of(finkg::apps::control::GOAL)
        .into_iter()
        .filter(|(id, _)| outcome.graph.is_derived(*id))
        .map(|(_, fact)| fact.clone())
        .collect()
}

/// Sequential, fault-free reference answers.
fn reference_texts(artifacts: &Arc<ProgramArtifacts>, outcome: &Arc<ChaseOutcome>) -> Vec<String> {
    let goals = derived_goals(outcome);
    let explainer = Explainer::for_snapshot(Arc::clone(artifacts), Arc::clone(outcome));
    goals
        .iter()
        .map(|goal| explainer.explain(goal).unwrap().text)
        .collect()
}

/// Polls until the pool reports `want` live workers (respawn is async).
fn await_pool_width(service: &ExplainService, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        service.heal();
        if service.alive_workers() == want {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "pool never respawned to {want} workers (alive: {})",
        service.alive_workers()
    );
}

#[test]
fn injected_worker_panic_keeps_answers_byte_identical() {
    let artifacts = control_artifacts();
    let outcome = Arc::new(control_outcome(30, 7));
    let goals = derived_goals(&outcome);
    assert!(goals.len() >= 4, "workload too small: {}", goals.len());
    let reference = reference_texts(&artifacts, &outcome);

    for workers in [1usize, 2, 8] {
        let service = ExplainService::new(
            Arc::clone(&artifacts),
            SnapshotHandle::new(Arc::clone(&outcome)),
            ServeConfig::default().with_workers(workers),
        );
        let _faults = arm(FaultPlan::new().panic_at("serve.worker", 1));
        let (_, results) = service.explain_batch(&goals);
        let texts: Vec<String> = results
            .into_iter()
            .map(|r| {
                r.expect("batch must complete despite the injected panic")
                    .text
            })
            .collect();
        assert_eq!(
            texts, reference,
            "answers at {workers} workers diverged under an injected worker panic"
        );
        await_pool_width(&service, workers);
    }
}

#[test]
fn crashed_worker_loses_its_job_but_the_batch_recovers() {
    let artifacts = control_artifacts();
    let outcome = Arc::new(control_outcome(30, 11));
    let goals = derived_goals(&outcome);
    let reference = reference_texts(&artifacts, &outcome);
    let service = ExplainService::new(
        Arc::clone(&artifacts),
        SnapshotHandle::new(Arc::clone(&outcome)),
        ServeConfig::default().with_workers(2),
    );
    // A crash drops the job on the floor without reporting: the batch
    // must notice the hole, heal the pool, and retry to the identical
    // answer.
    let _faults = arm(FaultPlan::new().crash_at("serve.worker", 1));
    let (_, results) = service.explain_batch(&goals);
    let texts: Vec<String> = results
        .into_iter()
        .map(|r| {
            r.expect("batch must complete despite the injected crash")
                .text
        })
        .collect();
    assert_eq!(texts, reference);
    await_pool_width(&service, 2);
}

/// One-shot HTTP request; returns (status line, head, body).
fn http(addr: std::net::SocketAddr, request: &str) -> (String, String, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status = text.lines().next().unwrap_or_default().to_owned();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_owned(), b.to_owned()))
        .unwrap_or((text.clone(), String::new()));
    (status, head, body)
}

fn boot_scenario(config: ServeConfig) -> (HttpServer, SnapshotHandle) {
    let program = finkg::apps::control::program();
    let outcome = ChaseSession::new(&program)
        .run(finkg::scenario::database())
        .unwrap();
    let handle = SnapshotHandle::new(outcome);
    let service = Arc::new(ExplainService::new(
        control_artifacts(),
        handle.clone(),
        config,
    ));
    (HttpServer::bind("127.0.0.1:0", service).unwrap(), handle)
}

#[test]
fn publish_failures_degrade_then_recover_with_backoff() {
    let (mut server, handle) = boot_scenario(ServeConfig::default().with_workers(1));
    let addr = server.addr();
    let next = SnapshotUpdate::full(Arc::new(control_outcome(20, 3)));

    let _faults = arm(FaultPlan::new()
        .io_error_at("serve.publish", 1)
        .io_error_at("serve.publish", 2)
        .io_error_at("serve.publish", 3));

    // First publish attempt fails: the service keeps serving the last
    // good snapshot and /ready flips to degraded.
    assert!(handle.try_publish(next.clone()).is_err());
    assert!(handle.is_degraded());
    let (status, _, body) = http(addr, "GET /ready HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(status.contains("503"), "{status}");
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    let (status, _, _) = http(addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(
        status.contains("200"),
        "degraded must not kill liveness: {status}"
    );
    assert_eq!(handle.current().version(), 1, "last good snapshot stays");

    // Retried publishing eats the remaining two injected failures and
    // lands on the fourth attempt; recovery clears the degraded state.
    let retry = PublishRetry::default().with_base(Duration::from_millis(1));
    let version = handle.publish_with_retry(next, &retry).unwrap();
    assert_eq!(version, 2);
    assert!(!handle.is_degraded());
    let (status, _, body) = http(addr, "GET /ready HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"status\":\"ready\""), "{body}");
    server.stop();
}

#[test]
fn exhausted_publish_retries_surface_a_structured_error() {
    let handle = SnapshotHandle::new(control_outcome(20, 5));
    let next = SnapshotUpdate::full(Arc::new(control_outcome(20, 6)));
    let mut plan = FaultPlan::new();
    for nth in 1..=3 {
        plan = plan.io_error_at("serve.publish", nth);
    }
    let _faults = arm(plan);
    let retry = PublishRetry::default()
        .with_attempts(3)
        .with_base(Duration::from_millis(1));
    let err = handle.publish_with_retry(next, &retry).unwrap_err();
    assert!(err.to_string().contains("3"), "{err}");
    assert!(handle.is_degraded());
    assert_eq!(handle.current().version(), 1);
}

#[test]
fn saturated_job_queue_sheds_batches_with_503_retry_after() {
    let (mut server, _handle) = boot_scenario(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(1)
            .with_request_deadline(Some(Duration::from_millis(250)))
            .with_retry_after(Duration::from_secs(3)),
    );
    let addr = server.addr();
    // Every job the one worker takes stalls 800 ms, so the depth-1
    // queue stays full for far longer than any request deadline.
    let _faults = arm(FaultPlan::new().sleep_from("serve.worker", 1, 50, 800));

    let occupier = std::thread::spawn(move || {
        let body = "control(\"B\", \"D\").\ncontrol(\"B\", \"E\").\ncontrol(\"A\", \"B\").";
        let request = format!(
            "POST /explain HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        http(addr, &request)
    });
    std::thread::sleep(Duration::from_millis(120));

    let body = "control(\"B\", \"D\").";
    let request = format!(
        "POST /explain HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let (status, head, body) = http(addr, &request);
    assert!(status.contains("503"), "{status}");
    assert!(
        head.to_ascii_lowercase().contains("retry-after: 3"),
        "{head}"
    );
    assert!(body.contains("queue"), "{body}");

    let (status, _, _) = occupier.join().unwrap();
    assert!(
        status.contains("200"),
        "the occupying batch must still get its (deadline-limited) answer: {status}"
    );
    server.stop();
}

#[test]
fn slow_handler_injection_delays_but_does_not_break_requests() {
    let (mut server, _handle) = boot_scenario(ServeConfig::default().with_workers(1));
    let _faults = arm(FaultPlan::new().sleep_at("serve.handler", 1, 200));
    let started = Instant::now();
    let (status, _, body) = http(server.addr(), "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(
        started.elapsed() >= Duration::from_millis(200),
        "the injected stall did not fire: {:?}",
        started.elapsed()
    );
    server.stop();
}

#[test]
fn injected_worker_panic_lands_in_the_flight_recorder_with_the_request_trace() {
    let (mut server, _handle) = boot_scenario(ServeConfig::default().with_workers(2));
    let addr = server.addr();
    let _faults = arm(FaultPlan::new().panic_at("serve.worker", 1));

    let goal = "control(\"B\", \"D\").";
    let request = format!(
        "POST /explain HTTP/1.1\r\nHost: x\r\nx-vadalog-trace-id: chaos-flight-7\r\nContent-Length: {}\r\n\r\n{}",
        goal.len(),
        goal
    );
    let (status, head, body) = http(addr, &request);
    // The panic is isolated and retried: the client still gets its
    // answer, with its trace id echoed.
    assert!(status.contains("200"), "{status}");
    assert!(
        head.contains("x-vadalog-trace-id: chaos-flight-7"),
        "{head}"
    );
    assert!(body.contains("\"text\":"), "{body}");

    // The panic froze a flight snapshot; the worker_panic event carries
    // the panicking request's trace id. Search the snapshot and the
    // live tail (a later failure from a parallel test may have taken a
    // newer snapshot).
    let (status, _, flight) = http(addr, "GET /debug/flight HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(status.contains("200"), "{status}");
    let doc = vadalog::obs::json::parse(&flight).expect("/debug/flight is valid JSON");
    let mut events = Vec::new();
    if let Some(snapshot) = doc.get("snapshot") {
        if let Some(list) = snapshot.get("events").and_then(|e| e.as_arr()) {
            events.extend(list.iter());
        }
    }
    if let Some(list) = doc
        .get("tail")
        .and_then(|t| t.get("events"))
        .and_then(|e| e.as_arr())
    {
        events.extend(list.iter());
    }
    assert!(
        events.iter().any(|e| {
            e.get("kind").and_then(|v| v.as_str()) == Some("worker_panic")
                && e.get("trace_id").and_then(|v| v.as_str()) == Some("chaos-flight-7")
        }),
        "no worker_panic event with the request's trace id in {flight}"
    );
    server.stop();
}
