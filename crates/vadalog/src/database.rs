//! The fact store: deduplicated facts with per-predicate and composite
//! positional indexes.

use crate::atom::Fact;
use crate::symbol::Symbol;
use crate::value::Value;
use std::collections::HashMap;

/// Identifier of a fact inside a [`Database`]. Ids are dense and stable:
/// the i-th inserted distinct fact has id `i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u32);

impl std::fmt::Display for FactId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A composite positional index over one predicate: maps the tuple of
/// values at `positions` to the ids of the facts carrying them, postings
/// in insertion order. A fact is posted iff it has a value at *every*
/// indexed position (shorter facts are simply absent and can never match
/// a probe that binds those positions).
#[derive(Clone, Debug)]
struct CompositeIndex {
    /// Indexed argument positions, ascending and distinct.
    positions: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<FactId>>,
}

impl CompositeIndex {
    /// The index key of `fact`, or `None` if the fact is too short to
    /// carry values at all indexed positions.
    fn key_of(&self, fact: &Fact) -> Option<Vec<Value>> {
        self.positions
            .iter()
            .map(|&p| fact.values.get(p).copied())
            .collect()
    }
}

/// A deduplicated store of facts.
///
/// Lookups can be restricted by bound argument positions: each predicate
/// may carry any number of *composite* positional hash indexes, each
/// keyed by the tuple of values at a fixed set of positions
/// (`(predicate, [positions]) -> key -> ids`, postings in insertion
/// order). Single-position indexes are the one-position special case.
/// Indexes are created lazily the first time a signature is probed via
/// [`Database::facts_with`], or eagerly via
/// [`Database::ensure_composite_index`] (as the chase engine does from
/// its join plans), and maintained incrementally by inserts afterwards.
#[derive(Clone, Debug, Default)]
pub struct Database {
    facts: Vec<Fact>,
    dedup: HashMap<Fact, FactId>,
    by_predicate: HashMap<Symbol, Vec<FactId>>,
    /// Composite positional indexes, grouped by predicate so an insert
    /// only ever touches the indexes of its own predicate.
    indexes: HashMap<Symbol, Vec<CompositeIndex>>,
    /// Facts superseded by a fuller monotonic aggregate: still stored (the
    /// chase graph references them) but excluded from matching.
    inactive: std::collections::HashSet<FactId>,
    /// Deactivated-fact count per predicate, so the active population of a
    /// predicate is O(1) to read (the engine sizes match chunks from it).
    inactive_by_pred: HashMap<Symbol, usize>,
    /// Running approximation of the store's heap footprint, maintained in
    /// O(1) per insert so the engine's memory budget can poll it cheaply.
    approx_bytes: usize,
    /// Posting bytes recorded by a checkpoint but not yet rebuilt locally:
    /// eager index builds after a restore consume this credit instead of
    /// re-charging `approx_bytes` (see [`Database::restore_approx_bytes`]).
    index_byte_credit: usize,
    /// Total posting-list entries ever built, eagerly or incrementally.
    /// A plain work counter (never decremented), deterministic for a given
    /// insertion/indexing sequence; used by tests and metrics to verify
    /// that inserts touch only their own predicate's indexes.
    postings_built: u64,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Inserts `fact`, returning its id and whether it was new.
    pub fn insert(&mut self, fact: Fact) -> (FactId, bool) {
        if let Some(&id) = self.dedup.get(&fact) {
            return (id, false);
        }
        let id = FactId(u32::try_from(self.facts.len()).expect("fact id overflow"));
        self.by_predicate
            .entry(fact.predicate)
            .or_default()
            .push(id);
        // Maintain the existing indexes of this predicate — and only this
        // predicate; indexes of unrelated predicates are never visited.
        if let Some(indexes) = self.indexes.get_mut(&fact.predicate) {
            for index in indexes.iter_mut() {
                if let Some(key) = index.key_of(&fact) {
                    index.map.entry(key).or_default().push(id);
                    self.postings_built += 1;
                    self.approx_bytes += std::mem::size_of::<FactId>();
                }
            }
        }
        // Stored fact + dedup key copy + the per-predicate id slot. An
        // estimate (hash-table overhead is ignored), but deterministic:
        // it depends only on the insertion sequence, never on threads.
        let value_bytes = fact.values.len() * std::mem::size_of::<Value>();
        self.approx_bytes +=
            2 * (std::mem::size_of::<Fact>() + value_bytes) + std::mem::size_of::<FactId>() * 2;
        self.dedup.insert(fact.clone(), id);
        self.facts.push(fact);
        (id, true)
    }

    /// Convenience: inserts a fact built from a predicate and values.
    pub fn add(&mut self, predicate: &str, values: &[Value]) -> FactId {
        self.insert(Fact::new(predicate, values.to_vec())).0
    }

    /// Rebuilds the store under a fact-id permutation: the fact at id
    /// `i` moves to `map[i]`, ids mapped to the `FactId(u32::MAX)`
    /// sentinel are dropped (dead slots), and `live` is the number of
    /// mapped ids. The fact vector is scattered by moves and the dedup
    /// map's ids are rewritten in place — no fact is cloned or re-hashed
    /// — so this is how the incremental-maintenance engine turns its
    /// interleaved working store into the canonical replayed one.
    /// Composite indexes, activity marks and index accounting start
    /// fresh (the permuted store is a new insertion sequence); the byte
    /// estimate is recomputed with the per-insert formula.
    ///
    /// Every live (dedup-claimed) fact must be mapped, and `map` must be
    /// injective over live ids with targets covering `0..live` — the
    /// scatter panics on uncovered slots.
    pub(crate) fn permuted(self, map: &[FactId], live: usize) -> Database {
        let mut scattered: Vec<Option<Fact>> = (0..live).map(|_| None).collect();
        for (wid, fact) in self.facts.into_iter().enumerate() {
            let nid = map[wid];
            if nid.0 != u32::MAX {
                let slot = &mut scattered[nid.0 as usize];
                debug_assert!(slot.is_none(), "fact-id permutation must be injective");
                *slot = Some(fact);
            }
        }
        let facts: Vec<Fact> = scattered
            .into_iter()
            .map(|f| f.expect("fact-id permutation covers every live slot"))
            .collect();
        let mut dedup = self.dedup;
        for id in dedup.values_mut() {
            *id = map[id.0 as usize];
            debug_assert!(id.0 != u32::MAX, "every live fact is mapped");
        }
        let mut by_predicate = self.by_predicate;
        for ids in by_predicate.values_mut() {
            ids.retain(|id| map[id.0 as usize].0 != u32::MAX);
            for id in ids.iter_mut() {
                *id = map[id.0 as usize];
            }
            // Postings are in insertion (= ascending id) order.
            ids.sort_unstable();
        }
        let approx_bytes = facts
            .iter()
            .map(|f| {
                let value_bytes = f.values.len() * std::mem::size_of::<Value>();
                2 * (std::mem::size_of::<Fact>() + value_bytes) + std::mem::size_of::<FactId>() * 2
            })
            .sum();
        Database {
            facts,
            dedup,
            by_predicate,
            indexes: HashMap::new(),
            inactive: std::collections::HashSet::new(),
            inactive_by_pred: HashMap::new(),
            approx_bytes,
            index_byte_credit: 0,
            postings_built: 0,
        }
    }

    /// The fact with the given id.
    pub fn fact(&self, id: FactId) -> &Fact {
        &self.facts[id.0 as usize]
    }

    /// The id of `fact`, if present.
    pub fn lookup(&self, fact: &Fact) -> Option<FactId> {
        self.dedup.get(fact).copied()
    }

    /// True iff `fact` is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.dedup.contains_key(fact)
    }

    /// Total number of (distinct) facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True iff the database is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// All fact ids for `predicate`, in insertion order.
    pub fn facts_of(&self, predicate: Symbol) -> &[FactId] {
        self.by_predicate.get(&predicate).map_or(&[], Vec::as_slice)
    }

    /// Number of *active* (not aggregate-superseded) facts of `predicate`.
    /// O(1): maintained alongside [`Database::deactivate`].
    pub fn active_count(&self, predicate: Symbol) -> usize {
        let total = self.facts_of(predicate).len();
        total - self.inactive_by_pred.get(&predicate).copied().unwrap_or(0)
    }

    /// Iterates over all facts with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts
            .iter()
            .enumerate()
            .map(|(i, f)| (FactId(i as u32), f))
    }

    /// Fact ids of `predicate` whose argument at `position` equals `value`,
    /// served from a (lazily created) positional index.
    ///
    /// Requires `&mut self` because the index may need to be built; use
    /// [`Database::probe`] after [`Database::ensure_index`] for read-only
    /// access (as the parallel chase phase does).
    pub fn facts_with(&mut self, predicate: Symbol, position: usize, value: &Value) -> &[FactId] {
        self.ensure_index(predicate, position);
        let key = [*value];
        self.probe_composite(predicate, &[position], &key)
            .unwrap_or(&[])
    }

    /// Eagerly builds the single-position index on `(predicate, position)`
    /// if it does not exist yet. Shorthand for
    /// [`Database::ensure_composite_index`] with a one-position signature.
    pub fn ensure_index(&mut self, predicate: Symbol, position: usize) {
        self.ensure_composite_index(predicate, &[position]);
    }

    /// Eagerly builds the composite index on `(predicate, positions)` if it
    /// does not exist yet. Indexes are maintained incrementally by
    /// [`Database::insert`] afterwards.
    ///
    /// `positions` must be ascending and distinct (join plans emit them
    /// that way); the signature identifies the index, so probing requires
    /// the same ordering. The chase engine calls this for every planned
    /// probe signature *before* its parallel matching phase, so that a
    /// cold index is never built while the store is shared read-only
    /// across worker threads.
    ///
    /// Eagerly-built postings are charged to [`Database::approx_bytes`]
    /// exactly like incrementally-maintained ones, so the footprint
    /// estimate does not depend on whether an index was created before or
    /// after its facts were inserted.
    pub fn ensure_composite_index(&mut self, predicate: Symbol, positions: &[usize]) {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]) && !positions.is_empty(),
            "index signature must be non-empty, ascending and distinct: {positions:?}"
        );
        if self.has_composite_index(predicate, positions) {
            return;
        }
        let mut index = CompositeIndex {
            positions: positions.to_vec(),
            map: HashMap::new(),
        };
        let mut postings = 0usize;
        if let Some(ids) = self.by_predicate.get(&predicate) {
            for &id in ids {
                if let Some(key) = index.key_of(&self.facts[id.0 as usize]) {
                    index.map.entry(key).or_default().push(id);
                    postings += 1;
                }
            }
        }
        self.postings_built += postings as u64;
        // Charge the new posting lists, first consuming any credit left by
        // a checkpoint restore (whose recorded estimate already includes
        // the postings of the captured run's indexes).
        let bytes = postings * std::mem::size_of::<FactId>();
        let credited = bytes.min(self.index_byte_credit);
        self.index_byte_credit -= credited;
        self.approx_bytes += bytes - credited;
        self.indexes.entry(predicate).or_default().push(index);
    }

    /// True iff the single-position index on `(predicate, position)` exists.
    pub fn has_index(&self, predicate: Symbol, position: usize) -> bool {
        self.has_composite_index(predicate, &[position])
    }

    /// True iff the composite index on `(predicate, positions)` exists.
    pub fn has_composite_index(&self, predicate: Symbol, positions: &[usize]) -> bool {
        self.indexes
            .get(&predicate)
            .is_some_and(|v| v.iter().any(|ix| ix.positions == positions))
    }

    /// Read-only probe of the single-position index on
    /// `(predicate, position)`: returns the matching ids (in insertion
    /// order) if the index exists, `None` if it was never built. Never
    /// builds an index — safe to call concurrently from matching workers.
    pub fn probe(&self, predicate: Symbol, position: usize, value: &Value) -> Option<&[FactId]> {
        let key = [*value];
        self.probe_composite(predicate, &[position], &key)
    }

    /// Read-only probe of the composite index on `(predicate, positions)`
    /// for the facts whose values at those positions equal `key`
    /// (element-for-element). Returns the posting list in insertion order
    /// if the index exists, `None` if it was never built. Never builds an
    /// index — safe to call concurrently from matching workers.
    pub fn probe_composite(
        &self,
        predicate: Symbol,
        positions: &[usize],
        key: &[Value],
    ) -> Option<&[FactId]> {
        debug_assert_eq!(positions.len(), key.len());
        let index = self
            .indexes
            .get(&predicate)?
            .iter()
            .find(|ix| ix.positions == positions)?;
        Some(index.map.get(key).map_or(&[] as &[FactId], Vec::as_slice))
    }

    /// Total posting-list entries built so far, eagerly and incrementally.
    /// A monotone work counter: a deterministic function of the
    /// insertion/indexing sequence, independent of thread count.
    pub fn postings_built(&self) -> u64 {
        self.postings_built
    }

    /// Marks a fact as superseded: it stays in the store (ids and
    /// provenance remain valid) but no longer participates in matching.
    pub fn deactivate(&mut self, id: FactId) {
        if self.inactive.insert(id) {
            let pred = self.facts[id.0 as usize].predicate;
            *self.inactive_by_pred.entry(pred).or_default() += 1;
        }
    }

    /// Retracts a fact: removes it from matching *and* from identity.
    ///
    /// Unlike [`deactivate`](Database::deactivate) (which supersedes a
    /// fact but keeps its value claimed in the store), retraction frees
    /// the fact's value — a later [`insert`](Database::insert) of the
    /// same value allocates a *fresh* id. The slot itself stays (ids of
    /// other facts remain stable, provenance referring to the retracted
    /// id stays resolvable), but the fact is dropped from the dedup map
    /// and its posting-list entries are removed from every composite
    /// index of its predicate — postings are maintained in place, never
    /// rebuilt. Used by the incremental-maintenance engine
    /// ([`ChaseSession::apply_delta`](crate::engine::ChaseSession::apply_delta)).
    pub fn retract(&mut self, id: FactId) {
        let fact = &self.facts[id.0 as usize];
        let pred = fact.predicate;
        // Only unclaim the value if this id still owns it: a stale slot
        // whose value was re-inserted under a fresh id must not clobber
        // the fresh claim.
        if self.dedup.get(fact) == Some(&id) {
            self.dedup.remove(fact);
        }
        let mut freed = 0usize;
        if let Some(indexes) = self.indexes.get_mut(&pred) {
            let fact = &self.facts[id.0 as usize];
            for index in indexes.iter_mut() {
                let Some(key) = index.key_of(fact) else {
                    continue;
                };
                if let Some(list) = index.map.get_mut(&key) {
                    let before = list.len();
                    list.retain(|&fid| fid != id);
                    freed += before - list.len();
                    if list.is_empty() {
                        index.map.remove(&key);
                    }
                }
            }
        }
        self.approx_bytes = self
            .approx_bytes
            .saturating_sub(freed * std::mem::size_of::<FactId>());
        self.deactivate(id);
    }

    /// True iff `id` participates in matching.
    pub fn is_active(&self, id: FactId) -> bool {
        !self.inactive.contains(&id)
    }

    /// Number of deactivated (superseded) facts.
    pub fn inactive_count(&self) -> usize {
        self.inactive.len()
    }

    /// Approximate heap footprint of the stored facts and their index
    /// slots, in bytes. Maintained in O(1) per insert; a deterministic
    /// function of the insertion sequence (the engine's memory budget
    /// relies on this to trip identically at any thread count).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Overwrites the running footprint estimate with a recorded value.
    ///
    /// Used by checkpoint restore only: replaying the facts of a snapshot
    /// into a fresh (index-less) store under-counts relative to the live
    /// run it captured, because the recorded estimate includes the posting
    /// lists of the run's indexes. Restoring the recorded value keeps the
    /// memory observation bitwise identical across a save/load cycle. The
    /// difference between the recorded value and the locally-replayed one
    /// is retained as a credit that subsequent eager index rebuilds
    /// consume instead of charging those postings a second time — so a
    /// resumed run's estimate tracks the uninterrupted run exactly.
    pub(crate) fn restore_approx_bytes(&mut self, approx_bytes: usize) {
        self.index_byte_credit = approx_bytes.saturating_sub(self.approx_bytes);
        self.approx_bytes = approx_bytes;
    }

    /// Finds an *active* fact of `predicate` matching `pattern`, where
    /// `None` entries are wildcards. Used by the restricted-chase
    /// satisfaction check and safe negation. Linear scan; see
    /// [`Database::find_matching_metered`] for the index-accelerated path.
    pub fn find_matching(&self, predicate: Symbol, pattern: &[Option<Value>]) -> Option<FactId> {
        self.find_matching_metered(predicate, pattern).0
    }

    /// Like [`Database::find_matching`], but reports whether the lookup
    /// was served by an index probe (`true`) or a full predicate scan
    /// (`false`).
    ///
    /// The probe path auto-selects the widest existing index whose
    /// positions are all bound (`Some`) in `pattern`, walks its posting
    /// list in insertion order and filters on the full pattern — yielding
    /// the *same* fact as the scan (the first matching active fact in
    /// insertion order), because postings preserve insertion order and a
    /// fact outside the probed key can never match the pattern. Falls
    /// back to the linear scan when no usable index exists.
    pub fn find_matching_metered(
        &self,
        predicate: Symbol,
        pattern: &[Option<Value>],
    ) -> (Option<FactId>, bool) {
        let matches = |id: FactId| {
            if !self.is_active(id) {
                return false;
            }
            let f = self.fact(id);
            f.values.len() == pattern.len()
                && f.values
                    .iter()
                    .zip(pattern)
                    .all(|(v, p)| p.is_none_or(|pv| *v == pv))
        };
        let best = self.indexes.get(&predicate).and_then(|indexes| {
            indexes
                .iter()
                .filter(|ix| {
                    ix.positions
                        .iter()
                        .all(|&p| pattern.get(p).copied().flatten().is_some())
                })
                .max_by_key(|ix| ix.positions.len())
        });
        if let Some(index) = best {
            let key: Vec<Value> = index
                .positions
                .iter()
                .map(|&p| pattern[p].expect("probed position is bound"))
                .collect();
            let hit = index
                .map
                .get(&key)
                .and_then(|ids| ids.iter().copied().find(|&id| matches(id)));
            (hit, true)
        } else {
            (self.find_matching_scan(predicate, pattern), false)
        }
    }

    /// Forced linear-scan variant of [`Database::find_matching`], used by
    /// the index-ablation paths so "scan mode" stays an honest scan even
    /// when indexes happen to exist.
    pub(crate) fn find_matching_scan(
        &self,
        predicate: Symbol,
        pattern: &[Option<Value>],
    ) -> Option<FactId> {
        self.facts_of(predicate).iter().copied().find(|&id| {
            if !self.is_active(id) {
                return false;
            }
            let f = self.fact(id);
            f.values.len() == pattern.len()
                && f.values
                    .iter()
                    .zip(pattern)
                    .all(|(v, p)| p.is_none_or(|pv| *v == pv))
        })
    }
}

impl FromIterator<Fact> for Database {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Database {
        let mut db = Database::new();
        for f in iter {
            db.insert(f);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut db = Database::new();
        let a = db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        let b = db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        let c = db.add("own", &["A".into(), "C".into(), 0.4.into()]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn facts_of_returns_in_insertion_order() {
        let mut db = Database::new();
        db.add("p", &[1i64.into()]);
        db.add("q", &[9i64.into()]);
        db.add("p", &[2i64.into()]);
        let ids = db.facts_of(Symbol::new("p"));
        let vals: Vec<_> = ids.iter().map(|&id| db.fact(id).values[0]).collect();
        assert_eq!(vals, vec![Value::Int(1), Value::Int(2)]);
        assert!(db.facts_of(Symbol::new("zzz")).is_empty());
    }

    #[test]
    fn positional_index_is_built_lazily_and_maintained() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["C".into(), "B".into(), 0.3.into()]);
        let pred = Symbol::new("own");
        // First probe builds the index.
        let hits = db.facts_with(pred, 1, &Value::str("B")).to_vec();
        assert_eq!(hits.len(), 2);
        // Inserting afterwards keeps the index fresh.
        db.add("own", &["D".into(), "B".into(), 0.2.into()]);
        let hits = db.facts_with(pred, 1, &Value::str("B"));
        assert_eq!(hits.len(), 3);
        let misses = db.facts_with(pred, 1, &Value::str("Z"));
        assert!(misses.is_empty());
    }

    #[test]
    fn eager_index_probe_is_read_only() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["C".into(), "B".into(), 0.3.into()]);
        let pred = Symbol::new("own");
        // Before ensure_index, probe reports the index as missing.
        assert!(db.probe(pred, 1, &Value::str("B")).is_none());
        assert!(!db.has_index(pred, 1));
        db.ensure_index(pred, 1);
        assert!(db.has_index(pred, 1));
        let hits = db.probe(pred, 1, &Value::str("B")).unwrap();
        assert_eq!(hits.len(), 2);
        // Insertion keeps the eager index fresh, like the lazy one.
        db.add("own", &["D".into(), "B".into(), 0.2.into()]);
        assert_eq!(db.probe(pred, 1, &Value::str("B")).unwrap().len(), 3);
        // A probe for an unseen value hits the index and returns empty.
        assert_eq!(db.probe(pred, 1, &Value::str("Z")), Some(&[] as &[FactId]));
    }

    #[test]
    fn composite_index_probes_all_bound_positions_at_once() {
        let mut db = Database::new();
        let e0 = db.add("edge", &["A".into(), "B".into()]);
        db.add("edge", &["A".into(), "C".into()]);
        db.add("edge", &["B".into(), "B".into()]);
        let e3 = db.add("edge", &["A".into(), "B".into(), 1i64.into()]);
        let pred = Symbol::new("edge");
        assert!(!db.has_composite_index(pred, &[0, 1]));
        db.ensure_composite_index(pred, &[0, 1]);
        assert!(db.has_composite_index(pred, &[0, 1]));
        // Longer facts with the same prefix share the key; postings stay
        // in insertion order.
        let hits = db
            .probe_composite(pred, &[0, 1], &[Value::str("A"), Value::str("B")])
            .unwrap();
        assert_eq!(hits, &[e0, e3]);
        // Incremental maintenance after the eager build.
        let e4 = db.add("edge", &["A".into(), "B".into(), 2i64.into()]);
        let hits = db
            .probe_composite(pred, &[0, 1], &[Value::str("A"), Value::str("B")])
            .unwrap();
        assert_eq!(hits, &[e0, e3, e4]);
        // Unseen key: index hit, empty postings. Unbuilt signature: None.
        assert_eq!(
            db.probe_composite(pred, &[0, 1], &[Value::str("Z"), Value::str("Z")]),
            Some(&[] as &[FactId])
        );
        assert!(db.probe_composite(pred, &[1], &[Value::str("B")]).is_none());
    }

    #[test]
    fn composite_index_skips_facts_missing_an_indexed_position() {
        let mut db = Database::new();
        db.add("p", &["A".into()]); // too short for position 1
        let long = db.add("p", &["A".into(), "B".into()]);
        let pred = Symbol::new("p");
        db.ensure_composite_index(pred, &[0, 1]);
        let hits = db
            .probe_composite(pred, &[0, 1], &[Value::str("A"), Value::str("B")])
            .unwrap();
        assert_eq!(hits, &[long]);
    }

    /// Regression test for the foreign-predicate insert bug: inserting a
    /// fact must maintain only its *own* predicate's indexes. With indexes
    /// on `own` only, inserting `company` facts must build zero postings.
    #[test]
    fn insert_never_touches_foreign_predicate_indexes() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.ensure_index(Symbol::new("own"), 0);
        db.ensure_composite_index(Symbol::new("own"), &[0, 1]);
        let after_build = db.postings_built();
        assert_eq!(after_build, 2);
        // Foreign-predicate inserts: no postings anywhere.
        db.add("company", &["A".into()]);
        db.add("company", &["B".into()]);
        assert_eq!(db.postings_built(), after_build);
        // Own-predicate insert: exactly one posting per index of `own`.
        db.add("own", &["B".into(), "C".into(), 0.4.into()]);
        assert_eq!(db.postings_built(), after_build + 2);
    }

    #[test]
    fn find_matching_treats_none_as_wildcard() {
        let mut db = Database::new();
        db.add("risk", &["C".into(), 11i64.into()]);
        let pred = Symbol::new("risk");
        assert!(db
            .find_matching(pred, &[Some(Value::str("C")), None])
            .is_some());
        assert!(db
            .find_matching(pred, &[Some(Value::str("C")), Some(Value::Int(11))])
            .is_some());
        assert!(db
            .find_matching(pred, &[Some(Value::str("X")), None])
            .is_none());
        // Arity mismatch never matches.
        assert!(db.find_matching(pred, &[None]).is_none());
    }

    #[test]
    fn find_matching_metered_agrees_with_scan_and_reports_the_path() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["A".into(), "C".into(), 0.3.into()]);
        db.add("own", &["B".into(), "C".into(), 0.2.into()]);
        let pred = Symbol::new("own");
        let pattern = [Some(Value::str("A")), None, None];
        // No index yet: scan path.
        let (scan_hit, used) = db.find_matching_metered(pred, &pattern);
        assert!(!used);
        db.ensure_index(pred, 0);
        let (probe_hit, used) = db.find_matching_metered(pred, &pattern);
        assert!(used);
        assert_eq!(scan_hit, probe_hit);
        // The widest applicable index wins; result unchanged.
        db.ensure_composite_index(pred, &[0, 1]);
        let full = [Some(Value::str("A")), Some(Value::str("C")), None];
        let (hit, used) = db.find_matching_metered(pred, &full);
        assert!(used);
        assert_eq!(hit, db.find_matching(pred, &full));
        // Deactivated facts are invisible on both paths.
        let target = hit.unwrap();
        db.deactivate(target);
        let (hit, used) = db.find_matching_metered(pred, &full);
        assert!(used);
        assert_eq!(hit, None);
    }

    #[test]
    fn active_count_tracks_deactivation_per_predicate() {
        let mut db = Database::new();
        let a = db.add("p", &[1i64.into()]);
        db.add("p", &[2i64.into()]);
        db.add("q", &[3i64.into()]);
        let p = Symbol::new("p");
        let q = Symbol::new("q");
        assert_eq!(db.active_count(p), 2);
        assert_eq!(db.active_count(q), 1);
        db.deactivate(a);
        db.deactivate(a); // idempotent
        assert_eq!(db.active_count(p), 1);
        assert_eq!(db.active_count(q), 1);
        assert_eq!(db.facts_of(p).len(), 2, "facts_of still counts inactive");
        assert_eq!(db.active_count(Symbol::new("zzz")), 0);
    }

    #[test]
    fn lookup_and_contains_agree() {
        let mut db = Database::new();
        let f = Fact::new("company", vec![Value::str("A")]);
        assert!(!db.contains(&f));
        let (id, fresh) = db.insert(f.clone());
        assert!(fresh);
        assert_eq!(db.lookup(&f), Some(id));
        assert!(db.contains(&f));
    }

    #[test]
    fn approx_bytes_grows_only_on_fresh_inserts() {
        let mut db = Database::new();
        assert_eq!(db.approx_bytes(), 0);
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        let after_one = db.approx_bytes();
        assert!(after_one > 0);
        // Duplicate insert: no growth.
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        assert_eq!(db.approx_bytes(), after_one);
        db.add("own", &["A".into(), "C".into(), 0.4.into()]);
        assert!(db.approx_bytes() > after_one);

        // The estimate must not depend on whether an index was built
        // before or after its facts were inserted: eager builds charge
        // their postings exactly like incremental maintenance does.
        let facts = [
            Fact::new("own", vec!["A".into(), "B".into(), 0.6.into()]),
            Fact::new("own", vec!["A".into(), "C".into(), 0.4.into()]),
            Fact::new("company", vec!["A".into()]),
        ];
        let pred = Symbol::new("own");
        let mut index_first = Database::new();
        index_first.ensure_index(pred, 0);
        index_first.ensure_composite_index(pred, &[0, 1]);
        for f in &facts {
            index_first.insert(f.clone());
        }
        let mut facts_first = Database::new();
        for f in &facts {
            facts_first.insert(f.clone());
        }
        facts_first.ensure_index(pred, 0);
        facts_first.ensure_composite_index(pred, &[0, 1]);
        assert_eq!(index_first.approx_bytes(), facts_first.approx_bytes());
        assert_eq!(index_first.postings_built(), facts_first.postings_built());
        // And the indexed store is strictly heavier than an unindexed one.
        let plain: Database = facts.iter().cloned().collect();
        assert!(facts_first.approx_bytes() > plain.approx_bytes());
    }

    #[test]
    fn restore_credit_absorbs_eager_rebuild_charges() {
        // Simulates a checkpoint restore: the recorded estimate includes
        // posting bytes; the replayed store has no indexes yet. The eager
        // rebuild must consume the restored credit instead of charging the
        // postings a second time.
        let mut live = Database::new();
        live.ensure_index(Symbol::new("own"), 0);
        live.add("own", &["A".into(), "B".into(), 0.6.into()]);
        live.add("own", &["B".into(), "C".into(), 0.4.into()]);
        let recorded = live.approx_bytes();

        let mut restored = Database::new();
        restored.add("own", &["A".into(), "B".into(), 0.6.into()]);
        restored.add("own", &["B".into(), "C".into(), 0.4.into()]);
        assert!(restored.approx_bytes() < recorded);
        restored.restore_approx_bytes(recorded);
        assert_eq!(restored.approx_bytes(), recorded);
        restored.ensure_index(Symbol::new("own"), 0);
        assert_eq!(
            restored.approx_bytes(),
            recorded,
            "rebuild must not double-charge restored postings"
        );
        // Fresh postings beyond the credit are charged normally.
        restored.add("own", &["C".into(), "D".into(), 0.2.into()]);
        live.add("own", &["C".into(), "D".into(), 0.2.into()]);
        assert_eq!(restored.approx_bytes(), live.approx_bytes());
    }

    #[test]
    fn from_iterator_collects() {
        let db: Database = vec![
            Fact::new("p", vec![Value::Int(1)]),
            Fact::new("p", vec![Value::Int(1)]),
            Fact::new("p", vec![Value::Int(2)]),
        ]
        .into_iter()
        .collect();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn retract_maintains_postings_in_place() {
        let mut db = Database::new();
        let a = db.add("own", &["A".into(), "B".into()]);
        let b = db.add("own", &["A".into(), "C".into()]);
        db.ensure_composite_index(Symbol::new("own"), &[0]);
        let built = db.postings_built();
        db.retract(a);
        // The posting list lost exactly the retracted id, without a
        // rebuild (the monotone built-counter is unchanged).
        let hits = db
            .probe_composite(Symbol::new("own"), &[0], &["A".into()])
            .unwrap();
        assert_eq!(hits, &[b]);
        assert_eq!(db.postings_built(), built);
        assert!(!db.is_active(a));
        assert!(db.is_active(b));
        assert_eq!(db.active_count(Symbol::new("own")), 1);
    }

    #[test]
    fn retract_frees_the_value_for_fresh_reinsertion() {
        let mut db = Database::new();
        let fact = Fact::new("p", vec![Value::Int(7)]);
        let a = db.add("p", &[Value::Int(7)]);
        db.retract(a);
        assert_eq!(db.lookup(&fact), None);
        assert!(db
            .find_matching(Symbol::new("p"), &[Some(Value::Int(7))])
            .is_none());
        let (b, fresh) = db.insert(fact.clone());
        assert!(fresh, "a retracted value re-inserts as a fresh fact");
        assert_ne!(a, b);
        assert_eq!(db.lookup(&fact), Some(b));
        assert!(db.is_active(b));
        // Retracting the stale slot again must not unclaim the fresh id.
        db.retract(a);
        assert_eq!(db.lookup(&fact), Some(b));
    }
}
