//! The company-control application (Sec. 5) on the representative
//! scenario of Fig. 12/13: who controls whom in a cluster of financial
//! institutions, with explanation queries for derived control edges —
//! including the paper's Q_e = {Control("B","D")} and the Fig. 15
//! joint-control example.
//!
//! Run with: `cargo run --example company_control`

use ekg_explain::finkg::apps::control;
use ekg_explain::finkg::scenario;
use ekg_explain::prelude::*;

fn main() {
    let program = control::program();
    let pipeline = ExplanationPipeline::builder(program.clone(), control::GOAL)
        .with_glossary(&control::glossary())
        .build()
        .expect("pipeline builds");

    // --- The Fig. 12 cluster ---
    let outcome = ChaseSession::new(&program)
        .run(scenario::database())
        .expect("chase terminates");
    println!("Derived control edges (auto-control omitted):");
    for (id, fact) in outcome.facts_of("control") {
        if outcome.graph.is_derived(id) && fact.values[0] != fact.values[1] {
            println!("  {fact}");
        }
    }

    let q = Fact::new("control", vec!["B".into(), "D".into()]);
    let e = pipeline.explain(&outcome, &q).expect("explainable");
    println!(
        "\nQ_e = {{Control(\"B\",\"D\")}} via {:?}:\n{}",
        e.paths, e.text
    );

    // --- The Fig. 15 joint-control example ---
    let mut db = Database::new();
    for c in ["Irish Bank", "Fondo Italiano", "FrenchPLC", "Madrid Credit"] {
        db.add("company", &[c.into()]);
    }
    db.add(
        "own",
        &["Irish Bank".into(), "Fondo Italiano".into(), 0.83.into()],
    );
    db.add(
        "own",
        &["Irish Bank".into(), "FrenchPLC".into(), 0.54.into()],
    );
    db.add(
        "own",
        &["FrenchPLC".into(), "Madrid Credit".into(), 0.21.into()],
    );
    db.add(
        "own",
        &["Fondo Italiano".into(), "Madrid Credit".into(), 0.36.into()],
    );
    let outcome = ChaseSession::new(&program)
        .run(db)
        .expect("chase terminates");
    let q = Fact::new("control", vec!["Irish Bank".into(), "Madrid Credit".into()]);
    let e = pipeline.explain(&outcome, &q).expect("explainable");
    println!(
        "\nQ_e = {{Control(\"Irish Bank\",\"Madrid Credit\")}} via {:?}:\n{}",
        e.paths, e.text
    );
}
