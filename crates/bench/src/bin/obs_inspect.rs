//! Span-profile viewer: a self-time flamegraph table and the top-K hot
//! rules, from a Chrome trace file, a freshly collected run, or a
//! slow-query log.
//!
//! With a path argument, loads a `trace_event` JSON file (as exported by
//! `vadalog::obs::chrome::to_chrome_trace`, e.g. the CI artifact or the
//! file `fig18_performance --trace` writes). With `--slow PATH`, loads a
//! `/debug/slow` document (as served by `finkg-serve`, e.g. `curl -s
//! localhost:7878/debug/slow > slow.json`) and profiles each captured
//! slow goal's span tree separately. Without arguments, runs the finkg
//! control scenario with the ring collector installed and profiles that.
//!
//! Usage:
//! `cargo run --release -p bench --bin obs_inspect [-- TRACE.json]`
//! `cargo run --release -p bench --bin obs_inspect -- --slow SLOW.json`

use std::collections::HashMap;
use std::sync::Arc;
use vadalog::obs::json::{self, JsonValue};
use vadalog::obs::span::{self, RingCollector};
use vadalog::ChaseSession;

const TOP_K: usize = 10;

/// One span, reduced to what the profile needs.
struct Node {
    id: u64,
    parent: Option<u64>,
    name: String,
    /// The `rule` field, when the span carries one.
    rule: Option<String>,
    dur_ns: u64,
}

/// Per-name aggregate of the profile table.
#[derive(Default)]
struct Row {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

fn collect_live() -> Vec<Node> {
    let ring = Arc::new(RingCollector::new(1 << 20));
    span::install(ring.clone());
    let out = ChaseSession::new(&finkg::apps::control::program())
        .run(finkg::scenario::database())
        .expect("chase");
    let pipeline = explain::ExplanationPipeline::builder(
        finkg::apps::control::program(),
        finkg::apps::control::GOAL,
    )
    .build()
    .expect("pipeline");
    drop((out, pipeline));
    span::uninstall();
    ring.drain()
        .into_iter()
        .map(|s| Node {
            id: s.id,
            parent: s.parent,
            name: s.name.to_string(),
            rule: s
                .fields
                .iter()
                .find_map(|(k, v)| (*k == "rule").then(|| v.to_string())),
            dur_ns: s.duration_ns,
        })
        .collect()
}

/// Parses one Chrome `trace_event` complete event (`"ph":"X"`) into a
/// [`Node`].
fn node_from_event(e: &JsonValue) -> Node {
    let args = e.get("args");
    Node {
        id: args
            .and_then(|a| a.get("span_id"))
            .and_then(JsonValue::as_u64)
            .expect("complete event without args.span_id"),
        parent: args
            .and_then(|a| a.get("parent_id"))
            .and_then(JsonValue::as_u64),
        name: e
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string(),
        rule: args
            .and_then(|a| a.get("rule"))
            .and_then(JsonValue::as_str)
            .map(str::to_string),
        // dur is microseconds with fractional precision.
        dur_ns: (e.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0) * 1e3) as u64,
    }
}

fn load_trace(path: &str) -> Vec<Node> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    let events = doc
        .as_arr()
        .unwrap_or_else(|| panic!("{path}: expected a trace_event array"));
    events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .map(node_from_event)
        .collect()
}

/// One captured slow goal from a `/debug/slow` document.
struct SlowEntry {
    goal: String,
    elapsed_ms: f64,
    trace_id: Option<String>,
    nodes: Vec<Node>,
}

fn load_slow(path: &str) -> Vec<SlowEntry> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    let slow = doc
        .get("slow")
        .and_then(JsonValue::as_arr)
        .unwrap_or_else(|| panic!("{path}: expected a /debug/slow document with a 'slow' array"));
    slow.iter()
        .map(|entry| SlowEntry {
            goal: entry
                .get("goal")
                .and_then(JsonValue::as_str)
                .unwrap_or("?")
                .to_string(),
            elapsed_ms: entry
                .get("elapsed_ms")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            trace_id: entry
                .get("trace_id")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            nodes: entry
                .get("spans")
                .and_then(JsonValue::as_arr)
                .map(|events| {
                    events
                        .iter()
                        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
                        .map(node_from_event)
                        .collect()
                })
                .unwrap_or_default(),
        })
        .collect()
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Prints the self-time profile table for one span set.
fn profile(nodes: &[Node]) {
    // Self time = a span's duration minus its direct children's. A child
    // can outlive its parent only through a leaked guard, which the
    // engine's scoped spans never do; clamp anyway.
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for n in nodes {
        if let Some(p) = n.parent {
            *child_ns.entry(p).or_default() += n.dur_ns;
        }
    }
    let mut by_name: HashMap<&str, Row> = HashMap::new();
    let mut total_self = 0u64;
    for n in nodes {
        let row = by_name.entry(&n.name).or_default();
        let self_ns = n
            .dur_ns
            .saturating_sub(child_ns.get(&n.id).copied().unwrap_or(0));
        row.count += 1;
        row.total_ns += n.dur_ns;
        row.self_ns += self_ns;
        total_self += self_ns;
    }
    let mut rows: Vec<(&str, Row)> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));

    println!("self-time profile ({} spans)", nodes.len());
    println!(
        "{:<24} {:>8} {:>12} {:>12} {:>7}",
        "span", "count", "total_ms", "self_ms", "self%"
    );
    for (name, row) in &rows {
        println!(
            "{:<24} {:>8} {:>12.3} {:>12.3} {:>6.1}%",
            name,
            row.count,
            ms(row.total_ns),
            ms(row.self_ns),
            if total_self > 0 {
                row.self_ns as f64 * 100.0 / total_self as f64
            } else {
                0.0
            },
        );
    }
}

/// Prints the top-K hot rules (`chase.rule` spans aggregated by their
/// `rule` field).
fn hot_rules(nodes: &[Node]) {
    let mut by_rule: HashMap<&str, Row> = HashMap::new();
    for n in nodes.iter().filter(|n| n.name == "chase.rule") {
        let Some(rule) = n.rule.as_deref() else {
            continue;
        };
        let row = by_rule.entry(rule).or_default();
        row.count += 1;
        row.total_ns += n.dur_ns;
    }
    if by_rule.is_empty() {
        println!("\nno chase.rule spans with a rule field");
        return;
    }
    let mut rules: Vec<(&str, Row)> = by_rule.into_iter().collect();
    rules.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    println!(
        "\ntop {} hot rules (by commit time)",
        TOP_K.min(rules.len())
    );
    println!("{:<24} {:>8} {:>12}", "rule", "commits", "total_ms");
    for (rule, row) in rules.iter().take(TOP_K) {
        println!("{:<24} {:>8} {:>12.3}", rule, row.count, ms(row.total_ns));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--slow") {
        let path = args
            .get(1)
            .unwrap_or_else(|| panic!("--slow requires a path to a /debug/slow JSON document"));
        let entries = load_slow(path);
        if entries.is_empty() {
            println!("no slow queries captured in {path}");
            return;
        }
        println!("{} slow quer(ies) in {path}", entries.len());
        for (i, entry) in entries.iter().enumerate() {
            println!(
                "\n[{i}] {} ({:.1}ms{})",
                entry.goal,
                entry.elapsed_ms,
                match &entry.trace_id {
                    Some(t) => format!(", trace {t}"),
                    None => String::new(),
                }
            );
            if entry.nodes.is_empty() {
                println!("no spans captured");
            } else {
                profile(&entry.nodes);
            }
        }
        return;
    }

    let nodes = match args.first() {
        Some(path) => load_trace(path),
        None => collect_live(),
    };
    if nodes.is_empty() {
        println!("no spans to profile");
        return;
    }
    profile(&nodes);
    hot_rules(&nodes);
}
