//! The domain glossary: a data dictionary mapping predicates to natural
//! language (Sec. 4.2, Fig. 7 and Fig. 11 of the paper).
//!
//! Each entry describes one predicate with a sentence pattern whose
//! placeholders `<name>` correspond positionally to the predicate's
//! arguments, plus an optional value format per argument (shares rendered
//! as percentages, amounts as millions of euros, ...).

use std::collections::HashMap;
use vadalog::{Symbol, Value};

/// How to render a constant of a glossary parameter in explanation text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ValueFormat {
    /// Default `Display` rendering (strings unquoted).
    #[default]
    Plain,
    /// Numeric value rendered as millions of euros: `11` -> `11M euros`.
    MillionsEuro,
    /// Fractional share rendered as a percentage: `0.57` -> `57%`.
    Percent,
}

impl ValueFormat {
    /// Renders `value` under this format.
    pub fn render(self, value: &Value) -> String {
        match self {
            ValueFormat::Plain => match value {
                Value::Str(s) => s.as_str().to_owned(),
                other => other.to_string(),
            },
            ValueFormat::MillionsEuro => match value.as_f64() {
                Some(x) => {
                    if x.fract() == 0.0 {
                        format!("{}M euros", x as i64)
                    } else {
                        format!("{:.1}M euros", x)
                    }
                }
                None => ValueFormat::Plain.render(value),
            },
            ValueFormat::Percent => match value.as_f64() {
                Some(x) => {
                    let pct = x * 100.0;
                    if (pct - pct.round()).abs() < 1e-9 {
                        format!("{}%", pct.round() as i64)
                    } else {
                        format!("{:.1}%", pct)
                    }
                }
                None => ValueFormat::Plain.render(value),
            },
        }
    }
}

/// One named parameter of a glossary entry.
#[derive(Clone, Debug)]
pub struct Param {
    /// The placeholder name used in the pattern (`<name>`).
    pub name: String,
    /// How constants bound to this argument are rendered.
    pub format: ValueFormat,
}

/// A glossary entry: the NL pattern of one predicate.
#[derive(Clone, Debug)]
pub struct GlossaryEntry {
    /// The described predicate.
    pub predicate: Symbol,
    /// One parameter per argument position.
    pub params: Vec<Param>,
    /// Sentence pattern with `<name>` placeholders, e.g.
    /// `"<f> is a financial institution with capital of <p>"`.
    pub pattern: String,
}

impl GlossaryEntry {
    /// Builds an entry; `params` are `(name, format)` pairs, positional.
    pub fn new(predicate: &str, params: &[(&str, ValueFormat)], pattern: &str) -> GlossaryEntry {
        GlossaryEntry {
            predicate: Symbol::new(predicate),
            params: params
                .iter()
                .map(|(n, f)| Param {
                    name: (*n).to_owned(),
                    format: *f,
                })
                .collect(),
            pattern: pattern.to_owned(),
        }
    }

    /// The arity implied by the entry.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// The domain glossary: predicate -> entry.
///
/// Missing entries are tolerated everywhere: the verbalizer falls back to
/// a generic rendering so that a partially filled data dictionary still
/// yields complete (if less fluent) explanations.
#[derive(Clone, Debug, Default)]
pub struct DomainGlossary {
    entries: HashMap<Symbol, GlossaryEntry>,
}

impl DomainGlossary {
    /// An empty glossary.
    pub fn new() -> DomainGlossary {
        DomainGlossary::default()
    }

    /// Adds (or replaces) an entry.
    pub fn insert(&mut self, entry: GlossaryEntry) -> &mut Self {
        self.entries.insert(entry.predicate, entry);
        self
    }

    /// Builder-style insertion.
    pub fn with(mut self, entry: GlossaryEntry) -> Self {
        self.insert(entry);
        self
    }

    /// The entry for `predicate`, if present.
    pub fn entry(&self, predicate: Symbol) -> Option<&GlossaryEntry> {
        self.entries.get(&predicate)
    }

    /// The format of argument `position` of `predicate` (Plain if the
    /// glossary has no entry).
    pub fn format_of(&self, predicate: Symbol, position: usize) -> ValueFormat {
        self.entry(predicate)
            .and_then(|e| e.params.get(position))
            .map(|p| p.format)
            .unwrap_or_default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the glossary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_formats_render_as_in_the_paper() {
        assert_eq!(
            ValueFormat::MillionsEuro.render(&Value::Int(11)),
            "11M euros"
        );
        assert_eq!(
            ValueFormat::MillionsEuro.render(&Value::Float(7.0)),
            "7M euros"
        );
        assert_eq!(ValueFormat::Percent.render(&Value::Float(0.57)), "57%");
        assert_eq!(ValueFormat::Percent.render(&Value::Float(0.125)), "12.5%");
        assert_eq!(
            ValueFormat::Plain.render(&Value::str("Irish Bank")),
            "Irish Bank"
        );
    }

    #[test]
    fn non_numeric_values_degrade_to_plain() {
        assert_eq!(ValueFormat::MillionsEuro.render(&Value::str("B")), "B");
        assert_eq!(ValueFormat::Percent.render(&Value::Bool(true)), "true");
    }

    #[test]
    fn glossary_lookup_and_formats() {
        let g = DomainGlossary::new().with(GlossaryEntry::new(
            "has_capital",
            &[("f", ValueFormat::Plain), ("p", ValueFormat::MillionsEuro)],
            "<f> is a financial institution with capital of <p>",
        ));
        let pred = Symbol::new("has_capital");
        assert!(g.entry(pred).is_some());
        assert_eq!(g.format_of(pred, 1), ValueFormat::MillionsEuro);
        assert_eq!(g.format_of(pred, 0), ValueFormat::Plain);
        assert_eq!(g.format_of(Symbol::new("missing"), 0), ValueFormat::Plain);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn insert_replaces_existing_entry() {
        let mut g = DomainGlossary::new();
        g.insert(GlossaryEntry::new(
            "p",
            &[("x", ValueFormat::Plain)],
            "old <x>",
        ));
        g.insert(GlossaryEntry::new(
            "p",
            &[("x", ValueFormat::Plain)],
            "new <x>",
        ));
        assert_eq!(g.len(), 1);
        assert_eq!(g.entry(Symbol::new("p")).unwrap().pattern, "new <x>");
    }
}

/// Error from parsing a glossary text file.
#[derive(Clone, PartialEq, Debug)]
pub struct GlossaryParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for GlossaryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "glossary line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for GlossaryParseError {}

impl ValueFormat {
    /// Surface name used by the glossary file format.
    pub fn name(self) -> &'static str {
        match self {
            ValueFormat::Plain => "plain",
            ValueFormat::MillionsEuro => "meuro",
            ValueFormat::Percent => "percent",
        }
    }

    /// Parses a surface name.
    pub fn from_name(name: &str) -> Option<ValueFormat> {
        match name {
            "plain" => Some(ValueFormat::Plain),
            "meuro" => Some(ValueFormat::MillionsEuro),
            "percent" => Some(ValueFormat::Percent),
            _ => None,
        }
    }
}

impl DomainGlossary {
    /// Parses a data-dictionary text file: one entry per line,
    ///
    /// ```text
    /// # the stress-test dictionary
    /// has_capital(f, p:meuro): <f> is a financial institution with capital of <p>
    /// own(x, y, s:percent):    <x> owns <s> shares of <y>
    /// ```
    ///
    /// Parameter formats default to `plain`; `percent` renders 0.57 as
    /// "57%", `meuro` renders 11 as "11M euros". Lines starting with `#`
    /// and blank lines are ignored.
    pub fn parse(text: &str) -> Result<DomainGlossary, GlossaryParseError> {
        let mut glossary = DomainGlossary::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: &str| GlossaryParseError {
                line: line_no,
                message: message.to_owned(),
            };
            let open = line.find('(').ok_or_else(|| err("expected `(`"))?;
            let close = line.find(')').ok_or_else(|| err("expected `)`"))?;
            if close < open {
                return Err(err("`)` before `(`"));
            }
            let predicate = line[..open].trim();
            if predicate.is_empty() {
                return Err(err("missing predicate name"));
            }
            let params_text = &line[open + 1..close];
            let rest = line[close + 1..].trim_start();
            let pattern = rest
                .strip_prefix(':')
                .ok_or_else(|| err("expected `:` after the parameter list"))?
                .trim();
            if pattern.is_empty() {
                return Err(err("empty pattern"));
            }
            let mut params: Vec<(String, ValueFormat)> = Vec::new();
            if !params_text.trim().is_empty() {
                for p in params_text.split(',') {
                    let p = p.trim();
                    let (name, format) = match p.split_once(':') {
                        None => (p, ValueFormat::Plain),
                        Some((n, f)) => (
                            n.trim(),
                            ValueFormat::from_name(f.trim())
                                .ok_or_else(|| err(&format!("unknown format `{}`", f.trim())))?,
                        ),
                    };
                    if name.is_empty() {
                        return Err(err("empty parameter name"));
                    }
                    params.push((name.to_owned(), format));
                }
            }
            let param_refs: Vec<(&str, ValueFormat)> =
                params.iter().map(|(n, f)| (n.as_str(), *f)).collect();
            glossary.insert(GlossaryEntry::new(predicate, &param_refs, pattern));
        }
        Ok(glossary)
    }

    /// Renders the glossary back into the text file format (entries in
    /// predicate-name order).
    pub fn to_text(&self) -> String {
        let mut entries: Vec<&GlossaryEntry> = self.entries.values().collect();
        entries.sort_by_key(|e| e.predicate.as_str());
        let mut out = String::new();
        for e in entries {
            let params: Vec<String> = e
                .params
                .iter()
                .map(|p| {
                    if p.format == ValueFormat::Plain {
                        p.name.clone()
                    } else {
                        format!("{}:{}", p.name, p.format.name())
                    }
                })
                .collect();
            out.push_str(&format!(
                "{}({}): {}\n",
                e.predicate,
                params.join(", "),
                e.pattern
            ));
        }
        out
    }
}

#[cfg(test)]
mod text_format_tests {
    use super::*;

    const SAMPLE: &str = r#"
        # stress test dictionary
        has_capital(f, p:meuro): <f> is a financial institution with capital of <p>
        own(x, y, s:percent): <x> owns <s> shares of <y>
        default(f): <f> is in default
    "#;

    #[test]
    fn parse_reads_entries_and_formats() {
        let g = DomainGlossary::parse(SAMPLE).unwrap();
        assert_eq!(g.len(), 3);
        let cap = g.entry(Symbol::new("has_capital")).unwrap();
        assert_eq!(cap.params[1].format, ValueFormat::MillionsEuro);
        assert_eq!(g.format_of(Symbol::new("own"), 2), ValueFormat::Percent);
        assert_eq!(g.format_of(Symbol::new("own"), 0), ValueFormat::Plain);
    }

    #[test]
    fn to_text_round_trips() {
        let g = DomainGlossary::parse(SAMPLE).unwrap();
        let text = g.to_text();
        let g2 = DomainGlossary::parse(&text).unwrap();
        assert_eq!(g2.len(), g.len());
        assert_eq!(g2.to_text(), text);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = DomainGlossary::parse("own(x, y, s:bogus): <x>").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("bogus"));
        let err = DomainGlossary::parse("\n\nnoparens: text").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn zero_arity_entries_parse() {
        let g = DomainGlossary::parse("alarm(): the alarm is raised").unwrap();
        assert_eq!(g.entry(Symbol::new("alarm")).unwrap().arity(), 0);
    }

    #[test]
    fn missing_colon_is_rejected() {
        assert!(DomainGlossary::parse("own(x) pattern without colon").is_err());
    }
}
