//! Synthetic financial data generators.
//!
//! Real supervisory data (individual shares and loans) is confidential;
//! like the paper's own evaluation, every experiment here runs on
//! artificial data. Two families of generators are provided:
//!
//! * *bundles* — deterministic constructions that embed `count`
//!   independent proofs of an exact chase-step length (the workloads of
//!   Fig. 17 and Fig. 18: "ten distinct sampled proofs with equal
//!   length");
//! * *random networks* — seeded ownership/debt graphs for throughput
//!   benchmarks and property tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog::{ChaseOutcome, Database, DerivationPolicy, Fact, FactId, Symbol};

/// A generated workload: the extensional database plus the target facts
/// whose proofs have the requested length.
#[derive(Clone, Debug)]
pub struct Bundle {
    /// The extensional database.
    pub database: Database,
    /// The facts to explain (one per embedded proof).
    pub targets: Vec<Fact>,
}

/// Builds `count` disjoint ownership chains, each yielding a proof of
/// exactly `steps` chase steps for `control(root_i, leaf_i)`.
///
/// A chain of `k` majority links produces τ = [σ1, σ3, ..., σ3] of length
/// `k`. No `company` facts are emitted so the self-control rule σ2 stays
/// silent and proof lengths are exact.
pub fn control_bundle(steps: usize, count: usize, seed: u64) -> Bundle {
    assert!(steps >= 1, "a proof needs at least one chase step");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0F_FEE);
    let mut db = Database::new();
    let mut targets = Vec::with_capacity(count);
    for c in 0..count {
        let name = |i: usize| format!("E{c}_{i}");
        for i in 0..steps {
            let share = rng.random_range(0.51..0.99f64);
            let share = (share * 100.0).round() / 100.0;
            db.add(
                "own",
                &[
                    name(i).as_str().into(),
                    name(i + 1).as_str().into(),
                    share.into(),
                ],
            );
        }
        targets.push(Fact::new(
            "control",
            vec![name(0).as_str().into(), name(steps).as_str().into()],
        ));
    }
    Bundle {
        database: db,
        targets,
    }
}

/// Like [`control_bundle`] but every link is held jointly by the parent
/// and a majority-owned intermediary (0.3 + 0.3), exercising the dashed
/// aggregation variants. Each hop costs two chase steps, plus self-control
/// side steps via `company` facts.
pub fn control_bundle_aggregated(hops: usize, count: usize, seed: u64) -> Bundle {
    assert!(hops >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA66);
    let mut db = Database::new();
    let mut targets = Vec::with_capacity(count);
    for c in 0..count {
        let name = |i: usize| format!("J{c}_{i}");
        let helper = |i: usize| format!("H{c}_{i}");
        db.add("company", &[name(0).as_str().into()]);
        for i in 0..hops {
            let s1 = (rng.random_range(0.26..0.45f64) * 100.0).round() / 100.0;
            let s2 = (rng.random_range((0.51 - s1).max(0.06)..0.45) * 100.0).round() / 100.0;
            db.add("company", &[name(i + 1).as_str().into()]);
            db.add(
                "own",
                &[
                    name(i).as_str().into(),
                    helper(i + 1).as_str().into(),
                    0.9.into(),
                ],
            );
            db.add(
                "own",
                &[
                    helper(i + 1).as_str().into(),
                    name(i + 1).as_str().into(),
                    s1.into(),
                ],
            );
            db.add(
                "own",
                &[
                    name(i).as_str().into(),
                    name(i + 1).as_str().into(),
                    s2.into(),
                ],
            );
        }
        targets.push(Fact::new(
            "control",
            vec![name(0).as_str().into(), name(hops).as_str().into()],
        ));
    }
    Bundle {
        database: db,
        targets,
    }
}

/// Builds `count` disjoint default cascades for the two-channel stress
/// test, alternating channels along each chain.
///
/// With cascade depth `d`, the proof of `default(e_d)` has `2d + 1` chase
/// steps and the proof of `risk(e_d, ..)` has `2d` — odd `steps` target a
/// default, even `steps` target a risk fact.
pub fn stress_bundle(steps: usize, count: usize, seed: u64) -> Bundle {
    assert!(steps >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57E55);
    let mut db = Database::new();
    let mut targets = Vec::with_capacity(count);
    let default_target = steps % 2 == 1;
    let depth = if default_target {
        (steps - 1) / 2
    } else {
        steps / 2
    };
    for c in 0..count {
        let name = |i: usize| format!("S{c}_{i}");
        let cap0 = rng.random_range(2..10i64);
        db.add("has_capital", &[name(0).as_str().into(), cap0.into()]);
        db.add(
            "shock",
            &[
                name(0).as_str().into(),
                (cap0 + rng.random_range(1..10i64)).into(),
            ],
        );
        let chain_end = depth.max(1);
        let mut exposures: Vec<(String, i64)> = Vec::new();
        for i in 0..chain_end {
            let cap = rng.random_range(2..10i64);
            let debt = cap + rng.random_range(1..8i64);
            let channel = if i % 2 == 0 {
                "long_term_debts"
            } else {
                "short_term_debts"
            };
            db.add(
                channel,
                &[
                    name(i).as_str().into(),
                    name(i + 1).as_str().into(),
                    debt.into(),
                ],
            );
            db.add("has_capital", &[name(i + 1).as_str().into(), cap.into()]);
            exposures.push((name(i + 1), debt));
        }
        if default_target {
            targets.push(Fact::new("default", vec![name(depth).as_str().into()]));
        } else {
            let (entity, debt) = exposures[depth - 1].clone();
            let channel = if (depth - 1) % 2 == 0 {
                "long"
            } else {
                "short"
            };
            targets.push(Fact::new(
                "risk",
                vec![entity.as_str().into(), debt.into(), channel.into()],
            ));
        }
    }
    Bundle {
        database: db,
        targets,
    }
}

/// A seeded random ownership network: `n` companies, each with up to
/// `max_out` outgoing stakes towards higher-numbered companies (acyclic,
/// so control chains of varied depth emerge).
pub fn random_ownership(n: usize, max_out: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let name = |i: usize| format!("C{i}");
    for i in 0..n {
        db.add("company", &[name(i).as_str().into()]);
    }
    for i in 0..n.saturating_sub(1) {
        let out = rng.random_range(0..=max_out);
        for _ in 0..out {
            let j = rng.random_range(i + 1..n);
            let share = (rng.random_range(0.05..0.95f64) * 100.0).round() / 100.0;
            db.add(
                "own",
                &[
                    name(i).as_str().into(),
                    name(j).as_str().into(),
                    share.into(),
                ],
            );
        }
    }
    db
}

/// A seeded random sanctions-screening workload: the
/// [`random_ownership`] network plus a `sanctioned` designation on every
/// `every`-th company, for the negation-heavy sanctions application.
pub fn random_sanctions(n: usize, max_out: usize, every: usize, seed: u64) -> Database {
    assert!(every >= 1, "a sanctions workload needs a designation rate");
    let mut db = random_ownership(n, max_out, seed);
    for i in (0..n).step_by(every) {
        db.add("sanctioned", &[format!("C{i}").as_str().into()]);
    }
    db
}

/// A seeded random debt network with `shocks` initial shocks, for chase
/// throughput and robustness tests.
pub fn random_debt_network(n: usize, max_out: usize, shocks: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let name = |i: usize| format!("B{i}");
    for i in 0..n {
        let cap = rng.random_range(1..20i64);
        db.add("has_capital", &[name(i).as_str().into(), cap.into()]);
    }
    for i in 0..n.saturating_sub(1) {
        let out = rng.random_range(0..=max_out);
        for _ in 0..out {
            let j = rng.random_range(i + 1..n);
            let v = rng.random_range(1..15i64);
            let channel = if rng.random_bool(0.5) {
                "long_term_debts"
            } else {
                "short_term_debts"
            };
            db.add(
                channel,
                &[name(i).as_str().into(), name(j).as_str().into(), v.into()],
            );
        }
    }
    for s in 0..shocks.min(n) {
        db.add(
            "shock",
            &[name(s).as_str().into(), rng.random_range(10..40i64).into()],
        );
    }
    db
}

/// Derived facts of `goal` whose (richest-policy) proof has exactly
/// `steps` chase steps.
pub fn proofs_with_steps(outcome: &ChaseOutcome, goal: &str, steps: usize) -> Vec<FactId> {
    let goal = Symbol::new(goal);
    outcome
        .database
        .facts_of(goal)
        .iter()
        .copied()
        .filter(|&id| outcome.graph.is_derived(id))
        .filter(|&id| {
            let proof = outcome.graph.proof(id, DerivationPolicy::Richest);
            proof.linearize(&outcome.graph).len() == steps
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{control, stress};
    use vadalog::ChaseSession;

    #[test]
    fn control_bundle_has_exact_proof_lengths() {
        for steps in [1usize, 3, 6, 12] {
            let bundle = control_bundle(steps, 3, 42);
            let out = ChaseSession::new(&control::program())
                .run(bundle.database)
                .unwrap();
            for target in &bundle.targets {
                let id = out
                    .lookup(target)
                    .unwrap_or_else(|| panic!("{target} derived"));
                let tau = out
                    .graph
                    .proof(id, DerivationPolicy::Richest)
                    .linearize(&out.graph);
                assert_eq!(tau.len(), steps, "target {target}");
            }
        }
    }

    #[test]
    fn aggregated_control_bundle_derives_targets() {
        let bundle = control_bundle_aggregated(3, 2, 7);
        let out = ChaseSession::new(&control::program())
            .run(bundle.database)
            .unwrap();
        for target in &bundle.targets {
            assert!(out.lookup(target).is_some(), "{target} not derived");
        }
    }

    #[test]
    fn stress_bundle_odd_steps_target_defaults() {
        for steps in [1usize, 3, 5, 9] {
            let bundle = stress_bundle(steps, 4, 11);
            let out = ChaseSession::new(&stress::program())
                .run(bundle.database)
                .unwrap();
            for target in &bundle.targets {
                let id = out
                    .lookup(target)
                    .unwrap_or_else(|| panic!("{target} derived"));
                let tau = out
                    .graph
                    .proof(id, DerivationPolicy::Richest)
                    .linearize(&out.graph);
                assert_eq!(tau.len(), steps, "target {target}");
            }
        }
    }

    #[test]
    fn stress_bundle_even_steps_target_risks() {
        for steps in [2usize, 4, 8] {
            let bundle = stress_bundle(steps, 3, 13);
            let out = ChaseSession::new(&stress::program())
                .run(bundle.database)
                .unwrap();
            for target in &bundle.targets {
                assert_eq!(target.predicate, Symbol::new("risk"));
                let id = out
                    .lookup(target)
                    .unwrap_or_else(|| panic!("{target} derived"));
                let tau = out
                    .graph
                    .proof(id, DerivationPolicy::Richest)
                    .linearize(&out.graph);
                assert_eq!(tau.len(), steps, "target {target}");
            }
        }
    }

    #[test]
    fn random_networks_are_deterministic_per_seed() {
        let a = random_ownership(30, 3, 99);
        let b = random_ownership(30, 3, 99);
        assert_eq!(a.len(), b.len());
        let c = random_ownership(30, 3, 100);
        // Overwhelmingly likely to differ.
        assert!(a.len() != c.len() || a.iter().zip(c.iter()).any(|((_, x), (_, y))| x != y));
    }

    #[test]
    fn random_debt_network_chases_to_fixpoint() {
        let db = random_debt_network(40, 3, 3, 5);
        let out = ChaseSession::new(&stress::program()).run(db).unwrap();
        // Some defaults should cascade from three shocks.
        assert!(!out.facts_of("default").is_empty());
    }

    #[test]
    fn proofs_with_steps_filters_exactly() {
        let bundle = control_bundle(4, 2, 1);
        let out = ChaseSession::new(&control::program())
            .run(bundle.database)
            .unwrap();
        let hits = proofs_with_steps(&out, "control", 4);
        assert_eq!(hits.len(), 2);
        assert!(proofs_with_steps(&out, "control", 17).is_empty());
    }
}
