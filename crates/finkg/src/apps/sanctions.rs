//! The sanctions-screening KG application.
//!
//! Compliance staff must flag every party whose ownership network
//! exposes it to a sanctioned entity — directly or through a chain of
//! significant stakes — and, dually, certify the links that are *clean*
//! of sanctioned endpoints. Exposure propagates along stakes of at
//! least 20%; the screening itself is a stratified-negation query over
//! the extensional `sanctioned` designations, which makes the program
//! aggregate-free and therefore eligible for incremental maintenance
//! under `ChaseSession::apply_delta` as designations are added and
//! lifted.

use explain::{DomainGlossary, GlossaryEntry, ValueFormat};
use vadalog::{parse_program, Program};

/// The goal predicate of the application.
pub const GOAL: &str = "flagged";

/// The rule text.
pub const RULES: &str = r#"
    s1: own(x, y, w), w >= 0.2 -> exposure(x, y).
    s2: exposure(x, z), own(z, y, w), w >= 0.2, x != y -> exposure(x, y).
    s3: exposure(x, y), sanctioned(y) -> flagged(x, y).
    s4: exposure(x, y), not sanctioned(x), not sanctioned(y) -> clean_link(x, y).
"#;

/// Builds the validated sanctions-screening program.
pub fn program() -> Program {
    parse_program(RULES)
        .expect("the sanctions program is well-formed")
        .program
}

/// The domain glossary of the application.
pub fn glossary() -> DomainGlossary {
    DomainGlossary::new()
        .with(GlossaryEntry::new(
            "own",
            &[
                ("x", ValueFormat::Plain),
                ("y", ValueFormat::Plain),
                ("w", ValueFormat::Percent),
            ],
            "<x> owns <w> shares of <y>",
        ))
        .with(GlossaryEntry::new(
            "sanctioned",
            &[("x", ValueFormat::Plain)],
            "<x> is a sanctioned entity",
        ))
        .with(GlossaryEntry::new(
            "exposure",
            &[("x", ValueFormat::Plain), ("y", ValueFormat::Plain)],
            "<x> is exposed to <y> through a chain of significant stakes",
        ))
        .with(GlossaryEntry::new(
            "flagged",
            &[("x", ValueFormat::Plain), ("y", ValueFormat::Plain)],
            "<x> is flagged for exposure to the sanctioned entity <y>",
        ))
        .with(GlossaryEntry::new(
            "clean_link",
            &[("x", ValueFormat::Plain), ("y", ValueFormat::Plain)],
            "the link between <x> and <y> is clean of sanctions",
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain::{analyze, ExplanationPipeline};
    use vadalog::{ChaseSession, Database, Fact};

    fn screen(db: Database) -> vadalog::ChaseOutcome {
        ChaseSession::new(&program()).run(db).unwrap()
    }

    #[test]
    fn exposure_chains_flag_indirect_sanctions_hits() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.5.into()]);
        db.add("own", &["B".into(), "C".into(), 0.3.into()]);
        db.add("own", &["A".into(), "D".into(), 0.1.into()]);
        db.add("sanctioned", &["C".into()]);
        db.add("sanctioned", &["D".into()]);
        let out = screen(db);
        // A reaches sanctioned C through B; the 10% stake in D is below
        // the exposure threshold.
        assert!(out
            .database
            .contains(&Fact::new("flagged", vec!["A".into(), "C".into()])));
        assert!(out
            .database
            .contains(&Fact::new("flagged", vec!["B".into(), "C".into()])));
        assert!(!out
            .database
            .contains(&Fact::new("flagged", vec!["A".into(), "D".into()])));
    }

    #[test]
    fn clean_links_exclude_sanctioned_endpoints() {
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.6.into()]);
        db.add("own", &["B".into(), "C".into(), 0.6.into()]);
        db.add("sanctioned", &["C".into()]);
        let out = screen(db);
        assert!(out
            .database
            .contains(&Fact::new("clean_link", vec!["A".into(), "B".into()])));
        assert!(!out
            .database
            .contains(&Fact::new("clean_link", vec!["A".into(), "C".into()])));
        assert!(!out
            .database
            .contains(&Fact::new("clean_link", vec!["B".into(), "C".into()])));
    }

    #[test]
    fn explanations_cover_the_exposure_chain() {
        let p = program();
        let pipeline = ExplanationPipeline::builder(p.clone(), GOAL)
            .with_glossary(&glossary())
            .build()
            .unwrap();
        let mut db = Database::new();
        db.add("own", &["A".into(), "B".into(), 0.8.into()]);
        db.add("own", &["B".into(), "C".into(), 0.4.into()]);
        db.add("sanctioned", &["C".into()]);
        let out = ChaseSession::new(&p).run(db).unwrap();
        let e = pipeline
            .explain(&out, &Fact::new("flagged", vec!["A".into(), "C".into()]))
            .unwrap();
        for needle in ["80%", "40%", "sanctioned"] {
            assert!(e.text.contains(needle), "missing {needle}: {}", e.text);
        }
    }

    #[test]
    fn structural_analysis_finds_the_exposure_recursion() {
        let a = analyze(&program(), GOAL).unwrap();
        assert!(a.cycles().count() >= 1);
        assert!(a.simple_paths().count() >= 1);
    }
}
