//! Chrome `trace_event` export for collected spans.
//!
//! Renders a slice of [`SpanRecord`]s as the JSON Array Format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: one complete event (`"ph": "X"`) per span, with
//! microsecond `ts`/`dur`, the collecting thread as `tid`, and the
//! span's typed fields (plus its id and parent id) under `args`.
//!
//! ```
//! use vadalog::obs::chrome::to_chrome_trace;
//! use vadalog::obs::span::{RingCollector, self};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingCollector::new(1024));
//! span::install(ring.clone());
//! {
//!     let _run = vadalog::span!("chase.run", strata = 2u64);
//! }
//! span::uninstall();
//! let json = to_chrome_trace(&ring.snapshot());
//! assert!(json.contains("\"chase.run\""));
//! ```

use super::json::JsonWriter;
use super::span::{FieldValue, SpanRecord};

/// Renders spans as a Chrome `trace_event` JSON array of complete
/// (`"ph": "X"`) events. The output is a single self-contained JSON
/// document suitable for Perfetto / `chrome://tracing`.
pub fn to_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut w = JsonWriter::new();
    w.open_array();
    for span in spans {
        w.open_object();
        w.field_str("name", span.name);
        w.field_str("cat", category(span.name));
        w.field_str("ph", "X");
        // trace_event timestamps are microseconds; keep fractional
        // precision so short spans don't collapse to zero width.
        w.key("ts");
        w.value_f64(span.start_ns as f64 / 1_000.0);
        w.key("dur");
        w.value_f64(span.duration_ns as f64 / 1_000.0);
        w.field_u64("pid", 1);
        w.field_u64("tid", span.thread);
        w.key("args");
        w.open_object();
        w.field_u64("span_id", span.id);
        if let Some(parent) = span.parent {
            w.field_u64("parent_id", parent);
        }
        if let Some(trace_id) = &span.trace_id {
            w.field_str("trace_id", trace_id);
        }
        if let Some(request_id) = span.request_id {
            w.field_u64("request_id", request_id);
        }
        for (key, value) in &span.fields {
            match value {
                FieldValue::U64(v) => w.field_u64(key, *v),
                FieldValue::I64(v) => {
                    w.key(key);
                    w.value_f64(*v as f64);
                }
                FieldValue::F64(v) => w.field_f64(key, *v),
                FieldValue::Str(v) => w.field_str(key, v),
                FieldValue::Bool(v) => w.field_str(key, if *v { "true" } else { "false" }),
            }
        }
        w.close_object();
        w.close_object();
    }
    w.close_array();
    w.finish()
}

/// Renders only the spans belonging to one request — those whose
/// `trace_id` equals `trace_id` — as a Chrome trace. This is how a
/// mixed collector (many concurrent requests, engine background spans)
/// is cut down to a single request's span tree for export.
pub fn to_chrome_trace_for(spans: &[SpanRecord], trace_id: &str) -> String {
    let filtered: Vec<SpanRecord> = spans
        .iter()
        .filter(|s| s.trace_id.as_deref() == Some(trace_id))
        .cloned()
        .collect();
    to_chrome_trace(&filtered)
}

/// The span's taxonomy root (`chase` in `chase.round`), used as the
/// trace_event category so viewers can filter per subsystem.
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json::{self, JsonValue};

    fn record(id: u64, parent: Option<u64>, name: &'static str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            fields: vec![("rule", FieldValue::Str("r0".into()))],
            thread: 1,
            start_ns: 1_500,
            duration_ns: 2_500,
            trace_id: None,
            request_id: None,
        }
    }

    #[test]
    fn emits_parseable_complete_events() {
        let spans = vec![
            record(1, None, "chase.run"),
            record(2, Some(1), "chase.stratum"),
        ];
        let text = to_chrome_trace(&spans);
        let parsed = json::parse(&text).expect("valid JSON");
        let events = parsed.as_arr().expect("array");
        assert_eq!(events.len(), 2);
        let first = &events[0];
        assert_eq!(first.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(
            first.get("name").and_then(JsonValue::as_str),
            Some("chase.run")
        );
        assert_eq!(first.get("cat").and_then(JsonValue::as_str), Some("chase"));
        assert_eq!(first.get("ts").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(first.get("dur").and_then(JsonValue::as_f64), Some(2.5));
        let second_args = events[1].get("args").expect("args");
        assert_eq!(
            second_args.get("parent_id").and_then(JsonValue::as_u64),
            Some(1)
        );
        assert_eq!(
            second_args.get("rule").and_then(JsonValue::as_str),
            Some("r0")
        );
    }

    #[test]
    fn empty_span_list_is_an_empty_array() {
        let parsed = json::parse(&to_chrome_trace(&[])).expect("valid JSON");
        assert_eq!(parsed.as_arr().map(<[_]>::len), Some(0));
    }

    #[test]
    fn trace_context_lands_in_args_and_filters_the_export() {
        let mut tagged = record(3, None, "serve.goal");
        tagged.trace_id = Some("req-42".into());
        tagged.request_id = Some(42);
        let spans = vec![record(1, None, "chase.run"), tagged];

        let full = json::parse(&to_chrome_trace(&spans)).expect("valid JSON");
        let args = full.as_arr().unwrap()[1].get("args").expect("args");
        assert_eq!(
            args.get("trace_id").and_then(JsonValue::as_str),
            Some("req-42")
        );
        assert_eq!(args.get("request_id").and_then(JsonValue::as_u64), Some(42));

        let one = json::parse(&to_chrome_trace_for(&spans, "req-42")).expect("valid JSON");
        let events = one.as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("name").and_then(JsonValue::as_str),
            Some("serve.goal")
        );
        assert_eq!(
            json::parse(&to_chrome_trace_for(&spans, "other"))
                .unwrap()
                .as_arr()
                .map(<[_]>::len),
            Some(0)
        );
    }
}
