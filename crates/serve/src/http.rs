//! A dependency-free HTTP/1.1 front end for the explanation service.
//!
//! Hand-rolled over `std::net::TcpListener` because the build ships no
//! external crates: one accept loop, one short-lived handler per
//! connection, `Connection: close` semantics. Heavy lifting (the actual
//! explanation queries) happens on the [`ExplainService`] worker pool,
//! so the accept loop stays thin.
//!
//! Endpoints:
//!
//! | Method & path   | Behaviour                                          |
//! |-----------------|----------------------------------------------------|
//! | `GET /health`   | liveness + current snapshot version                |
//! | `GET /metrics`  | Prometheus text of the process metrics registry    |
//! | `GET /snapshot` | current snapshot version, update kind (`full`/`delta`), delta fact counts, database size |
//! | `POST /explain` | body = goal fact literals (`control("B","D").`), one per line; answers each in order |

use crate::service::{ExplainService, ServeError};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use vadalog::obs::json::JsonWriter;

/// A running HTTP server; dropping it (or calling
/// [`stop`](HttpServer::stop)) shuts the accept loop down.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, port 0 for ephemeral) and
    /// starts serving `service` in a background accept loop.
    pub fn bind(addr: &str, service: Arc<ExplainService>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("serve-http-accept".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    if let Err(e) = handle_connection(conn, &service) {
                        vadalog::obs::metrics::global()
                            .counter(
                                "vadalog_serve_http_io_errors_total",
                                "HTTP connections dropped on I/O errors.",
                            )
                            .inc();
                        let _ = e; // connection-level errors are not fatal
                    }
                }
            })?;
        Ok(HttpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One parsed request line + body.
struct Request {
    method: String,
    path: String,
    body: String,
}

/// Reads one HTTP/1.1 request (request line, headers, Content-Length
/// body) from `conn`.
fn read_request(conn: &mut TcpStream) -> std::io::Result<Request> {
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    // Bound the body so a hostile Content-Length cannot exhaust memory.
    let mut body = vec![0u8; content_length.min(1 << 20)];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Writes a full response and closes.
fn respond(
    conn: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        conn,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    conn.flush()
}

/// Routes one connection.
fn handle_connection(mut conn: TcpStream, service: &ExplainService) -> std::io::Result<()> {
    let request = read_request(&mut conn)?;
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let mut w = JsonWriter::new();
            w.open_object();
            w.field_str("status", "ok");
            w.field_u64(
                "snapshot_version",
                service.snapshot_handle().current().version(),
            );
            w.close_object();
            respond(&mut conn, "200 OK", "application/json", &w.finish())
        }
        ("GET", "/metrics") => respond(
            &mut conn,
            "200 OK",
            "text/plain; version=0.0.4",
            &vadalog::obs::metrics::global().to_prometheus(),
        ),
        ("GET", "/snapshot") => {
            let snapshot = service.snapshot_handle().current();
            let mut w = JsonWriter::new();
            w.open_object();
            w.field_u64("version", snapshot.version());
            w.field_str("update_kind", snapshot.update_kind().as_str());
            w.field_u64("facts_added", snapshot.facts_added());
            w.field_u64("facts_retracted", snapshot.facts_retracted());
            w.field_u64("facts", snapshot.outcome().database.len() as u64);
            w.field_u64("derived_facts", snapshot.outcome().derived_facts as u64);
            w.field_u64("rounds", snapshot.outcome().rounds as u64);
            w.close_object();
            respond(&mut conn, "200 OK", "application/json", &w.finish())
        }
        ("POST", "/explain") => match parse_goals(&request.body) {
            Err(detail) => {
                let mut w = JsonWriter::new();
                w.open_object();
                w.field_str("error", &detail);
                w.close_object();
                respond(
                    &mut conn,
                    "400 Bad Request",
                    "application/json",
                    &w.finish(),
                )
            }
            Ok(goals) => {
                let (version, results) = service.explain_batch(&goals);
                let mut w = JsonWriter::new();
                w.open_object();
                w.field_u64("snapshot_version", version);
                w.key("answers");
                w.open_array();
                for (goal, result) in goals.iter().zip(&results) {
                    w.open_object();
                    w.field_str("goal", &goal.to_string());
                    match result {
                        Ok(e) => {
                            w.field_str("text", &e.text);
                            w.field_u64("chase_steps", e.chase_steps as u64);
                            w.key("paths");
                            w.open_array();
                            for p in &e.paths {
                                w.value_str(p);
                            }
                            w.close_array();
                        }
                        Err(err) => {
                            w.field_str("error", &render_error(err));
                        }
                    }
                    w.close_object();
                }
                w.close_array();
                w.close_object();
                respond(&mut conn, "200 OK", "application/json", &w.finish())
            }
        },
        _ => respond(
            &mut conn,
            "404 Not Found",
            "text/plain",
            "unknown endpoint; try /health, /metrics, /snapshot or POST /explain\n",
        ),
    }
}

/// Renders an error with its full `source()` chain.
fn render_error(err: &ServeError) -> String {
    let mut text = err.to_string();
    let mut source = std::error::Error::source(err);
    while let Some(cause) = source {
        text.push_str(": ");
        text.push_str(&cause.to_string());
        source = cause.source();
    }
    text
}

/// Parses an `/explain` body: one goal fact literal per statement, in
/// the engine's surface syntax (e.g. `control("B", "D").`).
fn parse_goals(body: &str) -> Result<Vec<vadalog::Fact>, String> {
    let trimmed = body.trim();
    if trimmed.is_empty() {
        return Err("empty body; send goal fact literals like control(\"B\", \"D\").".to_owned());
    }
    let parsed = vadalog::parse_program(trimmed).map_err(|e| e.to_string())?;
    if !parsed.program.is_empty() {
        return Err("body must contain facts only, no rules".to_owned());
    }
    if parsed.facts.is_empty() {
        return Err("no goal facts in body".to_owned());
    }
    Ok(parsed.facts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_bodies_parse_and_reject_rules() {
        let goals = parse_goals("control(\"B\", \"D\").\ncontrol(\"B\", \"E\").").unwrap();
        assert_eq!(goals.len(), 2);
        assert!(parse_goals("").is_err());
        assert!(parse_goals("r: a(x) -> b(x).").is_err());
        assert!(parse_goals("not a program").is_err());
    }
}
