//! The concurrent explanation service: a bounded worker pool answering
//! explanation goals against Arc-shared snapshots and cached artifacts.
//!
//! Every query is a pure function of `(artifacts, snapshot, goal)`, so
//! parallelism needs no coordination beyond handing out work: N workers
//! pull jobs from one bounded queue, each computes against the `Arc` of
//! the snapshot captured when its batch entered, and results are placed
//! back by index. Answers are therefore *byte-identical* at any worker
//! count — the serving-side mirror of the engine's determinism contract —
//! and a batch never observes two different snapshot versions even while
//! a publisher replaces it underneath.
//!
//! ## Overload and fault behaviour
//!
//! The pool is *overload-safe* and *self-healing*:
//!
//! * **Deadlines.** [`ServeConfig::with_request_deadline`] arms a
//!   per-batch deadline. Submission uses a deadline-aware `try_send`
//!   loop — when the job queue stays full past the deadline the
//!   remaining goals are shed with [`ServeError::Overloaded`] instead of
//!   blocking — and each job carries the deadline into the worker, which
//!   hands the *remaining* budget to the explanation pipeline's
//!   [`RunGuard`], so a slow goal returns a deterministic
//!   `ResourceExhausted` answer instead of stalling its batch.
//! * **Panic isolation.** Worker bodies run under `catch_unwind`
//!   (mirroring the engine's match-phase isolation): an ordinary panic
//!   is reported as [`ServeError::WorkerPanic`] for that job and retires
//!   the worker; an injected [`FaultCrash`](vadalog::faultpoint::FaultCrash)
//!   kills the worker without reporting, like a real crash would. The
//!   pool respawns retired workers to full width, recovers a poisoned
//!   queue mutex, and [`explain_batch`](ExplainService::explain_batch)
//!   retries panicked/lost jobs once after healing — so answers under an
//!   injected fault stay byte-identical to a fault-free run.
//! * **No hangs.** The batch collection loop ticks against the
//!   completion deadline and re-checks pool health on every tick, so a
//!   batch can never wait forever on a dead pool; past the deadline the
//!   outstanding goals resolve to [`ServeError::DeadlineExceeded`].

use crate::snapshot::{Snapshot, SnapshotHandle};
use explain::pipeline::{Explanation, TemplateFlavor};
use explain::{ExplainError, ProgramArtifacts};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vadalog::obs::context::{self, TraceContext};
use vadalog::obs::{flight, span};
use vadalog::telemetry::RunGuard;
use vadalog::{DerivationPolicy, Fact};

/// Pause between `try_send` attempts while the job queue is full.
const SUBMIT_TICK: Duration = Duration::from_millis(1);
/// Collection-loop tick: how often a waiting batch re-checks the
/// completion deadline and pool health.
const COLLECT_TICK: Duration = Duration::from_millis(10);

/// Configuration of an [`ExplainService`] (and of the
/// [`HttpServer`](crate::HttpServer) serving it).
///
/// `#[non_exhaustive]`: construct via [`ServeConfig::default`] and the
/// `with_*` setters so new knobs stay additive.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads answering queries (`0` = available parallelism).
    pub workers: usize,
    /// Bound of the job queue; submissions beyond it apply backpressure
    /// and are shed once the request deadline passes.
    pub queue_depth: usize,
    /// Template flavour answers use.
    pub flavor: TemplateFlavor,
    /// Derivation-selection policy.
    pub policy: DerivationPolicy,
    /// Per-batch wall-clock budget: submission sheds
    /// ([`ServeError::Overloaded`]) when the queue stays full past it,
    /// workers hand the remaining budget to the explanation pipeline's
    /// guard, and collection stops waiting past it
    /// ([`ServeError::DeadlineExceeded`]). `None` = unbounded.
    pub request_deadline: Option<Duration>,
    /// Concurrent HTTP connection handlers; excess connections are shed
    /// immediately with `503` + `Retry-After` instead of queueing.
    pub max_connections: usize,
    /// Total wall-clock budget for reading one request (head + body) and
    /// the per-syscall socket read timeout, so slowloris and byte-dribble
    /// clients are dropped on schedule.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Maximum bytes of request head (request line + headers); past it
    /// the connection gets `431 Request Header Fields Too Large`.
    pub max_head_bytes: usize,
    /// Maximum request body bytes; a larger `Content-Length` gets
    /// `413 Payload Too Large` instead of silent truncation.
    pub max_body_bytes: usize,
    /// Maximum goals per `/explain` batch; past it the request gets a
    /// structured `400`.
    pub max_goals_per_batch: usize,
    /// The `Retry-After` hint attached to `503` shed responses.
    pub retry_after: Duration,
    /// Goals slower than this are captured into the flight recorder's
    /// slow-query log with their full span tree (`GET /debug/slow`);
    /// `None` disables the capture (and its per-goal span recording).
    pub slow_query_threshold: Option<Duration>,
    /// The `app` label stamped on `vadalog_serve_request_seconds`, so
    /// one metrics endpoint can distinguish co-hosted applications.
    pub app: String,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_depth: 256,
            flavor: TemplateFlavor::Enhanced,
            policy: DerivationPolicy::Richest,
            request_deadline: Some(Duration::from_secs(10)),
            max_connections: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1 << 20,
            max_goals_per_batch: 256,
            retry_after: Duration::from_secs(1),
            slow_query_threshold: Some(Duration::from_secs(1)),
            app: "default".to_owned(),
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers;
        self
    }

    /// Sets the job-queue bound.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> ServeConfig {
        self.queue_depth = queue_depth.max(1);
        self
    }

    /// Sets the template flavour.
    pub fn with_flavor(mut self, flavor: TemplateFlavor) -> ServeConfig {
        self.flavor = flavor;
        self
    }

    /// Sets the derivation-selection policy.
    pub fn with_policy(mut self, policy: DerivationPolicy) -> ServeConfig {
        self.policy = policy;
        self
    }

    /// Sets (or with `None`, removes) the per-request deadline.
    pub fn with_request_deadline(mut self, deadline: Option<Duration>) -> ServeConfig {
        self.request_deadline = deadline;
        self
    }

    /// Sets the concurrent HTTP connection-handler bound.
    pub fn with_max_connections(mut self, max_connections: usize) -> ServeConfig {
        self.max_connections = max_connections.max(1);
        self
    }

    /// Sets the socket/request read budget.
    pub fn with_read_timeout(mut self, read_timeout: Duration) -> ServeConfig {
        self.read_timeout = read_timeout;
        self
    }

    /// Sets the socket write timeout.
    pub fn with_write_timeout(mut self, write_timeout: Duration) -> ServeConfig {
        self.write_timeout = write_timeout;
        self
    }

    /// Sets the request-head byte cap (`431` past it).
    pub fn with_max_head_bytes(mut self, max_head_bytes: usize) -> ServeConfig {
        self.max_head_bytes = max_head_bytes.max(64);
        self
    }

    /// Sets the request-body byte cap (`413` past it).
    pub fn with_max_body_bytes(mut self, max_body_bytes: usize) -> ServeConfig {
        self.max_body_bytes = max_body_bytes;
        self
    }

    /// Sets the per-batch goal-count cap (`400` past it).
    pub fn with_max_goals_per_batch(mut self, max_goals: usize) -> ServeConfig {
        self.max_goals_per_batch = max_goals.max(1);
        self
    }

    /// Sets the `Retry-After` hint on shed responses.
    pub fn with_retry_after(mut self, retry_after: Duration) -> ServeConfig {
        self.retry_after = retry_after;
        self
    }

    /// Sets (or with `None`, disables) the slow-query capture threshold.
    pub fn with_slow_query_threshold(mut self, threshold: Option<Duration>) -> ServeConfig {
        self.slow_query_threshold = threshold;
        self
    }

    /// Sets the `app` label on request metrics.
    pub fn with_app_label(mut self, app: impl Into<String>) -> ServeConfig {
        self.app = app.into();
        self
    }

    /// The effective worker count (resolving `0`).
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// A serving-layer failure.
///
/// `#[non_exhaustive]`: match with a wildcard arm so new variants stay
/// additive.
#[non_exhaustive]
#[derive(Debug)]
pub enum ServeError {
    /// The explanation query itself failed; `source()` yields the
    /// underlying [`ExplainError`].
    Explain {
        /// The queried goal fact, rendered.
        goal: String,
        /// The pipeline failure.
        source: ExplainError,
    },
    /// A request body could not be parsed into goal facts.
    BadRequest {
        /// What was wrong with the request.
        detail: String,
    },
    /// The service shed this goal: the job queue stayed full past the
    /// request deadline. Maps to HTTP `503` with `Retry-After`.
    Overloaded {
        /// Suggested client back-off before resubmitting.
        retry_after: Duration,
    },
    /// The batch's completion deadline passed before this goal was
    /// answered.
    DeadlineExceeded {
        /// The configured per-request budget.
        deadline: Duration,
    },
    /// A worker panicked (or was killed) while answering this goal and
    /// the retry after respawning did not produce an answer either.
    WorkerPanic {
        /// The queried goal fact, rendered.
        goal: String,
        /// The panic payload, stringified.
        message: String,
    },
    /// A snapshot publish failed and exhausted its retry budget; the
    /// service keeps answering from the last good snapshot (degraded).
    Publish {
        /// Publish attempts made (initial + retries).
        attempts: u32,
        /// The last injected/underlying I/O failure.
        source: std::io::Error,
    },
    /// The service is shutting down and dropped the job.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Explain { goal, .. } => write!(f, "explanation of {goal} failed"),
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::Overloaded { retry_after } => write!(
                f,
                "service overloaded; retry after {}ms",
                retry_after.as_millis()
            ),
            ServeError::DeadlineExceeded { deadline } => {
                write!(f, "request deadline of {}ms exceeded", deadline.as_millis())
            }
            ServeError::WorkerPanic { goal, message } => {
                write!(f, "worker panicked answering {goal}: {message}")
            }
            ServeError::Publish { attempts, .. } => {
                write!(f, "snapshot publish failed after {attempts} attempts")
            }
            ServeError::Shutdown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Explain { source, .. } => Some(source),
            ServeError::Publish { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One unit of work: explain `fact` against the batch's snapshot and
/// report the result under `index`.
struct Job {
    fact: Fact,
    snapshot: Arc<Snapshot>,
    index: usize,
    deadline: Option<Instant>,
    /// The trace context of the request that submitted this job; the
    /// worker installs it so the goal's spans and flight events carry
    /// the submitting request's trace id across the thread hop.
    trace: Option<TraceContext>,
    done: Sender<(usize, Result<Explanation, ServeError>)>,
}

/// The concurrent explanation service.
///
/// Construction spawns the worker pool; dropping the service closes the
/// queue and joins every worker. The service holds a [`SnapshotHandle`]
/// clone — publishers push new outcomes in through their own clone with
/// [`SnapshotHandle::publish`], and batches submitted after a publish
/// observe the new version while batches in flight finish on the
/// version they captured.
pub struct ExplainService {
    artifacts: Arc<ProgramArtifacts>,
    handle: SnapshotHandle,
    config: ServeConfig,
    jobs: Option<SyncSender<Job>>,
    job_rx: Arc<Mutex<Receiver<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    alive: Arc<AtomicUsize>,
    next_worker: AtomicUsize,
}

impl ExplainService {
    /// Spawns the worker pool over `artifacts` and the snapshot slot.
    pub fn new(
        artifacts: Arc<ProgramArtifacts>,
        handle: SnapshotHandle,
        config: ServeConfig,
    ) -> ExplainService {
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth);
        let service = ExplainService {
            artifacts,
            handle,
            config,
            jobs: Some(tx),
            job_rx: Arc::new(Mutex::new(rx)),
            workers: Mutex::new(Vec::new()),
            alive: Arc::new(AtomicUsize::new(0)),
            next_worker: AtomicUsize::new(0),
        };
        let want = service.config.effective_workers();
        let mut workers = service.workers.lock().expect("fresh worker list");
        for _ in 0..want {
            workers.push(service.spawn_worker());
        }
        drop(workers);
        service
    }

    /// The shared artifacts answers are generated from.
    pub fn artifacts(&self) -> &Arc<ProgramArtifacts> {
        &self.artifacts
    }

    /// The snapshot slot the service serves from.
    pub fn snapshot_handle(&self) -> &SnapshotHandle {
        &self.handle
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Workers currently alive (equals the configured width unless a
    /// panic just retired one and [`heal`](Self::heal) has not run yet).
    pub fn alive_workers(&self) -> usize {
        self.alive.load(Ordering::Acquire)
    }

    /// Respawns retired workers up to the configured width. Called
    /// automatically on batch entry, on every collection tick and before
    /// the panic-retry round; exposed for ops/tests.
    pub fn heal(&self) {
        if self.jobs.is_none() {
            return;
        }
        let want = self.config.effective_workers();
        let mut workers = match self.workers.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        workers.retain(|handle| !handle.is_finished());
        if workers.len() >= want {
            return;
        }
        let respawns = vadalog::obs::metrics::global().counter(
            "vadalog_serve_worker_respawns_total",
            "Explain workers respawned after a panic retired one.",
        );
        while workers.len() < want {
            workers.push(self.spawn_worker());
            respawns.inc();
        }
    }

    fn spawn_worker(&self) -> JoinHandle<()> {
        let id = self.next_worker.fetch_add(1, Ordering::Relaxed);
        let rx = Arc::clone(&self.job_rx);
        let artifacts = Arc::clone(&self.artifacts);
        let alive = Arc::clone(&self.alive);
        let flavor = self.config.flavor;
        let policy = self.config.policy;
        let slow_threshold = self.config.slow_query_threshold;
        std::thread::Builder::new()
            .name(format!("explain-worker-{id}"))
            .spawn(move || worker_loop(&rx, &artifacts, flavor, policy, slow_threshold, id, &alive))
            .expect("spawning explanation worker")
    }

    /// Answers a batch of explanation goals concurrently, order-preserving.
    ///
    /// The whole batch is answered against the *one* snapshot current at
    /// entry: a concurrent [`SnapshotHandle::publish`] never splits a batch
    /// across versions. Returns one result per goal, in goal order,
    /// together with the snapshot version used.
    ///
    /// Under the configured [`request_deadline`](ServeConfig::request_deadline)
    /// the call is bounded: goals the full queue cannot accept in time
    /// come back [`ServeError::Overloaded`], goals whose evaluation
    /// overruns the remaining budget come back as deterministic
    /// `ResourceExhausted` explain errors, and goals lost to a worker
    /// crash are retried once after the pool respawns — past the
    /// deadline they resolve to [`ServeError::DeadlineExceeded`].
    pub fn explain_batch(&self, goals: &[Fact]) -> (u64, Vec<Result<Explanation, ServeError>>) {
        let snapshot = self.handle.current();
        let version = snapshot.version();
        let registry = vadalog::obs::metrics::global();
        registry
            .counter(
                "vadalog_serve_requests_total",
                "Explanation goals submitted to the serving layer.",
            )
            .add(goals.len() as u64);
        let deadline = self.config.request_deadline.map(|d| Instant::now() + d);
        let mut results: Vec<Option<Result<Explanation, ServeError>>> =
            (0..goals.len()).map(|_| None).collect();
        self.heal();
        if self.jobs.is_none() {
            return (
                version,
                goals.iter().map(|_| Err(ServeError::Shutdown)).collect(),
            );
        }

        let all: Vec<usize> = (0..goals.len()).collect();
        let submitted = self.submit(goals, &all, &snapshot, deadline, &mut results);
        self.collect(&submitted, &mut results, deadline);

        // One retry round for goals lost to a worker panic/crash: the
        // pool has been healed, the jobs are pure, so a re-run yields
        // the byte-identical answer the fault suppressed.
        let lost: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, slot)| matches!(slot, None | Some(Err(ServeError::WorkerPanic { .. }))))
            .map(|(index, _)| index)
            .collect();
        if !lost.is_empty() && deadline.is_none_or(|d| Instant::now() < d) {
            self.heal();
            for &index in &lost {
                results[index] = None;
            }
            let resubmitted = self.submit(goals, &lost, &snapshot, deadline, &mut results);
            self.collect(&resubmitted, &mut results, deadline);
        }

        // Whatever is still unanswered resolves deterministically.
        let deadline_passed = deadline.is_some_and(|d| Instant::now() >= d);
        let results: Vec<Result<Explanation, ServeError>> = results
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.unwrap_or_else(|| {
                    if deadline_passed {
                        Err(ServeError::DeadlineExceeded {
                            deadline: self.config.request_deadline.unwrap_or_default(),
                        })
                    } else {
                        Err(ServeError::WorkerPanic {
                            goal: goals[index].to_string(),
                            message: "worker died before answering".to_owned(),
                        })
                    }
                })
            })
            .collect();
        registry
            .counter(
                "vadalog_serve_errors_total",
                "Explanation goals the serving layer failed to answer.",
            )
            .add(results.iter().filter(|r| r.is_err()).count() as u64);
        (version, results)
    }

    /// Submits `goals[indices]` through the deadline-aware `try_send`
    /// loop. Goals the queue cannot accept in time are shed in place
    /// ([`ServeError::Overloaded`]); returns the indices actually queued
    /// (paired with the `done` channel their results arrive on).
    fn submit(
        &self,
        goals: &[Fact],
        indices: &[usize],
        snapshot: &Arc<Snapshot>,
        deadline: Option<Instant>,
        results: &mut [Option<Result<Explanation, ServeError>>],
    ) -> BatchReceiver {
        let (done_tx, done_rx) = mpsc::channel();
        let mut queued = 0usize;
        let mut shed = 0u64;
        let Some(jobs) = &self.jobs else {
            for &index in indices {
                results[index] = Some(Err(ServeError::Shutdown));
            }
            return BatchReceiver {
                rx: done_rx,
                queued,
            };
        };
        let trace = context::current();
        'submit: for (position, &index) in indices.iter().enumerate() {
            let mut job = Job {
                fact: goals[index].clone(),
                snapshot: Arc::clone(snapshot),
                index,
                deadline,
                trace: trace.clone(),
                done: done_tx.clone(),
            };
            loop {
                match jobs.try_send(job) {
                    Ok(()) => {
                        queued += 1;
                        break;
                    }
                    Err(TrySendError::Full(back)) => {
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            for &rest in &indices[position..] {
                                results[rest] = Some(Err(ServeError::Overloaded {
                                    retry_after: self.config.retry_after,
                                }));
                                shed += 1;
                            }
                            break 'submit;
                        }
                        job = back;
                        // A retired pool would never drain the queue.
                        self.heal();
                        std::thread::sleep(SUBMIT_TICK);
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        results[index] = Some(Err(ServeError::Shutdown));
                        break;
                    }
                }
            }
        }
        if shed > 0 {
            vadalog::obs::metrics::global()
                .counter(
                    "vadalog_serve_shed_goals_total",
                    "Explanation goals shed because the job queue stayed full past the deadline.",
                )
                .add(shed);
            flight::global().failure(
                "shed",
                format!("{shed} goals shed: job queue stayed full past the request deadline"),
            );
        }
        BatchReceiver {
            rx: done_rx,
            queued,
        }
    }

    /// Drains `batch.queued` results, ticking against the completion
    /// deadline and healing the pool on every tick so a dead pool can
    /// never hang the batch.
    fn collect(
        &self,
        batch: &BatchReceiver,
        results: &mut [Option<Result<Explanation, ServeError>>],
        deadline: Option<Instant>,
    ) {
        let mut outstanding = batch.queued;
        while outstanding > 0 {
            match batch.rx.recv_timeout(COLLECT_TICK) {
                Ok((index, result)) => {
                    results[index] = Some(result);
                    outstanding -= 1;
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.heal();
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return;
                    }
                }
                // Every outstanding job was dropped mid-unwind: nothing
                // more will arrive on this channel.
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Answers one explanation goal (a single-element batch).
    pub fn explain_one(&self, goal: &Fact) -> (u64, Result<Explanation, ServeError>) {
        let (version, mut results) = self.explain_batch(std::slice::from_ref(goal));
        (version, results.pop().expect("one result per goal"))
    }
}

/// The per-submission result channel plus how many jobs were queued on it.
struct BatchReceiver {
    rx: Receiver<(usize, Result<Explanation, ServeError>)>,
    queued: usize,
}

impl Drop for ExplainService {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        self.jobs = None;
        let mut workers = match self.workers.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs one job: installs the submitting request's trace context, opens
/// the `serve.goal` span, hits the `serve.worker` fault point, then runs
/// the explanation under the remaining per-request budget. Goals slower
/// than `slow_threshold` are captured (goal text + full span tree) into
/// the flight recorder's slow-query log.
fn run_job(
    job: &Job,
    artifacts: &ProgramArtifacts,
    flavor: TemplateFlavor,
    policy: DerivationPolicy,
    slow_threshold: Option<Duration>,
    worker: usize,
) -> Result<Explanation, ServeError> {
    let _ctx = job.trace.clone().map(context::set);
    // The capture is per-thread and cheap relative to an explanation;
    // a goal's slowness is only known once it finishes, so every goal
    // records while the threshold is armed and fast ones discard.
    let capture = slow_threshold.map(|_| span::capture_begin());
    let started = Instant::now();
    let result = {
        let _span = vadalog::span!(
            "serve.goal",
            goal = job.fact.to_string(),
            worker = worker as u64
        );
        vadalog::faultpoint::hit("serve.worker");
        match job.deadline {
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                let guard = RunGuard::new().with_timeout(remaining);
                artifacts.explain_fact_governed(
                    job.snapshot.outcome(),
                    &job.fact,
                    flavor,
                    policy,
                    &guard,
                )
            }
            None => artifacts.explain_fact(job.snapshot.outcome(), &job.fact, flavor, policy),
        }
    };
    let elapsed = started.elapsed();
    if let Some(capture) = capture {
        let spans = capture.finish();
        if slow_threshold.is_some_and(|t| elapsed >= t) {
            flight::global().record_slow(
                job.fact.to_string(),
                elapsed.as_nanos() as u64,
                job.trace.as_ref(),
                spans,
            );
        }
    }
    result.map_err(|source| {
        if matches!(source, ExplainError::ResourceExhausted { .. }) {
            vadalog::obs::metrics::global()
                .counter(
                    "vadalog_serve_deadline_trips_total",
                    "Explanation goals that tripped the per-request deadline mid-evaluation.",
                )
                .inc();
            flight::global().failure(
                "deadline_trip",
                format!("goal {} tripped the per-request deadline", job.fact),
            );
        }
        ServeError::Explain {
            goal: job.fact.to_string(),
            source,
        }
    })
}

/// Pulls jobs until the queue closes. Workers steal from one shared
/// receiver (poisoning is recovered: a panicking peer must not wedge the
/// pool); fairness does not matter because results carry their index.
/// Job bodies run under `catch_unwind`: an ordinary panic reports
/// [`ServeError::WorkerPanic`] for the job and retires this worker (the
/// pool respawns it); an injected crash kills the worker unreported,
/// like real process death would.
fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    artifacts: &ProgramArtifacts,
    flavor: TemplateFlavor,
    policy: DerivationPolicy,
    slow_threshold: Option<Duration>,
    worker: usize,
    alive: &AtomicUsize,
) {
    let _presence = AlivePresence::enter(alive);
    loop {
        let job = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(job) = job else { return };
        match panic::catch_unwind(AssertUnwindSafe(|| {
            run_job(&job, artifacts, flavor, policy, slow_threshold, worker)
        })) {
            Ok(result) => {
                // A dropped batch receiver just discards the answer.
                let _ = job.done.send((job.index, result));
            }
            Err(payload) => {
                vadalog::obs::metrics::global()
                    .counter(
                        "vadalog_serve_worker_panics_total",
                        "Explain-worker panics caught by the serving layer's isolation.",
                    )
                    .inc();
                if payload
                    .downcast_ref::<vadalog::faultpoint::FaultCrash>()
                    .is_some()
                {
                    // Simulated process death: the job's answer is lost,
                    // exactly like a kill -9 — the batch's completion
                    // tick heals the pool and retries.
                    drop(job);
                    return;
                }
                let message = panic_message(payload.as_ref());
                {
                    // Re-install the job's context (the unwind dropped
                    // run_job's guard) so the flight event carries the
                    // panicking request's trace id.
                    let _ctx = job.trace.clone().map(context::set);
                    flight::global().failure(
                        "worker_panic",
                        format!("worker {worker} panicked answering {}: {message}", job.fact),
                    );
                }
                let _ = job.done.send((
                    job.index,
                    Err(ServeError::WorkerPanic {
                        goal: job.fact.to_string(),
                        message,
                    }),
                ));
                // The worker retires after a panic — its state is
                // suspect; the pool respawns a fresh one.
                return;
            }
        }
    }
}

/// Tracks a worker's liveness, decrementing on any exit (including
/// unwind).
struct AlivePresence<'a>(&'a AtomicUsize);

impl<'a> AlivePresence<'a> {
    fn enter(alive: &'a AtomicUsize) -> AlivePresence<'a> {
        alive.fetch_add(1, Ordering::AcqRel);
        AlivePresence(alive)
    }
}

impl Drop for AlivePresence<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Stringifies a panic payload (the common `&str`/`String` cases).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog::{parse_program, ChaseSession, Database};

    fn service(workers: usize) -> (ExplainService, Vec<Fact>) {
        let parsed = parse_program(
            r#"
            alpha: edge(x, y) -> reach(x, y).
            beta: reach(x, y), edge(y, z) -> reach(x, z).
            edge("a", "b").
            edge("b", "c").
            edge("c", "d").
        "#,
        )
        .unwrap();
        let artifacts = ProgramArtifacts::builder(parsed.program.clone(), "reach")
            .build_cached()
            .unwrap();
        let db: Database = parsed.facts.into_iter().collect();
        let outcome = ChaseSession::new(&parsed.program).run(db).unwrap();
        let handle = SnapshotHandle::new(outcome);
        let goals = vec![
            Fact::new("reach", vec!["a".into(), "d".into()]),
            Fact::new("reach", vec!["b".into(), "d".into()]),
            Fact::new("reach", vec!["a".into(), "c".into()]),
        ];
        (
            ExplainService::new(
                artifacts,
                handle,
                ServeConfig::default().with_workers(workers),
            ),
            goals,
        )
    }

    #[test]
    fn batches_preserve_goal_order() {
        let (service, goals) = service(2);
        let (version, results) = service.explain_batch(&goals);
        assert_eq!(version, 1);
        assert_eq!(results.len(), goals.len());
        for (goal, result) in goals.iter().zip(&results) {
            let e = result.as_ref().unwrap();
            assert_eq!(&e.fact, goal);
        }
    }

    #[test]
    fn pruned_snapshot_serves_byte_identical_goal_explanations() {
        // `audit` lives outside reach's relevance cone; a service booted
        // from a goal-directed chase must answer goal queries exactly
        // like one booted from the full chase.
        let parsed = parse_program(
            r#"
            alpha: edge(x, y) -> reach(x, y).
            beta: reach(x, y), edge(y, z) -> reach(x, z).
            gamma: edge(x, y), not flagged(x) -> audit(x, y).
            edge("a", "b").
            edge("b", "c").
            flagged("b").
        "#,
        )
        .unwrap();
        let artifacts = ProgramArtifacts::builder(parsed.program.clone(), "reach")
            .build_cached()
            .unwrap();
        let db: Database = parsed.facts.into_iter().collect();
        let full = ChaseSession::new(&parsed.program).run(db.clone()).unwrap();
        let pruned = ChaseSession::new(&parsed.program)
            .with_config(artifacts.pruned_chase_config())
            .run(db)
            .unwrap();
        if pruned.derived_facts == full.derived_facts {
            // VADALOG_NO_PRUNE disables the cone; nothing to compare.
            return;
        }
        let goals = vec![
            Fact::new("reach", vec!["a".into(), "c".into()]),
            Fact::new("reach", vec!["a".into(), "b".into()]),
        ];
        let config = || ServeConfig::default().with_workers(1);
        let full_svc = ExplainService::new(artifacts.clone(), SnapshotHandle::new(full), config());
        let pruned_svc = ExplainService::new(artifacts, SnapshotHandle::new(pruned), config());
        let (_, full_results) = full_svc.explain_batch(&goals);
        let (_, pruned_results) = pruned_svc.explain_batch(&goals);
        for (f, p) in full_results.iter().zip(&pruned_results) {
            let (f, p) = (f.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(f.text, p.text);
            assert_eq!(f.paths, p.paths);
            assert_eq!(f.chase_steps, p.chase_steps);
            assert_eq!(f.support, p.support);
        }
    }

    #[test]
    fn unknown_goals_fail_with_chained_source() {
        let (service, _) = service(1);
        let bogus = Fact::new("reach", vec!["z".into(), "q".into()]);
        let (_, result) = service.explain_one(&bogus);
        let err = result.unwrap_err();
        assert!(matches!(err, ServeError::Explain { .. }));
        let source = std::error::Error::source(&err).expect("source must chain");
        assert!(source.downcast_ref::<ExplainError>().is_some());
    }

    #[test]
    fn config_setters_follow_builder_conventions() {
        let config = ServeConfig::default()
            .with_workers(3)
            .with_queue_depth(7)
            .with_flavor(TemplateFlavor::Deterministic)
            .with_policy(DerivationPolicy::Earliest)
            .with_request_deadline(Some(Duration::from_millis(250)))
            .with_max_connections(5)
            .with_read_timeout(Duration::from_millis(100))
            .with_write_timeout(Duration::from_millis(100))
            .with_max_head_bytes(1024)
            .with_max_body_bytes(2048)
            .with_max_goals_per_batch(9)
            .with_retry_after(Duration::from_secs(2))
            .with_slow_query_threshold(Some(Duration::from_millis(50)))
            .with_app_label("audit");
        assert_eq!(config.workers, 3);
        assert_eq!(config.effective_workers(), 3);
        assert_eq!(config.queue_depth, 7);
        assert_eq!(config.flavor, TemplateFlavor::Deterministic);
        assert_eq!(config.request_deadline, Some(Duration::from_millis(250)));
        assert_eq!(config.max_connections, 5);
        assert_eq!(config.max_head_bytes, 1024);
        assert_eq!(config.max_body_bytes, 2048);
        assert_eq!(config.max_goals_per_batch, 9);
        assert_eq!(config.retry_after, Duration::from_secs(2));
        assert_eq!(config.slow_query_threshold, Some(Duration::from_millis(50)));
        assert_eq!(config.app, "audit");
    }

    #[test]
    fn slow_goals_land_in_the_flight_recorder_with_their_trace() {
        let (reference, goals) = service(1);
        let service = ExplainService::new(
            Arc::clone(reference.artifacts()),
            reference.snapshot_handle().clone(),
            ServeConfig::default()
                .with_workers(1)
                // Zero threshold: every goal is "slow".
                .with_slow_query_threshold(Some(Duration::ZERO)),
        );
        let ctx = TraceContext::with_trace_id("slow-capture-test");
        let _ctx = context::set(ctx.clone());
        let (_, results) = service.explain_batch(&goals[..1]);
        assert!(results[0].is_ok());
        let slow = flight::global().slow_queries();
        let entry = slow
            .iter()
            .find(|q| q.trace_id.as_deref() == Some("slow-capture-test"))
            .expect("the slow goal must be captured with its trace id");
        assert_eq!(entry.goal, goals[0].to_string());
        assert!(
            entry.spans.iter().any(|s| s.name == "serve.goal"),
            "captured tree must include the serve.goal span: {:?}",
            entry.spans.iter().map(|s| s.name).collect::<Vec<_>>()
        );
        assert!(entry
            .spans
            .iter()
            .all(|s| s.trace_id.as_deref() == Some("slow-capture-test")));
    }

    #[test]
    fn zero_deadline_sheds_or_exhausts_instead_of_hanging() {
        let (service, goals) = service(1);
        let service = ExplainService::new(
            Arc::clone(service.artifacts()),
            service.snapshot_handle().clone(),
            ServeConfig::default()
                .with_workers(1)
                .with_request_deadline(Some(Duration::ZERO)),
        );
        let start = Instant::now();
        let (_, results) = service.explain_batch(&goals);
        assert!(start.elapsed() < Duration::from_secs(5));
        for result in results {
            match result.unwrap_err() {
                ServeError::Overloaded { .. } | ServeError::DeadlineExceeded { .. } => {}
                ServeError::Explain { source, .. } => {
                    assert!(matches!(source, ExplainError::ResourceExhausted { .. }))
                }
                other => panic!("unexpected error under a zero deadline: {other}"),
            }
        }
    }

    #[test]
    fn pool_reports_full_width() {
        let (service, goals) = service(3);
        let _ = service.explain_batch(&goals);
        service.heal();
        assert_eq!(service.alive_workers(), 3);
    }
}
