//! Lexer for the Vadalog surface syntax.

use crate::error::ParseError;

/// A lexical token with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Token kinds of the surface syntax.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Identifier: predicate, variable, aggregate name, or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal (unescaped content).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `!`
    Bang,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

/// Tokenizes `input`. Comments run from `%` or `//` to end of line.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($kind:expr, $l:expr, $c:expr) => {
            tokens.push(Token {
                kind: $kind,
                line: $l,
                column: $c,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => {
                col += 1;
                i += 1;
            }
            '%' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(TokenKind::LParen, tl, tc);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(TokenKind::RParen, tl, tc);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(TokenKind::Comma, tl, tc);
                i += 1;
                col += 1;
            }
            ':' => {
                push!(TokenKind::Colon, tl, tc);
                i += 1;
                col += 1;
            }
            '+' => {
                push!(TokenKind::Plus, tl, tc);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(TokenKind::Star, tl, tc);
                i += 1;
                col += 1;
            }
            '/' => {
                push!(TokenKind::Slash, tl, tc);
                i += 1;
                col += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    push!(TokenKind::Arrow, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Minus, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    push!(TokenKind::NotEq, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Bang, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    push!(TokenKind::EqEq, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Assign, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    push!(TokenKind::Ge, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Gt, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    push!(TokenKind::Le, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Lt, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < bytes.len() {
                    match bytes[j] {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' if j + 1 < bytes.len() => {
                            // Standard escapes (matching Rust's Debug
                            // output, so `Display` -> parse round-trips).
                            s.push(match bytes[j + 1] {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                '0' => '\0',
                                other => other,
                            });
                            j += 2;
                        }
                        ch => {
                            s.push(ch);
                            j += 1;
                        }
                    }
                }
                if !closed {
                    return Err(ParseError {
                        line: tl,
                        column: tc,
                        message: "unterminated string literal".into(),
                    });
                }
                col += j + 1 - i;
                i = j + 1;
                push!(TokenKind::Str(s), tl, tc);
            }
            d if d.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let mut is_float = false;
                if j + 1 < bytes.len() && bytes[j] == '.' && bytes[j + 1].is_ascii_digit() {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text: String = bytes[i..j].iter().collect();
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| ParseError {
                        line: tl,
                        column: tc,
                        message: format!("invalid float literal `{}`", text),
                    })?;
                    push!(TokenKind::Float(v), tl, tc);
                } else {
                    let v = text.parse::<i64>().map_err(|_| ParseError {
                        line: tl,
                        column: tc,
                        message: format!("invalid integer literal `{}`", text),
                    })?;
                    push!(TokenKind::Int(v), tl, tc);
                }
                col += j - i;
                i = j;
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                col += j - i;
                i = j;
                push!(TokenKind::Ident(text), tl, tc);
            }
            '.' => {
                push!(TokenKind::Dot, tl, tc);
                i += 1;
                col += 1;
            }
            other => {
                return Err(ParseError {
                    line: tl,
                    column: tc,
                    message: format!("unexpected character `{}`", other),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        column: col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_a_rule() {
        let ks = kinds("o1: own(x,y,s), s > 0.5 -> control(x,y).");
        assert_eq!(ks[0], TokenKind::Ident("o1".into()));
        assert_eq!(ks[1], TokenKind::Colon);
        assert!(ks.contains(&TokenKind::Arrow));
        assert!(ks.contains(&TokenKind::Float(0.5)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_comparison_operators() {
        let ks = kinds(">= <= == != > < =");
        assert_eq!(
            ks[..7],
            [
                TokenKind::Ge,
                TokenKind::Le,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Gt,
                TokenKind::Lt,
                TokenKind::Assign
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let ks = kinds(r#""Irish Bank" "a\"b""#);
        assert_eq!(ks[0], TokenKind::Str("Irish Bank".into()));
        assert_eq!(ks[1], TokenKind::Str("a\"b".into()));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("% a comment\no1 // another\n.");
        assert_eq!(ks[0], TokenKind::Ident("o1".into()));
        assert_eq!(ks[1], TokenKind::Dot);
    }

    #[test]
    fn dot_vs_float_disambiguation() {
        // `0.5.` is the float 0.5 followed by the rule-terminating dot.
        let ks = kinds("0.5.");
        assert_eq!(ks[0], TokenKind::Float(0.5));
        assert_eq!(ks[1], TokenKind::Dot);
    }

    #[test]
    fn arrow_vs_minus() {
        let ks = kinds("a - b -> c");
        assert!(ks.contains(&TokenKind::Minus));
        assert!(ks.contains(&TokenKind::Arrow));
    }

    #[test]
    fn positions_are_tracked() {
        let ts = tokenize("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].column), (1, 1));
        assert_eq!((ts[1].line, ts[1].column), (2, 3));
    }

    #[test]
    fn unexpected_character_is_reported() {
        let err = tokenize("p(x) @ q").unwrap_err();
        assert!(err.message.contains('@'));
    }
}
