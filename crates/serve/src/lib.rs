//! Explanation-as-a-service: concurrent serving of explanation queries
//! over Arc-shared chase snapshots, with program artifacts cached across
//! requests.
//!
//! The paper's applications (Sec. 5) are long-lived: a knowledge graph
//! is chased once (and re-chased as data arrives), while explanation
//! queries from compliance staff and auditors stream in continuously.
//! This crate is that deployment shape:
//!
//! * [`SnapshotHandle`] — a versioned slot holding the current
//!   immutable chase outcome, updated atomically by publishing a
//!   [`SnapshotUpdate`] (a full re-chase or an incrementally maintained
//!   delta, each carrying its metadata). Readers never block writers
//!   and vice versa; in-flight queries finish on the snapshot they
//!   captured.
//! * [`ExplainService`] — a bounded worker pool answering batched
//!   explanation goals concurrently against one snapshot, from shared
//!   [`ProgramArtifacts`](explain::ProgramArtifacts). Answers are
//!   byte-identical at any worker count.
//! * [`HttpServer`] — a dependency-free HTTP/1.1 front end exposing
//!   `/explain`, `/health`, `/snapshot` and the Prometheus `/metrics`
//!   endpoint; the `finkg-serve` binary wires it to the finkg
//!   applications.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod http;
pub mod service;
pub mod snapshot;

pub use http::HttpServer;
pub use service::{ExplainService, ServeConfig, ServeError};
pub use snapshot::{Snapshot, SnapshotHandle, SnapshotUpdate, UpdateKind};
