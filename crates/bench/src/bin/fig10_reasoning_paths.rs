//! Regenerates Fig. 10: the reasoning paths of the financial KG
//! applications.

fn main() {
    println!("Figure 10 — Simple reasoning paths and reasoning cycles");
    println!("(`*` marks paths whose aggregation alternative is also available)\n");
    for app in bench::fig10::run() {
        println!("== {} ==", app.name);
        println!("  Simple Reasoning Paths:");
        for (i, p) in app.simple.iter().enumerate() {
            println!("    Pi{} = {}", i + 1, p);
        }
        println!("  Reasoning Cycles:");
        for (i, c) in app.cycles.iter().enumerate() {
            println!("    Gamma{} = {}", i + 1, c);
        }
        println!();
    }
}
