//! Regenerates Figures 15 and 16: the expert user study (14 simulated
//! experts, four scenarios, three methods) with pairwise Wilcoxon tests.

use studies::Method;

fn main() {
    println!("Figure 15 — Example explanations for the same fact\n");
    for (title, text) in bench::fig16::specimen(42) {
        println!("--- {title} ---");
        println!("{text}\n");
    }

    let outcome = bench::fig16::run(42);
    println!("Figure 16 — Mean Likert value and standard deviation\n");
    print!(
        "{}",
        bench::render_table(&bench::fig16::HEADERS, &bench::fig16::rows(&outcome))
    );

    println!("\nPairwise Wilcoxon signed-rank tests (two-sided):");
    for (a, b, p) in bench::fig16::p_values(&outcome) {
        println!("  {:12} vs {:12}: p = {:.4}", a.label(), b.label(), p);
    }
    println!(
        "\nPaper reference: p1 (paraphrase vs templates) = 0.5851, p2 (summary vs templates) = 0.404;"
    );
    let p1 = outcome.p_value(Method::Paraphrase, Method::Templates);
    let p2 = outcome.p_value(Method::Summary, Method::Templates);
    println!(
        "reproduced: p1 = {:.4}, p2 = {:.4} -> {}",
        p1,
        p2,
        if p1 > 0.05 && p2 > 0.05 {
            "no significant difference (matches the paper)"
        } else {
            "UNEXPECTED significant difference"
        }
    );
}
