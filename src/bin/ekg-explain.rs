//! Command-line front end: load a Vadalog-style program (rules + facts in
//! one file), reason over it, inspect the structural analysis, and answer
//! explanation queries — the workflow a business analyst's front end would
//! drive (Sec. 4.4).
//!
//! ```text
//! ekg-explain analyze   <file> [--goal PRED]
//! ekg-explain chase     <file> [--goal PRED]
//! ekg-explain templates <file> [--goal PRED] [--glossary FILE] [--deterministic]
//! ekg-explain explain   <file> --fact 'control("A","B")' [--goal PRED] [--deterministic]
//! ekg-explain report    <file> [--goal PRED] [--deterministic]
//! ekg-explain whynot    <file> --fact 'control("A","B")' [--goal PRED]
//! ekg-explain dot       <file> [--chase]
//! ```
//!
//! The goal defaults to the head predicate of the last rule. Domain
//! glossaries for the built-in financial applications are applied
//! automatically when the program's predicates match; otherwise the
//! generic verbalizer is used.

use ekg_explain::explain::{analyze, DomainGlossary, ExplanationPipeline, TemplateFlavor};
use ekg_explain::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ekg-explain analyze   <file> [--goal PRED]
  ekg-explain chase     <file> [--goal PRED]
  ekg-explain templates <file> [--goal PRED] [--glossary FILE] [--deterministic]
  ekg-explain explain   <file> --fact 'control(\"A\",\"B\")' [--goal PRED] [--deterministic]
  ekg-explain report    <file> [--goal PRED] [--deterministic]
  ekg-explain whynot    <file> --fact 'control(\"A\",\"B\")' [--goal PRED]
  ekg-explain dot       <file> [--chase]";

struct Options {
    file: String,
    goal: Option<String>,
    fact: Option<String>,
    glossary: Option<String>,
    deterministic: bool,
    chase_dot: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        file: String::new(),
        goal: None,
        fact: None,
        glossary: None,
        deterministic: false,
        chase_dot: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--goal" => opts.goal = Some(it.next().ok_or("--goal needs a predicate name")?.clone()),
            "--fact" => opts.fact = Some(it.next().ok_or("--fact needs a fact")?.clone()),
            "--glossary" => {
                opts.glossary = Some(it.next().ok_or("--glossary needs a file")?.clone())
            }
            "--deterministic" => opts.deterministic = true,
            "--chase" => opts.chase_dot = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}"));
            }
            file => {
                if !opts.file.is_empty() {
                    return Err(format!("unexpected extra argument {file}"));
                }
                opts.file = file.to_owned();
            }
        }
    }
    if opts.file.is_empty() {
        return Err("missing program file".to_owned());
    }
    Ok(opts)
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".to_owned());
    };
    let opts = parse_options(&args[1..])?;

    let text = std::fs::read_to_string(&opts.file)
        .map_err(|e| format!("cannot read {}: {e}", opts.file))?;
    let parsed = parse_program(&text).map_err(|e| e.to_string())?;
    let goal = match &opts.goal {
        Some(g) => g.clone(),
        None => default_goal(&parsed.program)?,
    };

    let glossary = match &opts.glossary {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            DomainGlossary::parse(&text).map_err(|e| e.to_string())?
        }
        None => glossary_for(&parsed.program),
    };

    match command.as_str() {
        "analyze" => cmd_analyze(&parsed, &goal),
        "chase" => cmd_chase(&parsed, &goal),
        "templates" => cmd_templates(&parsed, &goal, &glossary, opts.deterministic),
        "explain" => {
            let fact_text = opts.fact.ok_or("explain needs --fact")?;
            cmd_explain(&parsed, &goal, &glossary, &fact_text, opts.deterministic)
        }
        "report" => cmd_report(&parsed, &goal, &glossary, opts.deterministic),
        "whynot" => {
            let fact_text = opts.fact.ok_or("whynot needs --fact")?;
            cmd_whynot(&parsed, &glossary, &fact_text)
        }
        "dot" => cmd_dot(&parsed, opts.chase_dot),
        other => Err(format!("unknown command {other}")),
    }
}

/// Default goal: the head predicate of the last rule.
fn default_goal(program: &Program) -> Result<String, String> {
    program
        .rules()
        .iter()
        .rev()
        .find_map(|r| r.head.atom())
        .map(|h| h.predicate.as_str().to_owned())
        .ok_or_else(|| "program has no derivation rules; pass --goal".to_owned())
}

/// Picks the built-in financial glossary whose predicates cover the
/// program's, falling back to an empty glossary (generic verbalization).
fn glossary_for(program: &Program) -> DomainGlossary {
    let candidates = [
        ekg_explain::finkg::apps::control::glossary(),
        ekg_explain::finkg::apps::stress::glossary(),
        ekg_explain::finkg::apps::simple_stress::glossary(),
        ekg_explain::finkg::apps::close_links::glossary(),
        ekg_explain::finkg::apps::golden_power::glossary(),
    ];
    candidates
        .into_iter()
        .find(|g| program.predicates().all(|(p, _)| g.entry(p).is_some()))
        .unwrap_or_default()
}

fn cmd_analyze(parsed: &ParsedProgram, goal: &str) -> Result<(), String> {
    let g = DependencyGraph::build(&parsed.program);
    println!(
        "dependency graph: {} predicates, {} edges, {}",
        g.nodes().len(),
        g.edges().len(),
        if g.is_cyclic() {
            "recursive"
        } else {
            "non-recursive"
        }
    );
    let analysis = analyze(&parsed.program, goal).map_err(|e| e.to_string())?;
    println!(
        "critical nodes: {}",
        analysis
            .critical
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("reasoning paths:");
    for p in &analysis.paths {
        println!("  {:?} {}", p.kind, p.label(&parsed.program));
    }
    Ok(())
}

fn cmd_chase(parsed: &ParsedProgram, goal: &str) -> Result<(), String> {
    let db: Database = parsed.facts.clone().into_iter().collect();
    let outcome = ChaseSession::new(&parsed.program)
        .run(db)
        .map_err(|e| e.to_string())?;
    println!(
        "chase: {} input facts, {} derived, {} rounds",
        outcome.database.len() - outcome.derived_facts,
        outcome.derived_facts,
        outcome.rounds
    );
    if !outcome.violations.is_empty() {
        println!("violated constraints: {}", outcome.violations.join(", "));
    }
    for (id, fact) in outcome.facts_of(goal) {
        if outcome.graph.is_derived(id) {
            println!("  {fact}");
        }
    }
    Ok(())
}

fn cmd_templates(
    parsed: &ParsedProgram,
    goal: &str,
    glossary: &DomainGlossary,
    deterministic: bool,
) -> Result<(), String> {
    let pipeline = ExplanationPipeline::builder(parsed.program.clone(), goal)
        .with_glossary(glossary)
        .build()
        .map_err(|e| e.to_string())?;
    let flavor = if deterministic {
        TemplateFlavor::Deterministic
    } else {
        TemplateFlavor::Enhanced
    };
    for (i, t) in pipeline.templates(flavor).iter().enumerate() {
        println!(
            "[{}] {}",
            pipeline.analysis().paths[i].label(&parsed.program),
            t.render()
        );
    }
    Ok(())
}

fn cmd_explain(
    parsed: &ParsedProgram,
    goal: &str,
    glossary: &DomainGlossary,
    fact_text: &str,
    deterministic: bool,
) -> Result<(), String> {
    let fact = parse_fact(fact_text)?;
    let pipeline = ExplanationPipeline::builder(parsed.program.clone(), goal)
        .with_glossary(glossary)
        .build()
        .map_err(|e| e.to_string())?;
    let db: Database = parsed.facts.clone().into_iter().collect();
    let outcome = ChaseSession::new(&parsed.program)
        .run(db)
        .map_err(|e| e.to_string())?;
    let flavor = if deterministic {
        TemplateFlavor::Deterministic
    } else {
        TemplateFlavor::Enhanced
    };
    let e = pipeline
        .explain_with(&outcome, &fact, flavor)
        .map_err(|e| e.to_string())?;
    println!(
        "explaining {} ({} chase steps, paths {})",
        e.fact,
        e.chase_steps,
        e.paths.join(" + ")
    );
    println!();
    println!("{}", e.text);
    Ok(())
}

fn cmd_report(
    parsed: &ParsedProgram,
    goal: &str,
    glossary: &DomainGlossary,
    deterministic: bool,
) -> Result<(), String> {
    let pipeline = ExplanationPipeline::builder(parsed.program.clone(), goal)
        .with_glossary(glossary)
        .build()
        .map_err(|e| e.to_string())?;
    let db: Database = parsed.facts.clone().into_iter().collect();
    let outcome = ChaseSession::new(&parsed.program)
        .run(db)
        .map_err(|e| e.to_string())?;
    let flavor = if deterministic {
        TemplateFlavor::Deterministic
    } else {
        TemplateFlavor::Enhanced
    };
    let report = pipeline
        .render_report(&outcome, flavor)
        .map_err(|e| e.to_string())?;
    print!("{report}");
    Ok(())
}

fn cmd_whynot(
    parsed: &ParsedProgram,
    glossary: &DomainGlossary,
    fact_text: &str,
) -> Result<(), String> {
    let fact = parse_fact(fact_text)?;
    let db: Database = parsed.facts.clone().into_iter().collect();
    let outcome = ChaseSession::new(&parsed.program)
        .run(db)
        .map_err(|e| e.to_string())?;
    match ekg_explain::explain::why_not(&parsed.program, glossary, &outcome, &fact) {
        None => println!("{fact} IS derived; use `explain` for its provenance."),
        Some(wn) => println!("{}", wn.text),
    }
    Ok(())
}

fn cmd_dot(parsed: &ParsedProgram, chase_graph: bool) -> Result<(), String> {
    if chase_graph {
        let db: Database = parsed.facts.clone().into_iter().collect();
        let outcome = ChaseSession::new(&parsed.program)
            .run(db)
            .map_err(|e| e.to_string())?;
        print!(
            "{}",
            ekg_explain::vadalog::dot::chase_graph_dot(
                &outcome.graph,
                &outcome.database,
                &parsed.program
            )
        );
    } else {
        let g = DependencyGraph::build(&parsed.program);
        print!(
            "{}",
            ekg_explain::vadalog::dot::dependency_graph_dot(&g, &parsed.program)
        );
    }
    Ok(())
}

/// Parses a ground fact like `control("A","B")` by wrapping it into a
/// one-statement program.
fn parse_fact(text: &str) -> Result<Fact, String> {
    let wrapped = format!("{}.", text.trim().trim_end_matches('.'));
    let parsed = parse_program(&wrapped).map_err(|e| e.to_string())?;
    parsed
        .facts
        .into_iter()
        .next()
        .ok_or_else(|| format!("`{text}` is not a ground fact"))
}
