//! The chase graph: fact-level provenance of a chase run.
//!
//! Nodes are facts; each *derivation* records which rule produced a fact
//! from which premises (Sec. 3, "Chase Procedure and Chase Graph"). A fact
//! may have several derivations (e.g. a default triggered by two distinct
//! risk facts); explanation extraction chooses among them with a
//! [`DerivationPolicy`].

use crate::database::{Database, FactId};
use crate::expr::Bindings;
use crate::rule::RuleId;
use std::collections::{HashMap, HashSet};

/// Identifier of a derivation inside a [`ChaseGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DerivationId(pub u32);

/// One chase step: `rule` applied to `premises` concluded `conclusion`.
#[derive(Clone, Debug)]
pub struct Derivation {
    /// The applied rule.
    pub rule: RuleId,
    /// The premise facts (for aggregates: the union over all contributing
    /// matches, as in Fig. 8 where `Risk(C,11)` has three premises).
    pub premises: Vec<FactId>,
    /// The derived fact.
    pub conclusion: FactId,
    /// The chase round in which the step fired (1-based).
    pub round: u32,
    /// Number of contributing matches. 1 for non-aggregate rules; for
    /// aggregate rules, the number of body matches folded into the
    /// aggregate (the paper's single- vs multi-contributor distinction).
    pub contributors: u32,
    /// The substitution used to instantiate the head: full match bindings
    /// for plain rules, group key plus aggregate result for aggregates.
    pub bindings: Bindings,
    /// For aggregate steps: the full bindings of each contributing match,
    /// in match order. Empty for non-aggregate steps.
    pub contributor_bindings: Vec<Bindings>,
}

impl Derivation {
    /// Builds a derivation without bindings (tests, hand-built graphs).
    pub fn bare(rule: RuleId, premises: Vec<FactId>, conclusion: FactId, round: u32) -> Derivation {
        Derivation {
            rule,
            premises,
            conclusion,
            round,
            contributors: 1,
            bindings: Bindings::new(),
            contributor_bindings: Vec::new(),
        }
    }
}

/// How to pick among multiple derivations of the same fact.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DerivationPolicy {
    /// The derivation recorded first (chase order). Deterministic and
    /// cheapest, but for aggregates it may surface a partial sum.
    Earliest,
    /// The derivation with the most aggregation contributors, tie-broken
    /// by earliest round then earliest id. For aggregates this selects the
    /// fullest contributor set (matching the explanations shown in the
    /// paper); among equally-contributing derivations it keeps the
    /// chase-order one (default).
    #[default]
    Richest,
}

/// The chase graph of a run.
#[derive(Clone, Debug, Default)]
pub struct ChaseGraph {
    derivations: Vec<Derivation>,
    by_conclusion: HashMap<FactId, Vec<DerivationId>>,
    /// Facts present before the chase started.
    extensional: HashSet<FactId>,
    /// Running approximation of the graph's heap footprint, maintained in
    /// O(1) per recorded derivation (see [`ChaseGraph::approx_bytes`]).
    approx_bytes: usize,
}

impl ChaseGraph {
    /// An empty graph.
    pub fn new() -> ChaseGraph {
        ChaseGraph::default()
    }

    /// Marks a fact as extensional (pre-chase).
    pub fn mark_extensional(&mut self, fact: FactId) {
        self.extensional.insert(fact);
    }

    /// Withdraws a fact's extensional status; returns whether it was
    /// marked. Used by delta retraction: a retracted EDB fact loses its
    /// axiomatic support, and survives only if some derivation still
    /// concludes it.
    pub fn unmark_extensional(&mut self, fact: FactId) -> bool {
        self.extensional.remove(&fact)
    }

    /// Builds the downstream-derivation index: for every fact id below
    /// `num_facts`, the derivations that *use* it as a premise, in
    /// recording order. This is the inverse of the premise links
    /// explanations walk, and is what DRed-style retraction traverses to
    /// find the over-deletion cone. Dense by construction — the graph's
    /// premise ids are store ids — so a plain vector beats hashing.
    pub fn by_premise(&self, num_facts: usize) -> Vec<Vec<DerivationId>> {
        let mut index: Vec<Vec<DerivationId>> = vec![Vec::new(); num_facts];
        for (i, der) in self.derivations.iter().enumerate() {
            let id = DerivationId(i as u32);
            for &premise in &der.premises {
                let slot = &mut index[premise.0 as usize];
                // Premise vectors may repeat a fact; index each use once.
                if slot.last() != Some(&id) {
                    slot.push(id);
                }
            }
        }
        index
    }

    /// Records a derivation.
    pub fn record(&mut self, derivation: Derivation) -> DerivationId {
        let id = DerivationId(u32::try_from(self.derivations.len()).expect("derivation overflow"));
        self.by_conclusion
            .entry(derivation.conclusion)
            .or_default()
            .push(id);
        // Rough per-derivation footprint: the struct, its premise vector
        // and a flat per-binding-map allowance. Deterministic: a function
        // of the recorded sequence only.
        self.approx_bytes += std::mem::size_of::<Derivation>()
            + derivation.premises.len() * std::mem::size_of::<FactId>()
            + (derivation.contributor_bindings.len() + 1) * 48;
        self.derivations.push(derivation);
        id
    }

    /// The derivation with the given id.
    pub fn derivation(&self, id: DerivationId) -> &Derivation {
        &self.derivations[id.0 as usize]
    }

    /// All derivations, in recording order.
    pub fn derivations(&self) -> &[Derivation] {
        &self.derivations
    }

    /// Derivations concluding `fact`.
    pub fn derivations_of(&self, fact: FactId) -> &[DerivationId] {
        self.by_conclusion.get(&fact).map_or(&[], Vec::as_slice)
    }

    /// True iff `fact` was present before the chase.
    pub fn is_extensional(&self, fact: FactId) -> bool {
        self.extensional.contains(&fact)
    }

    /// True iff `fact` was derived by at least one chase step.
    pub fn is_derived(&self, fact: FactId) -> bool {
        self.by_conclusion.contains_key(&fact)
    }

    /// Approximate heap footprint of the recorded derivations, in bytes.
    /// Maintained in O(1) per record; polled (together with
    /// [`Database::approx_bytes`]) by the engine's memory budget.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Chooses a derivation of `fact` according to `policy`.
    pub fn choose_derivation(
        &self,
        fact: FactId,
        policy: DerivationPolicy,
    ) -> Option<DerivationId> {
        let candidates = self.derivations_of(fact);
        match policy {
            DerivationPolicy::Earliest => candidates.first().copied(),
            DerivationPolicy::Richest => candidates.iter().copied().max_by_key(|&d| {
                let der = self.derivation(d);
                (
                    der.contributors,
                    std::cmp::Reverse(der.round),
                    std::cmp::Reverse(d.0),
                )
            }),
        }
    }

    /// Extracts the proof tree of `fact` under `policy`.
    ///
    /// The chase graph is acyclic by construction (premises always precede
    /// conclusions), so recursion terminates; a visited set guards against
    /// pathological graphs built by hand.
    pub fn proof(&self, fact: FactId, policy: DerivationPolicy) -> ProofTree {
        let mut on_path = HashSet::new();
        self.proof_rec(fact, policy, &mut on_path)
    }

    fn proof_rec(
        &self,
        fact: FactId,
        policy: DerivationPolicy,
        on_path: &mut HashSet<FactId>,
    ) -> ProofTree {
        if !on_path.insert(fact) {
            // Cycle guard: treat the repeated fact as a leaf premise.
            return ProofTree {
                fact,
                step: None,
                children: Vec::new(),
            };
        }
        let tree = match self.choose_derivation(fact, policy) {
            None => ProofTree {
                fact,
                step: None,
                children: Vec::new(),
            },
            Some(did) => {
                let der = self.derivation(did).clone();
                let children = der
                    .premises
                    .iter()
                    .map(|&p| self.proof_rec(p, policy, on_path))
                    .collect();
                ProofTree {
                    fact,
                    step: Some(did),
                    children,
                }
            }
        };
        on_path.remove(&fact);
        tree
    }
}

/// A proof tree for a fact: the fact, the derivation that concluded it (if
/// derived) and the proofs of its premises.
#[derive(Clone, Debug)]
pub struct ProofTree {
    /// The proved fact.
    pub fact: FactId,
    /// The chase step concluding it; `None` for extensional leaves.
    pub step: Option<DerivationId>,
    /// Proofs of the premises (empty for leaves).
    pub children: Vec<ProofTree>,
}

/// One element of a linearized proof: a chase step along the spine.
#[derive(Clone, Copy, Debug)]
pub struct ChaseStep {
    /// The applied rule.
    pub rule: RuleId,
    /// The derivation carrying premises/conclusion.
    pub derivation: DerivationId,
    /// Number of contributing matches (see [`Derivation::contributors`]).
    pub contributors: u32,
}

impl ProofTree {
    /// Total number of chase steps in the proof (distinct derivations).
    pub fn steps(&self) -> usize {
        let mut seen = HashSet::new();
        self.collect_steps(&mut seen);
        seen.len()
    }

    fn collect_steps(&self, seen: &mut HashSet<DerivationId>) {
        if let Some(d) = self.step {
            seen.insert(d);
        }
        for c in &self.children {
            c.collect_steps(seen);
        }
    }

    /// All facts appearing in the proof (premises and conclusions).
    pub fn facts(&self) -> Vec<FactId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        self.collect_facts(&mut seen, &mut out);
        out
    }

    fn collect_facts(&self, seen: &mut HashSet<FactId>, out: &mut Vec<FactId>) {
        if seen.insert(self.fact) {
            out.push(self.fact);
        }
        for c in &self.children {
            c.collect_facts(seen, out);
        }
    }

    /// Depth of the derivation spine: the longest root-to-leaf chain of
    /// chase steps.
    pub fn depth(&self) -> usize {
        let child_depth = self
            .children
            .iter()
            .map(ProofTree::depth)
            .max()
            .unwrap_or(0);
        child_depth + usize::from(self.step.is_some())
    }

    /// Linearizes the proof into the chase-step sequence τ of Sec. 4.3:
    /// the ordered rules along the source-to-leaf *spine*, choosing at each
    /// aggregate the deepest intensional contributor (side contributions
    /// are folded into their step's premises, as in the paper's
    /// τ = {α, β, γ, β, γ} for `Default(C)` in Fig. 8).
    pub fn linearize(&self, graph: &ChaseGraph) -> Vec<ChaseStep> {
        let mut spine = Vec::new();
        self.linearize_into(graph, &mut spine);
        spine
    }

    fn linearize_into(&self, graph: &ChaseGraph, out: &mut Vec<ChaseStep>) {
        let Some(did) = self.step else {
            return;
        };
        // Deepest derived child carries the spine.
        if let Some(deepest) = self
            .children
            .iter()
            .filter(|c| c.step.is_some())
            .max_by_key(|c| c.depth())
        {
            deepest.linearize_into(graph, out);
        }
        let der = graph.derivation(did);
        out.push(ChaseStep {
            rule: der.rule,
            derivation: did,
            contributors: der.contributors,
        });
    }
}

/// Renders a proof tree with fact text, for debugging and the examples.
pub fn render_proof(tree: &ProofTree, db: &Database, graph: &ChaseGraph) -> String {
    let mut out = String::new();
    render_rec(tree, db, graph, 0, &mut out);
    out
}

fn render_rec(
    tree: &ProofTree,
    db: &Database,
    graph: &ChaseGraph,
    indent: usize,
    out: &mut String,
) {
    use std::fmt::Write as _;
    let pad = "  ".repeat(indent);
    match tree.step {
        Some(did) => {
            let der = graph.derivation(did);
            let _ = writeln!(
                out,
                "{}{}  [rule {} @ round {}]",
                pad,
                db.fact(tree.fact),
                der.rule,
                der.round
            );
        }
        None => {
            let _ = writeln!(out, "{}{}  [edb]", pad, db.fact(tree.fact));
        }
    }
    for c in &tree.children {
        render_rec(c, db, graph, indent + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn der(
        rule: usize,
        premises: &[u32],
        conclusion: u32,
        round: u32,
        contributors: u32,
    ) -> Derivation {
        Derivation {
            contributors,
            ..Derivation::bare(
                RuleId(rule),
                premises.iter().map(|&p| FactId(p)).collect(),
                FactId(conclusion),
                round,
            )
        }
    }

    /// Builds the chase graph of Fig. 8 by hand:
    /// facts f0..f9, derivations for Default(A), Risk(B,7), Default(B),
    /// Risk(C,11), Default(C).
    fn figure_8() -> (ChaseGraph, FactId) {
        let mut g = ChaseGraph::new();
        // EDB: 0 shock(A,6), 1 hascap(A,5), 2 debts(A,B,7), 3 hascap(B,2),
        //      4 debts(B,C,2), 5 debts(B,C,9), 6 hascap(C,10)
        for i in 0..7 {
            g.mark_extensional(FactId(i));
        }
        // 7 default(A) <- alpha(0,1)
        g.record(der(0, &[0, 1], 7, 1, 1));
        // 8 risk(B,7) <- beta(7,2)
        g.record(der(1, &[7, 2], 8, 2, 1));
        // 9 default(B) <- gamma(8,3)
        g.record(der(2, &[8, 3], 9, 3, 1));
        // 10 risk(C,11) <- beta(9,4,5), two contributors
        g.record(der(1, &[9, 4, 5], 10, 4, 2));
        // 11 default(C) <- gamma(10,6)
        g.record(der(2, &[10, 6], 11, 5, 1));
        (g, FactId(11))
    }

    #[test]
    fn proof_counts_steps_and_facts() {
        let (g, target) = figure_8();
        let proof = g.proof(target, DerivationPolicy::Richest);
        assert_eq!(proof.steps(), 5);
        assert_eq!(proof.facts().len(), 12);
        assert_eq!(proof.depth(), 5);
    }

    #[test]
    fn linearization_matches_paper_tau() {
        let (g, target) = figure_8();
        let proof = g.proof(target, DerivationPolicy::Richest);
        let tau: Vec<usize> = proof.linearize(&g).iter().map(|s| s.rule.0).collect();
        // τ = {α, β, γ, β, γ} with α=0, β=1, γ=2.
        assert_eq!(tau, vec![0, 1, 2, 1, 2]);
    }

    #[test]
    fn contributors_flow_into_steps() {
        let (g, target) = figure_8();
        let proof = g.proof(target, DerivationPolicy::Richest);
        let steps = proof.linearize(&g);
        // The second beta step (risk(C,11)) has two contributors.
        assert_eq!(steps[3].contributors, 2);
        assert_eq!(steps[1].contributors, 1);
    }

    #[test]
    fn richest_policy_prefers_more_premises() {
        let mut g = ChaseGraph::new();
        g.mark_extensional(FactId(0));
        g.mark_extensional(FactId(1));
        // Fact 2 derived two ways: one premise vs two premises.
        g.record(der(0, &[0], 2, 1, 1));
        g.record(der(1, &[0, 1], 2, 1, 2));
        let rich = g
            .choose_derivation(FactId(2), DerivationPolicy::Richest)
            .unwrap();
        assert_eq!(g.derivation(rich).rule, RuleId(1));
        let early = g
            .choose_derivation(FactId(2), DerivationPolicy::Earliest)
            .unwrap();
        assert_eq!(g.derivation(early).rule, RuleId(0));
    }

    #[test]
    fn extensional_fact_has_trivial_proof() {
        let (g, _) = figure_8();
        let proof = g.proof(FactId(3), DerivationPolicy::Richest);
        assert_eq!(proof.steps(), 0);
        assert!(proof.step.is_none());
        assert!(g.is_extensional(FactId(3)));
        assert!(!g.is_derived(FactId(3)));
    }

    #[test]
    fn premise_index_inverts_the_premise_links() {
        let mut g = ChaseGraph::new();
        g.mark_extensional(FactId(0));
        g.mark_extensional(FactId(1));
        let d0 = g.record(der(0, &[0, 1], 2, 1, 2));
        let d1 = g.record(der(1, &[0, 0], 3, 1, 1)); // repeated premise
        let index = g.by_premise(4);
        assert_eq!(index[0], vec![d0, d1]);
        assert_eq!(index[1], vec![d0]);
        assert!(index[2].is_empty());
    }

    #[test]
    fn unmark_extensional_withdraws_the_mark() {
        let mut g = ChaseGraph::new();
        g.mark_extensional(FactId(0));
        assert!(g.unmark_extensional(FactId(0)));
        assert!(!g.is_extensional(FactId(0)));
        assert!(!g.unmark_extensional(FactId(0)));
    }
}
