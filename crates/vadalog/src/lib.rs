//! # vadalog
//!
//! A chase-based Datalog±/Vadalog-style reasoning engine with fact-level
//! provenance, built as the reasoning substrate for template-based
//! explainable inference (EDBT 2025, "Template-based Explainable Inference
//! over High-Stakes Financial Knowledge Graphs").
//!
//! The crate provides:
//!
//! * a rule language with TGDs (existentials as labelled nulls),
//!   comparison conditions, arithmetic assignments, monotonic aggregations
//!   (`sum`, `prod`, `min`, `max`, `count`), safe negation over extensional
//!   predicates, and negative constraints;
//! * a text [`parser`] for a Vadalog-like surface syntax;
//! * a [`Database`] fact store with lazy positional indexes;
//! * the [`engine`]: a restricted chase to fixpoint recording every
//!   derivation in a [`provenance::ChaseGraph`], plus incremental
//!   fixpoint maintenance over a live outcome
//!   ([`ChaseSession::apply_delta`]: semi-naive propagation for added
//!   facts, DRed over-delete/re-derive for retractions, bitwise
//!   identical to a from-scratch chase on the updated EDB);
//! * the [`depgraph::DependencyGraph`] D(Σ) used by structural analysis;
//! * [`telemetry`]: resource governance ([`RunGuard`]: deadlines,
//!   cooperative cancellation, fact/round/memory budgets) and the per-run
//!   [`RunReport`] of counters, timings and peaks every chase emits;
//! * [`checkpoint`]: crash-safe, checksummed snapshots of (partial) runs,
//!   written atomically by an autosave policy or on demand, resumable to
//!   a bitwise-identical state via `ChaseSession::resume_from_path` —
//!   with [`faultpoint`] hooks (feature `faultpoints`) for deterministic
//!   crash and I/O-failure injection in tests;
//! * [`obs`]: always-compiled observability — the structured
//!   [`span!`](crate::span!) collector with pluggable sinks, an
//!   always-on [`MetricsRegistry`]
//!   (Prometheus text exposition), and a Chrome `trace_event` exporter
//!   for Perfetto.
//!
//! ## Quick start
//!
//! ```
//! use vadalog::prelude::*;
//!
//! let parsed = parse_program(r#"
//!     o1: own(x, y, s), s > 0.5 -> control(x, y).
//!     o2: company(x) -> control(x, x).
//!     o3: control(x, z), own(z, y, s), ts = sum(s), ts > 0.5 -> control(x, y).
//!     company("A").
//!     own("A", "B", 0.6).
//!     own("B", "C", 0.3).
//!     own("A", "C", 0.4).
//! "#).unwrap();
//!
//! let db: Database = parsed.facts.into_iter().collect();
//! let out = ChaseSession::new(&parsed.program).run(db).unwrap();
//! let target = Fact::new("control", vec!["A".into(), "C".into()]);
//! assert!(out.database.contains(&target));
//! ```
//!
//! The chase runs a parallel match phase over a configurable worker pool
//! (`ChaseSession::threads`); its output is bitwise identical at any
//! thread count.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atom;
pub mod checkpoint;
pub mod database;
pub mod depgraph;
pub mod dot;
pub mod engine;
pub mod error;
pub mod expr;
pub mod faultpoint;
pub mod obs;
pub mod parser;
pub mod program;
pub mod provenance;
pub mod query;
pub mod rule;
pub mod stratify;
pub mod symbol;
pub mod telemetry;
pub mod term;
pub mod value;

/// Commonly used items, importable with one line.
pub mod prelude {
    pub use crate::atom::{fact, Atom, Fact};
    pub use crate::checkpoint::{AutosavePolicy, CheckpointError};
    pub use crate::database::{Database, FactId};
    pub use crate::depgraph::{Condensation, DepEdge, DependencyGraph, GoalCone};
    pub use crate::engine::{
        ChaseConfig, ChaseOutcome, ChaseSession, Delta, DeltaOutcome, DeltaStrategy,
    };
    pub use crate::error::{ChaseError, DeltaError, EvalError, ParseError, ProgramError};
    pub use crate::expr::{ArithOp, Assignment, Bindings, CmpOp, Condition, Expr};
    pub use crate::obs::metrics::MetricsRegistry;
    pub use crate::obs::span::{RingCollector, SpanRecord, SpanSink};
    pub use crate::parser::{parse_program, ParsedProgram};
    pub use crate::program::Program;
    pub use crate::provenance::{
        ChaseGraph, ChaseStep, Derivation, DerivationId, DerivationPolicy, ProofTree,
    };
    pub use crate::rule::{AggFunc, Aggregate, Head, Literal, Rule, RuleBuilder, RuleId};
    pub use crate::stratify::{stratify, Stratification};
    pub use crate::symbol::Symbol;
    pub use crate::telemetry::{Budget, CancelToken, RunGuard, RunReport, Termination};
    pub use crate::term::Term;
    pub use crate::value::Value;
}

pub use prelude::*;
