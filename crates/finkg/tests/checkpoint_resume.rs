//! The durability contract on real finkg workloads: a budget-tripped
//! chase checkpointed to disk and resumed from the file must reach a
//! state bitwise identical to the uninterrupted run, at any thread
//! count; ditto a run interrupted by its own autosave policy. No fault
//! injection here — this is the tier-1 crash-recovery path.

use std::path::PathBuf;
use vadalog::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("checkpoint_resume");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The full structural fingerprint of an outcome (facts in id order with
/// activity, derivations in recording order, rounds, violations):
/// equality means the outcomes are interchangeable downstream.
fn fingerprint(out: &ChaseOutcome) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for (id, fact) in out.database.iter() {
        let _ = writeln!(s, "{id} {fact} active={}", out.database.is_active(id));
    }
    for d in out.graph.derivations() {
        let _ = writeln!(
            s,
            "r{} {:?} -> {} round={} contrib={} bindings={}",
            d.rule.0,
            d.premises,
            d.conclusion,
            d.round,
            d.contributors,
            d.bindings.len(),
        );
    }
    let _ = write!(s, "rounds={} violations={:?}", out.rounds, out.violations);
    s
}

#[test]
fn tripped_chase_checkpointed_to_disk_resumes_identically() {
    let program = finkg::apps::control::program();
    let db = finkg::random_ownership(60, 3, 7);
    let reference = ChaseSession::new(&program)
        .with_threads(1)
        .run(db.clone())
        .expect("uninterrupted chase");
    let expected = fingerprint(&reference);
    let mut tripped = 0usize;
    for threads in [1usize, 2, 8] {
        for budget in [80u64, 150, 400] {
            let session = ChaseSession::new(&program)
                .with_threads(threads)
                .with_guard(RunGuard::new().with_max_facts(budget));
            let out = match session.run(db.clone()) {
                Err(ChaseError::ResourceExhausted { partial, .. }) => {
                    tripped += 1;
                    // Through the disk: snapshot the partial, drop it,
                    // recover from the file alone.
                    let path = tmp(&format!("trip-{threads}-{budget}.ckpt"));
                    session.checkpoint_to(&partial, &path).unwrap();
                    drop(partial);
                    // Recover without the tripping guard (the budget is
                    // not part of the snapshot fingerprint).
                    ChaseSession::new(&program)
                        .with_threads(threads)
                        .resume_from_path(&path)
                        .expect("resume from disk")
                }
                Ok(out) => out,
                Err(e) => panic!("unexpected chase error: {e}"),
            };
            assert_eq!(
                fingerprint(&out),
                expected,
                "disk-resumed outcome diverged at {threads} threads, budget {budget}"
            );
        }
    }
    assert!(tripped > 0, "no budget ever tripped; tighten the sweep");
}

#[test]
fn guard_trip_autosaves_a_resumable_snapshot() {
    let program = finkg::apps::control::program();
    let db = finkg::random_ownership(60, 3, 7);
    let reference = ChaseSession::new(&program)
        .with_threads(1)
        .run(db.clone())
        .expect("uninterrupted chase");
    let expected = fingerprint(&reference);
    let path = tmp("guard-trip.ckpt");
    let session = ChaseSession::new(&program).with_config(
        ChaseConfig::default()
            .with_threads(2)
            .with_guard(RunGuard::new().with_max_facts(150))
            .with_autosave(AutosavePolicy::new(&path)),
    );
    let err = session.run(db.clone()).expect_err("budget should trip");
    let partial = match err {
        ChaseError::ResourceExhausted { partial, .. } => partial,
        e => panic!("unexpected chase error: {e}"),
    };
    assert_eq!(partial.report.autosaves, 1);
    assert!(
        path.exists(),
        "the guard trip should have written a snapshot"
    );
    let out = ChaseSession::new(&program)
        .with_threads(2)
        .resume_from_path(&path)
        .expect("resume from disk");
    assert_eq!(fingerprint(&out), expected);
}

#[test]
fn periodic_autosaves_leave_a_resumable_snapshot_trail() {
    let program = finkg::apps::control::program();
    let db = finkg::random_ownership(60, 3, 7);
    let reference = ChaseSession::new(&program)
        .with_threads(1)
        .run(db.clone())
        .expect("uninterrupted chase");
    let expected = fingerprint(&reference);
    let path = tmp("periodic.ckpt");
    let session = ChaseSession::new(&program).with_config(
        ChaseConfig::default()
            .with_threads(2)
            .with_autosave(AutosavePolicy::new(&path).every_rounds(1)),
    );
    let out = session.run(db.clone()).expect("chase with autosaves");
    assert!(out.report.autosaves > 0, "no periodic autosave ever fired");
    // The run completed, so the last snapshot is a mid-run state the
    // session must still be able to carry to the same fixpoint.
    let resumed = session.resume_from_path(&path).expect("resume from disk");
    assert_eq!(fingerprint(&resumed), expected);
    // And its final state checkpoints and reloads as a completed run.
    let done = tmp("completed.ckpt");
    session.checkpoint_to(&out, &done).unwrap();
    let reloaded = session.resume_from_path(&done).expect("reload completed");
    assert!(!reloaded.is_partial());
    assert_eq!(fingerprint(&reloaded), fingerprint(&out));
}
